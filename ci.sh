#!/usr/bin/env sh
# Offline CI gate for the hermetic workspace: formatting, lints, then the
# tier-1 build-and-test pass. Everything runs with --offline — the
# workspace has zero external dependencies, so no registry access is
# needed (or allowed).
set -eu

cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings -D deprecated"
# -D deprecated is pinned explicitly: the workspace carries no
# #[deprecated] shims (PR 7 removed the last ones) and none may creep
# back in silently.
cargo clippy --offline --workspace --all-targets -- -D warnings -D deprecated

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> no-unwrap gate: clippy -D clippy::unwrap_used on faults + engine + model + fuzz + coloring + bench + synth + topo + serve + certify"
cargo clippy --offline -p nocsyn-faults -p nocsyn-engine -p nocsyn-model -p nocsyn-fuzz \
    -p nocsyn-coloring -p nocsyn-bench -p nocsyn-synth -p nocsyn-topo -p nocsyn-serve \
    -p nocsyn-certify -- \
    -D warnings -D clippy::unwrap_used

echo "==> engine smoke gate: synth --jobs 1 vs --jobs 4 must be bit-identical"
j1="$(mktemp)"
j4="$(mktemp)"
trap 'rm -f "$j1" "$j4"' EXIT
./target/release/nocsyn synth examples_data/pipeline.txt --restarts 8 --dot --jobs 1 > "$j1"
./target/release/nocsyn synth examples_data/pipeline.txt --restarts 8 --dot --jobs 4 > "$j4"
diff "$j1" "$j4"

echo "==> fault-determinism gate: degradation reports --jobs 1 vs --jobs 4"
./target/release/nocsyn faults examples_data/pipeline.txt --exhaustive --json --jobs 1 > "$j1"
./target/release/nocsyn faults examples_data/pipeline.txt --exhaustive --json --jobs 4 > "$j4"
diff "$j1" "$j4"

echo "==> fuzz smoke gate: 2000 cases/target, clean and byte-identical across runs"
./target/release/nocsyn fuzz --target all --iters 2000 --seed 1 --json > "$j1"
./target/release/nocsyn fuzz --target all --iters 2000 --seed 1 --json > "$j4"
diff "$j1" "$j4"
grep -q '"unique_crashes":0,"unique_budget_violations":0' "$j1"

echo "==> bench smoke gate: perf --iters 1 counters byte-identical across runs"
# The perf harness must separate measurement (stderr) from counters
# (stdout): two runs of the same seed produce byte-identical JSON.
cargo build --release --offline -p nocsyn-bench
./target/release/perf --iters 1 --seed 1 --json > "$j1" 2> /dev/null
./target/release/perf --iters 1 --seed 1 --json > "$j4" 2> /dev/null
diff "$j1" "$j4"
# The score-neutral reroute counter must stay in the pinned artifact:
# it is what distinguishes "no improvement found" from "never tried".
grep -q '"reroutes_neutral":' "$j1"

echo "==> BENCH_6 gate: perf --iters 3 counters match the checked-in artifact"
# Same contract as the smoke gate at the recorded iteration count: two
# fresh runs must be byte-identical to each other AND to BENCH_6.json,
# so the checked-in speedup record can never drift from the code.
./target/release/perf --iters 3 --seed 1 --json > "$j1" 2> /dev/null
./target/release/perf --iters 3 --seed 1 --json > "$j4" 2> /dev/null
diff "$j1" "$j4"
diff "$j1" BENCH_6.json

echo "==> certify gate: synth --emit-cert round-trips through the independent checker"
# Two golden workloads: the bundled pipeline example and an MG8-shaped
# schedule. Each synthesis emits a proof, `nocsyn certify` accepts it,
# a tampered copy is rejected with its stable fingerprint, and same-seed
# re-emission is byte-identical.
cert1="$(mktemp)"
cert2="$(mktemp)"
pat2="$(mktemp)"
trap 'rm -f "$j1" "$j4" "$cert1" "$cert2" "$pat2"' EXIT
printf 'procs 8\nphase bytes=256\n  0 -> 1\n  2 -> 3\n  4 -> 5\n  6 -> 7\nphase bytes=256\n  1 -> 2\n  3 -> 4\n  5 -> 6\n  7 -> 0\n' > "$pat2"
./target/release/nocsyn synth examples_data/pipeline.txt --restarts 2 --seed 9 --emit-cert "$cert1" > /dev/null
./target/release/nocsyn certify examples_data/pipeline.txt "$cert1" --json | grep -q '"valid":true'
./target/release/nocsyn synth "$pat2" --restarts 2 --seed 9 --emit-cert "$cert2" > /dev/null
./target/release/nocsyn certify "$pat2" "$cert2" --json | grep -q '"valid":true'
# Same seed, fresh emission: certificates are byte-deterministic.
./target/release/nocsyn synth examples_data/pipeline.txt --restarts 2 --seed 9 --emit-cert "$j1" > /dev/null
diff "$j1" "$cert1"
# Tampering must be caught (non-zero exit, stable fingerprint on stderr).
sed 's/"contention_free":true/"contention_free":false/' "$cert1" > "$j4"
if ./target/release/nocsyn certify examples_data/pipeline.txt "$j4" > /dev/null 2> "$j1"; then
    echo "tampered certificate was accepted" >&2
    exit 1
fi
grep -q 'cert-binding-mismatch' "$j1"

echo "==> serve cache gate: same job twice -> miss then byte-identical hit"
# The daemon in --drain mode is fully scriptable: two copies of the same
# request must come back as a miss then a hit, identical except for the
# cache marker, and the embedded report must be byte-identical to a
# direct `nocsyn synth --json` run of the same job.
req='{"op":"synth","pattern":"procs 4\nphase\n  0 -> 1\n  2 -> 3\n"}'
printf '%s\n%s\n' "$req" "$req" | ./target/release/nocsyn serve --drain > "$j1"
test "$(wc -l < "$j1")" -eq 2
head -n 1 "$j1" | grep -q '"cache":"miss"'
tail -n 1 "$j1" | grep -q '"cache":"hit"'
head -n 1 "$j1" | sed 's/"cache":"miss"/"cache":"hit"/' > "$j4"
tail -n 1 "$j1" | diff "$j4" -
pat="$(mktemp)"
printf 'procs 4\nphase\n  0 -> 1\n  2 -> 3\n' > "$pat"
direct="$(./target/release/nocsyn synth "$pat" --json)"
rm -f "$pat"
grep -qF "\"report\":${direct}}" "$j1"

echo "==> chaos gate: seeded fault schedule, zero violations, byte-identical across runs"
# Deterministic chaos harness over the in-process serve stack: injected
# disk/socket/engine faults must never tear a served entry or produce a
# malformed reply, the cache must heal byte-identically once faults
# stop, and the summary itself is a pure function of the seed.
# (Injected engine panics print backtraces on stderr by design.)
./target/release/nocsyn chaos --seed 1 --iters 500 --json > "$j1" 2> /dev/null
./target/release/nocsyn chaos --seed 1 --iters 500 --json > "$j4" 2> /dev/null
diff "$j1" "$j4"
grep -q '"violations":0' "$j1"

echo "==> BENCH_7 gate: serve cache counters match the checked-in artifact"
# Cold-miss / warm-hit facts of the result cache on the CG16/MG8/FFT16
# mix: deterministic, so two runs must match each other and the artifact.
./target/release/serve --seed 1 --json > "$j1" 2> /dev/null
./target/release/serve --seed 1 --json > "$j4" 2> /dev/null
diff "$j1" "$j4"
diff "$j1" BENCH_7.json

echo "==> decomposition determinism gate: synth --decompose --pareto bytes stable across runs"
# Clustered synthesis plus the Pareto sweep is a pure function of the
# seed: two runs of the checked-in 64-node pattern must be
# byte-identical, declare the decomposed mode, and carry the front.
./target/release/nocsyn synth examples_data/clus64.txt --decompose --clusters 4 --restarts 1 --seed 1 --json --pareto > "$j1"
./target/release/nocsyn synth examples_data/clus64.txt --decompose --clusters 4 --restarts 1 --seed 1 --json --pareto > "$j4"
diff "$j1" "$j4"
grep -q '"mode":"decomposed"' "$j1"
grep -q '"pareto":\[' "$j1"

echo "==> decomposed certify gate: stitched result round-trips through the independent checker"
# The certificate of a decomposed synthesis uses the same schema as a
# flat one; the checker must accept it with no knowledge of clustering.
./target/release/nocsyn synth examples_data/clus64.txt --decompose --restarts 2 --seed 65 --emit-cert "$cert1" > /dev/null
./target/release/nocsyn certify examples_data/clus64.txt "$cert1" --json | grep -q '"valid":true'

echo "==> BENCH_8 gate: decomposition counters match the checked-in artifact"
# Flat-vs-decomposed separation under one round budget: the harness
# itself asserts every decomposed run is certified and flat synthesis
# fails from 128 nodes up; two runs must match each other and the
# artifact byte for byte.
./target/release/decompose --seed 1 --json > "$j1" 2> /dev/null
./target/release/decompose --seed 1 --json > "$j4" 2> /dev/null
diff "$j1" "$j4"
diff "$j1" BENCH_8.json

echo "CI gate passed."
