//! The `nocsyn` command-line front end, as a library for testability.
//!
//! ```text
//! nocsyn info <pattern.txt>                 inspect a communication pattern
//! nocsyn synth <pattern.txt> [opts]         synthesize a network for it
//! nocsyn simulate <pattern.txt> [opts]      run it on a network, closed-loop
//! nocsyn verify <pattern.txt> [opts]        Theorem 1 check on a baseline
//! nocsyn faults <pattern.txt> [opts]        degradation under injected faults
//! nocsyn certify <pattern.txt> <cert.json>  independent certificate check
//! nocsyn fuzz [opts]                        deterministic ingestion fuzzing
//! nocsyn serve [opts]                       synthesis daemon with result cache
//! nocsyn client <addr> <op> [opts]          talk to a running daemon
//! ```
//!
//! Patterns use the plain-text format of [`nocsyn_model::text`]. The
//! binary in `src/main.rs` is a thin wrapper over [`run`].

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use nocsyn_certify::{check_certificate, CheckOptions, Rejection};
use nocsyn_engine::{par_map, Engine, EventSink, Job, JobStatus, JsonLinesSink, NullSink};
use nocsyn_faults::{DegradationReport, FaultScenario};
use nocsyn_floorplan::{mesh_baseline, place};
use nocsyn_fuzz::{CaseReport, FuzzConfig, FuzzTarget, Registry};
use nocsyn_model::json::JsonValue;
use nocsyn_model::{
    parse_schedule, parse_trace, Digest, Flow, ParseLimits, ParseOptions, PhaseSchedule, Trace,
};
use nocsyn_serve::{
    job_fingerprint, pareto_point_object, parse_pattern, run_chaos, synth_json_object,
    with_pareto_array, ChaosConfig, Client, RetryPolicy, ServeOptions, Server,
};
use nocsyn_sim::{AppDriver, RoutePolicy, SimConfig};
use nocsyn_synth::{
    explain, pareto_filter, synthesize, AppPattern, ParetoPoint, SynthesisConfig, SynthesisMode,
    SynthesisRequest,
};
use nocsyn_topo::{
    build_certificate, regular, to_dot, verify_contention_free, Network, RouteTable,
};

const HELP: &str = "\
nocsyn — contention-aware synthesis of application-specific interconnects

USAGE:
    nocsyn <command> <pattern.txt> [options]

COMMANDS:
    info       print the pattern's flows, contention set and contention periods
    synth      synthesize a minimal low-contention network for the pattern
    simulate   run the pattern closed-loop on a network
    verify     check Theorem 1 for the pattern on a baseline network
    faults     inject fault scenarios, repair routes, re-check Theorem 1
    certify    validate a contention-freedom certificate (independent checker)
    fuzz       run the deterministic ingestion fuzzer (takes no pattern file)
    serve      run the synthesis daemon (line protocol + result cache)
    client     send one request to a running daemon and print the reply
    chaos      run a seeded I/O fault schedule against an in-process server
               and check the crash-safety invariants (takes no pattern file)
    help       print this message

OPTIONS (every command):
    --json             machine-readable output: deterministic counters only,
                       no wall-clock fields (same seed => identical bytes)
    --seed <n>         search / synthesis seed [default 0xC0FFEE]

OPTIONS (synth):
    --max-degree <n>   switch port budget, processor links included [default 5]
    --restarts <n>     independent search restarts [default 8]
    --jobs <n>         worker threads for the restart portfolio [default 1];
                       the result is bit-identical for any worker count
    --deadline-ms <m>  wall-clock budget; on expiry the best-so-far result
                       is reported (degraded), never a panic
    --events           stream engine telemetry to stderr as JSON lines
    --explain          per-switch / per-pipe breakdown of the result
    --dot              print the generated network as Graphviz DOT
    --emit-cert <f>    write the contention-freedom certificate (JSON) to <f>;
                       bound to the job fingerprint `nocsyn serve` would use
    --decompose        cluster the flow graph, synthesize each cluster
                       independently, stitch with exact-colored inter-cluster
                       pipes, and re-verify Theorem 1 on the stitched whole
                       (the practical route to 64-256-node patterns)
    --clusters <n>     cluster count for --decompose [default: auto-sized]
    --pareto           with --json: sweep a ladder of degree budgets and embed
                       the non-dominated points (switches/links/area) as a
                       deterministic `pareto` array; without --json, print
                       the front as a table

OPTIONS (certify):
    nocsyn certify <pattern.txt> <cert.json> [--job <hex64>] [--json]
                       exits non-zero with a stable kebab-case fingerprint
                       (and typed obligation violations) on any rejection;
                       --job additionally demands the certificate be bound
                       to that job fingerprint

OPTIONS (simulate, verify, faults):
    --network <kind>   generated | mesh | torus | crossbar [default generated]

OPTIONS (faults):
    --exhaustive         every single-link and single-switch fault scenario
    --scenarios <n>      sampled scenarios when not exhaustive [default 8]
    --fault-links <k>    failed links per sampled scenario [default 1]
    --fault-switches <k> failed switches per sampled scenario [default 0]
    --scenario-seed <n>  sampling seed [default 0xFA07]
    --jobs <n>           analyze scenarios in parallel; output is
                         byte-identical for any worker count

OPTIONS (fuzz):
    --target <name>    all | parse_schedule | parse_trace | synthesis_request
                       | cli | ... [default all]
    --iters <n>        cases per target [default 10000]
    --corpus-dir <d>   extra corpus files to mutate (read sorted by name)
    (set NOCSYN_FUZZ_SEED=<case-seed> to replay a single reported case)

OPTIONS (serve):
    --listen <addr>       accept TCP connections on <addr> (e.g. 127.0.0.1:7733)
    --drain               read requests from stdin, write replies to stdout,
                          exit at end of input (scriptable / CI mode)
    --once                with --listen: exit after the first connection closes
    --cache-dir <d>       persist completed results as <fingerprint>.json files
    --cache-capacity <n>  in-memory cache entries [default 256]
    --max-requests <n>    requests allowed per connection [default 1024]
    --queue-depth <n>     in-flight synthesis bound; beyond it requests get a
                          structured queue-full reply [default 64]
    --max-restarts <n>    clamp client-requested restarts (admission control)
    --jobs <n>            engine worker threads [default 1]
    --io-timeout-ms <m>   read/write deadline per accepted socket; a peer
                          that stalls longer is dropped (slowloris defense)
    --events              stream serve + engine telemetry to stderr

OPTIONS (client):
    nocsyn client <addr> submit <pattern.txt> [--seed ...] [--restarts ...]
                                [--max-degree ...] [--deadline-ms ...]
    nocsyn client <addr> status
    nocsyn client <addr> stats
    --retries <n>         retry connect failures, lost connections, and
                          queue-full replies up to <n> times [default 0]
    --backoff-ms <m>      base backoff per retry (k*m plus seeded jitter)
                          [default 50]
    exits non-zero with a stable kebab-case fingerprint (connect-failed,
    connection-lost, reply-malformed, retries-exhausted) on failure

OPTIONS (chaos):
    --seed <n>            fault schedule + corpus seed [default 0xC0FFEE]
    --iters <n>           connections to drive through the fault phase
                          [default 10000]
    --json                wall-clock-free summary; byte-identical across
                          same-seed runs; zero violations required

PATTERN FORMAT:
    procs 8
    phase bytes=4096 compute=1000
      0 -> 1
      2 -> 3
    repeat 4
";

/// Parsed command-line options.
struct Options {
    max_degree: usize,
    seed: u64,
    restarts: usize,
    jobs: usize,
    deadline_ms: Option<u64>,
    events: bool,
    dot: bool,
    explain: bool,
    network: String,
    exhaustive: bool,
    scenarios: usize,
    fault_links: usize,
    fault_switches: usize,
    scenario_seed: u64,
    json: bool,
    target: String,
    iters: u64,
    corpus_dir: Option<String>,
    listen: Option<String>,
    drain: bool,
    once: bool,
    cache_dir: Option<String>,
    cache_capacity: usize,
    max_requests: usize,
    queue_depth: usize,
    max_restarts: Option<u64>,
    io_timeout_ms: Option<u64>,
    retries: u64,
    backoff_ms: u64,
    emit_cert: Option<String>,
    job: Option<String>,
    decompose: bool,
    clusters: Option<usize>,
    pareto: bool,
}

/// Parses one numeric flag value, naming the flag in any error — the
/// shared helper behind every `--flag <n>` option so messages stay
/// uniform across commands.
fn num_flag<T: std::str::FromStr>(name: &str, raw: &str) -> Result<T, String> {
    raw.parse()
        .map_err(|_| format!("{name} expects an integer"))
}

/// Rejects zero for count-valued flags where "none" is meaningless.
fn at_least_one<T: Default + PartialOrd>(name: &str, n: T) -> Result<T, String> {
    if n > T::default() {
        Ok(n)
    } else {
        Err(format!("{name} must be at least 1"))
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        max_degree: 5,
        seed: 0xC0FFEE,
        restarts: 8,
        jobs: 1,
        deadline_ms: None,
        events: false,
        dot: false,
        explain: false,
        network: "generated".into(),
        exhaustive: false,
        scenarios: 8,
        fault_links: 1,
        fault_switches: 0,
        scenario_seed: 0xFA07,
        json: false,
        target: "all".into(),
        iters: 10_000,
        corpus_dir: None,
        listen: None,
        drain: false,
        once: false,
        cache_dir: None,
        cache_capacity: 256,
        max_requests: 1024,
        queue_depth: 64,
        max_restarts: None,
        io_timeout_ms: None,
        retries: 0,
        backoff_ms: 50,
        emit_cert: None,
        job: None,
        decompose: false,
        clusters: None,
        pareto: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--max-degree" => opts.max_degree = num_flag("--max-degree", &value("--max-degree")?)?,
            "--seed" => opts.seed = num_flag("--seed", &value("--seed")?)?,
            "--restarts" => {
                opts.restarts =
                    at_least_one("--restarts", num_flag("--restarts", &value("--restarts")?)?)?;
            }
            "--jobs" => {
                opts.jobs = at_least_one("--jobs", num_flag("--jobs", &value("--jobs")?)?)?;
            }
            "--deadline-ms" => {
                opts.deadline_ms = Some(num_flag("--deadline-ms", &value("--deadline-ms")?)?);
            }
            "--events" => opts.events = true,
            "--dot" => opts.dot = true,
            "--explain" => opts.explain = true,
            "--network" => {
                opts.network = value("--network")?;
            }
            "--exhaustive" => opts.exhaustive = true,
            "--json" => opts.json = true,
            "--scenarios" => {
                opts.scenarios = at_least_one(
                    "--scenarios",
                    num_flag("--scenarios", &value("--scenarios")?)?,
                )?;
            }
            "--fault-links" => {
                opts.fault_links = num_flag("--fault-links", &value("--fault-links")?)?;
            }
            "--fault-switches" => {
                opts.fault_switches = num_flag("--fault-switches", &value("--fault-switches")?)?;
            }
            "--scenario-seed" => {
                opts.scenario_seed = num_flag("--scenario-seed", &value("--scenario-seed")?)?;
            }
            "--target" => {
                opts.target = value("--target")?;
            }
            "--iters" => {
                opts.iters = at_least_one("--iters", num_flag("--iters", &value("--iters")?)?)?;
            }
            "--corpus-dir" => {
                opts.corpus_dir = Some(value("--corpus-dir")?);
            }
            "--listen" => {
                opts.listen = Some(value("--listen")?);
            }
            "--drain" => opts.drain = true,
            "--once" => opts.once = true,
            "--cache-dir" => {
                opts.cache_dir = Some(value("--cache-dir")?);
            }
            "--cache-capacity" => {
                opts.cache_capacity = at_least_one(
                    "--cache-capacity",
                    num_flag("--cache-capacity", &value("--cache-capacity")?)?,
                )?;
            }
            "--max-requests" => {
                opts.max_requests = at_least_one(
                    "--max-requests",
                    num_flag("--max-requests", &value("--max-requests")?)?,
                )?;
            }
            "--queue-depth" => {
                opts.queue_depth = at_least_one(
                    "--queue-depth",
                    num_flag("--queue-depth", &value("--queue-depth")?)?,
                )?;
            }
            "--emit-cert" => {
                opts.emit_cert = Some(value("--emit-cert")?);
            }
            "--decompose" => opts.decompose = true,
            // Deliberately no at_least_one: zero flows into the request
            // builder so the typed `zero-clusters` rejection is exercised.
            "--clusters" => {
                opts.clusters = Some(num_flag("--clusters", &value("--clusters")?)?);
            }
            "--pareto" => opts.pareto = true,
            "--job" => {
                opts.job = Some(value("--job")?);
            }
            "--max-restarts" => {
                opts.max_restarts = Some(at_least_one(
                    "--max-restarts",
                    num_flag("--max-restarts", &value("--max-restarts")?)?,
                )?);
            }
            "--io-timeout-ms" => {
                opts.io_timeout_ms = Some(at_least_one(
                    "--io-timeout-ms",
                    num_flag("--io-timeout-ms", &value("--io-timeout-ms")?)?,
                )?);
            }
            "--retries" => {
                opts.retries = num_flag("--retries", &value("--retries")?)?;
            }
            "--backoff-ms" => {
                opts.backoff_ms = num_flag("--backoff-ms", &value("--backoff-ms")?)?;
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(opts)
}

/// Executes the CLI for the given arguments (without the program name)
/// and returns its stdout text.
///
/// # Errors
///
/// A human-readable message for any usage, parse, synthesis or
/// simulation failure.
pub fn run(args: &[String]) -> Result<String, String> {
    let Some(command) = args.first() else {
        return Ok(HELP.to_string());
    };
    if command == "help" || command == "--help" || command == "-h" {
        return Ok(HELP.to_string());
    }
    if command == "fuzz" {
        // The fuzzer takes no pattern file; everything after `fuzz` is
        // options.
        return cmd_fuzz(&parse_options(&args[1..])?);
    }
    if command == "serve" {
        // The daemon takes no pattern file; patterns arrive inline over
        // the protocol.
        return cmd_serve(&parse_options(&args[1..])?);
    }
    if command == "client" {
        return cmd_client(&args[1..]);
    }
    if command == "chaos" {
        // The chaos harness takes no pattern file; its request corpus is
        // generated from the seed.
        return cmd_chaos(&parse_options(&args[1..])?);
    }
    if command == "certify" {
        // The checker takes two files (pattern, certificate); everything
        // after them is options.
        return cmd_certify(&args[1..]);
    }
    let Some(path) = args.get(1) else {
        return Err(format!("`{command}` requires a pattern file"));
    };
    let opts = parse_options(&args[2..])?;
    let input = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let parsed = parse_input(path, &input)?;

    match (command.as_str(), parsed) {
        ("info", Input::Schedule(s)) => cmd_info(&AppPattern::from_schedule(&s), s.len(), &opts),
        ("info", Input::Trace(t)) => cmd_info(&AppPattern::from_trace(&t), t.len(), &opts),
        ("synth", Input::Schedule(s)) => cmd_synth(&AppPattern::from_schedule(&s), &input, &opts),
        ("synth", Input::Trace(t)) => cmd_synth(&AppPattern::from_trace(&t), &input, &opts),
        ("simulate", Input::Schedule(s)) => cmd_simulate(&s, &opts),
        ("simulate", Input::Trace(t)) => cmd_replay(&t, &opts),
        ("verify", Input::Schedule(s)) => {
            cmd_verify_pattern(&AppPattern::from_schedule(&s), &s, &opts)
        }
        ("verify", Input::Trace(t)) => {
            let stand_in = schedule_stand_in(&t);
            cmd_verify_pattern(&AppPattern::from_trace(&t), &stand_in, &opts)
        }
        ("faults", Input::Schedule(s)) => {
            cmd_faults(&AppPattern::from_schedule(&s), &s, &input, &opts)
        }
        ("faults", Input::Trace(t)) => {
            let stand_in = schedule_stand_in(&t);
            cmd_faults(&AppPattern::from_trace(&t), &stand_in, &input, &opts)
        }
        (other, _) => Err(format!("unknown command `{other}`")),
    }
}

/// A parsed input file: a phase schedule or a timed trace (detected by
/// the presence of `msg` lines).
enum Input {
    Schedule(PhaseSchedule),
    Trace(Trace),
}

fn parse_input(path: &str, input: &str) -> Result<Input, String> {
    let is_trace = input
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .any(|l| l.starts_with("msg "));
    if is_trace {
        Ok(Input::Trace(
            parse_trace(input).map_err(|e| format!("{path}: {e}"))?,
        ))
    } else {
        Ok(Input::Schedule(
            parse_schedule(input).map_err(|e| format!("{path}: {e}"))?,
        ))
    }
}

/// An empty schedule with the trace's process count, for code paths that
/// only need the processor count (network construction).
fn schedule_stand_in(trace: &Trace) -> PhaseSchedule {
    PhaseSchedule::new(trace.n_procs())
}

fn cmd_info(pattern: &AppPattern, n_events: usize, opts: &Options) -> Result<String, String> {
    if opts.json {
        let (periods, max_clique) = pattern.complexity();
        let obj = JsonValue::object([
            ("command", JsonValue::from("info")),
            ("procs", JsonValue::from(pattern.n_procs())),
            ("flows", JsonValue::from(pattern.flows().len())),
            ("events", JsonValue::from(n_events)),
            (
                "contention_pairs",
                JsonValue::from(pattern.contention().len()),
            ),
            ("periods", JsonValue::from(periods)),
            ("max_clique", JsonValue::from(max_clique)),
        ]);
        return Ok(format!("{obj}\n"));
    }
    let mut out = String::new();
    let _ = writeln!(out, "{pattern}");
    let _ = writeln!(
        out,
        "events: {n_events} ({} distinct periods)",
        pattern.cliques().len()
    );
    for (i, clique) in pattern.cliques().iter().enumerate() {
        let _ = writeln!(out, "  period {}: {clique}", i + 1);
    }
    Ok(out)
}

/// Assembles the synth command's [`SynthesisRequest`] from the parsed
/// options — the single place the CLI's knobs meet the unified request
/// type consumed by the engine, the serve daemon, and the fingerprint.
fn synth_request(pattern: &AppPattern, opts: &Options) -> Result<SynthesisRequest, String> {
    let config = SynthesisConfig::new()
        .with_max_degree(opts.max_degree)
        .with_seed(opts.seed);
    let mode = if opts.decompose {
        SynthesisMode::Decomposed {
            clusters: opts.clusters,
        }
    } else {
        SynthesisMode::Flat
    };
    let mut builder = SynthesisRequest::builder(pattern.clone())
        .config(config)
        .restarts(opts.restarts)
        .mode(mode);
    if let Some(ms) = opts.deadline_ms {
        builder = builder.deadline_ms(ms);
    }
    builder.build().map_err(|e| e.to_string())
}

fn cmd_synth(pattern: &AppPattern, raw: &str, opts: &Options) -> Result<String, String> {
    let request = synth_request(pattern, opts)?;
    let sink: Arc<dyn EventSink> = if opts.events {
        Arc::new(JsonLinesSink::stderr())
    } else {
        Arc::new(NullSink)
    };
    let engine = Engine::new().with_workers(opts.jobs).with_sink(sink);
    let outcome = engine
        .run(vec![Job::new("synth", request.clone())])
        .pop()
        .expect("one job in, one outcome out");
    if let JobStatus::Failed(e) = &outcome.status {
        return Err(e.to_string());
    }
    let Some(result) = &outcome.result else {
        return Err(format!(
            "deadline of {} ms expired before any of the {} restarts completed",
            opts.deadline_ms.unwrap_or(0),
            outcome.attempts_total
        ));
    };
    if let Some(cert_path) = &opts.emit_cert {
        // Bind the certificate to the same job fingerprint the serve
        // cache would use for this request, so the file is
        // interchangeable with a daemon's cached certificate.
        let parsed = parse_pattern(raw, &ParseOptions::new())
            .map_err(|e| format!("canonicalizing pattern for certificate: {e}"))?;
        let fp = job_fingerprint(parsed.kind, &parsed.canonical, &request);
        let cert = result.certificate(pattern, Some(fp)).to_json();
        std::fs::write(cert_path, format!("{cert}\n"))
            .map_err(|e| format!("writing {cert_path}: {e}"))?;
    }
    if opts.json {
        // One rendering shared with the serve daemon and its cache, so a
        // cache hit is byte-comparable against a direct CLI run.
        let base = synth_json_object(&request, &outcome);
        let body = if opts.pareto {
            let sweep = pareto_sweep(&engine, &request, opts)?;
            let rendered: Vec<String> = sweep
                .iter()
                .map(|(p, report)| pareto_point_object(p, request.seed(), report))
                .collect();
            with_pareto_array(&base, &rendered)
        } else {
            base
        };
        return Ok(format!("{body}\n"));
    }
    let mut out = String::new();
    if outcome.status == JobStatus::DeadlineExceeded {
        let _ = writeln!(
            out,
            "deadline exceeded after {}/{} restarts; reporting best-so-far",
            outcome.attempts_completed, outcome.attempts_total
        );
    }
    if let Some(d) = &outcome.decomposition {
        let _ = writeln!(
            out,
            "decomposed: {} clusters (largest {}), {} cut flows over {} stitch links",
            d.clusters, d.largest_cluster, d.cut_flows, d.stitch_links
        );
    }
    let _ = writeln!(out, "{}", result.report);
    let _ = writeln!(out, "\n{}", result.network);

    let check = verify_contention_free(pattern.contention(), &result.routes);
    let _ = writeln!(out, "{check}");

    if opts.explain {
        let _ = writeln!(out, "\n{}", explain(result, pattern));
    }

    let (rows, cols) = near_square(pattern.n_procs());
    let plan = place(&result.network, opts.seed);
    let area = plan.area(&result.network);
    let mesh = mesh_baseline(rows, cols);
    let _ = writeln!(
        out,
        "area vs {rows}x{cols} mesh: switch {:.0}%, link {:.0}%",
        100.0 * area.switch_area / mesh.switch_area,
        100.0 * area.link_area / mesh.link_area.max(1.0),
    );
    if opts.pareto {
        let sweep = pareto_sweep(&engine, &request, opts)?;
        let _ = writeln!(out, "\npareto front (constraint sweep):");
        for (p, _) in &sweep {
            let _ = writeln!(
                out,
                "  max_degree {:>2}: {} switches, {} links{}",
                p.max_degree,
                p.n_switches,
                p.n_links,
                if p.feasible { "" } else { " (infeasible)" }
            );
        }
    }
    if opts.dot {
        let _ = writeln!(out, "\n{}", to_dot(&result.network));
    }
    Ok(out)
}

/// Sweeps the degree constraint around the requested bound and keeps the
/// Pareto-optimal points, pairing each surviving point with its full
/// report object (rendered through the shared [`synth_json_object`] path
/// so serve and CLI bytes agree). Each rung reuses the request verbatim
/// except for the degree bound — decomposition mode, seed and restarts
/// all carry over, so a decomposed sweep stays decomposed.
fn pareto_sweep(
    engine: &Engine,
    request: &SynthesisRequest,
    opts: &Options,
) -> Result<Vec<(ParetoPoint, String)>, String> {
    let mut degrees = vec![4usize, 5, 6, 8, 12, 16];
    degrees.push(opts.max_degree);
    degrees.sort_unstable();
    degrees.dedup();
    let mut points = Vec::new();
    let mut reports = std::collections::BTreeMap::new();
    for degree in degrees {
        let swept = request
            .clone()
            .with_config(request.config().clone().with_max_degree(degree));
        let outcome = engine
            .run(vec![Job::new(format!("pareto/d{degree}"), swept.clone())])
            .pop()
            .expect("one job in, one outcome out");
        if let JobStatus::Failed(e) = &outcome.status {
            return Err(e.to_string());
        }
        let Some(result) = &outcome.result else {
            // A deadline that starves a rung drops that point rather than
            // failing the whole sweep; without a deadline every rung
            // completes and the front is fully deterministic.
            continue;
        };
        reports.insert(degree, synth_json_object(&swept, &outcome));
        points.push(ParetoPoint {
            max_degree: degree,
            n_switches: result.report.n_switches,
            n_links: result.report.n_links,
            feasible: result.report.constraints_met,
            result: result.clone(),
        });
    }
    let front = pareto_filter(points);
    Ok(front
        .into_iter()
        .map(|p| {
            let report = reports
                .remove(&p.max_degree)
                .expect("every surviving point was rendered");
            (p, report)
        })
        .collect())
}

fn cmd_simulate(schedule: &PhaseSchedule, opts: &Options) -> Result<String, String> {
    let (net, policy) = build_network(schedule, opts)?;
    let plan = place(&net, opts.seed);
    let config = SimConfig::paper().with_link_delays(plan.link_lengths(&net));
    let stats = AppDriver::new(&net, policy, config)
        .run(schedule)
        .map_err(|e| e.to_string())?;
    if opts.json {
        return Ok(format!(
            "{}\n",
            sim_stats_json("simulate", &net, &stats, opts)
        ));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "network: {} ({} switches, {} links)",
        opts.network,
        net.n_switches(),
        net.n_network_links()
    );
    let _ = writeln!(out, "{stats}");
    let _ = writeln!(
        out,
        "packet latency: mean {:.1}, max {}; deadlock kills: {}",
        stats.packets.mean_latency, stats.packets.max_latency, stats.packets.deadlock_kills
    );
    Ok(out)
}

fn cmd_verify_pattern(
    pattern: &AppPattern,
    schedule: &PhaseSchedule,
    opts: &Options,
) -> Result<String, String> {
    let (_, policy) = build_network_for(pattern, schedule, opts)?;
    // Deterministic table: take the first-alternative route per flow.
    let routes = policy_table(&policy, pattern)?;
    let report = verify_contention_free(pattern.contention(), &routes);
    if opts.json {
        let obj = JsonValue::object([
            ("command", JsonValue::from("verify")),
            ("network", JsonValue::from(opts.network.as_str())),
            (
                "contention_free",
                JsonValue::from(report.is_contention_free()),
            ),
            ("witnesses", JsonValue::from(report.witnesses().len())),
        ]);
        return Ok(format!("{obj}\n"));
    }
    Ok(format!("{report}\n"))
}

/// Renders simulation statistics as one deterministic JSON object —
/// counters and cycle counts only, never wall-clock time.
fn sim_stats_json(
    command: &str,
    net: &Network,
    stats: &nocsyn_sim::ExecutionStats,
    opts: &Options,
) -> JsonValue {
    JsonValue::object([
        ("command", JsonValue::from(command)),
        ("network", JsonValue::from(opts.network.as_str())),
        ("switches", JsonValue::from(net.n_switches())),
        ("links", JsonValue::from(net.n_network_links())),
        ("exec_cycles", JsonValue::from(stats.exec_cycles)),
        ("delivered", JsonValue::from(stats.delivered)),
        ("max_comm_cycles", JsonValue::from(stats.max_comm_cycles)),
        (
            "packets_delivered",
            JsonValue::from(stats.packets.delivered),
        ),
        ("max_latency", JsonValue::from(stats.packets.max_latency)),
        (
            "deadlock_kills",
            JsonValue::from(stats.packets.deadlock_kills),
        ),
        ("retransmits", JsonValue::from(stats.packets.retransmits)),
    ])
}

/// Fault-injection sweep: build (or synthesize) the network, inject each
/// scenario, repair the route table over the surviving subgraph, and
/// re-run the Theorem 1 check on the repaired table.
fn cmd_faults(
    pattern: &AppPattern,
    schedule: &PhaseSchedule,
    raw: &str,
    opts: &Options,
) -> Result<String, String> {
    let (net, policy) = build_network_for(pattern, schedule, opts)?;
    let routes = policy_table(&policy, pattern)?;
    let scenarios: Vec<FaultScenario> = if opts.exhaustive {
        FaultScenario::enumerate_single_link_faults(&net)
            .into_iter()
            .chain(FaultScenario::enumerate_single_switch_faults(&net))
            .collect()
    } else {
        (0..opts.scenarios as u64)
            .map(|k| {
                FaultScenario::sample(
                    &net,
                    opts.fault_links,
                    opts.fault_switches,
                    opts.scenario_seed.wrapping_add(k),
                )
            })
            .collect()
    };
    if scenarios.is_empty() {
        return Err("no fault scenarios to analyze (network has no failable elements)".into());
    }
    // Each analysis is a pure function of its scenario, and par_map
    // returns results in input order, so the rendered report is
    // byte-identical for any --jobs value.
    let reports: Vec<DegradationReport> = par_map(scenarios, opts.jobs, |scenario| {
        DegradationReport::analyze(&net, pattern.contention(), &routes, scenario)
    });
    let mut out = String::new();
    if opts.json {
        // Re-certify every repaired route table: each line carries a
        // `cert` delta with the certificate's binding and the verdict of
        // the independent checker. The report object itself is unchanged
        // (`DegradationReport::to_json` stays byte-stable); the delta is
        // appended here at the CLI layer.
        let check_opts = CheckOptions::new();
        for report in &reports {
            let cert = build_certificate(
                pattern.n_procs(),
                pattern.cliques(),
                pattern.contention(),
                report.repaired_routes(),
                None,
            );
            let delta = match check_certificate(raw, &cert.to_json(), None, &check_opts) {
                Ok(summary) => JsonValue::object([
                    ("valid", JsonValue::from(true)),
                    ("contention_free", JsonValue::from(summary.contention_free)),
                    ("routes", JsonValue::from(summary.n_routes)),
                    ("binding", JsonValue::from(summary.binding)),
                ]),
                Err(rej) => JsonValue::object([
                    ("valid", JsonValue::from(false)),
                    ("fingerprint", JsonValue::from(rej.fingerprint())),
                ]),
            };
            let base = report.to_json();
            let mut fields: Vec<(String, JsonValue)> = base
                .as_object()
                .map(<[(String, JsonValue)]>::to_vec)
                .unwrap_or_default();
            fields.push(("cert".to_string(), delta));
            let _ = writeln!(out, "{}", JsonValue::object(fields));
        }
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "network: {} ({} switches, {} links); {} flows, {} scenarios",
        opts.network,
        net.n_switches(),
        net.n_network_links(),
        routes.len(),
        reports.len()
    );
    for report in &reports {
        let _ = writeln!(out, "{report}");
    }
    let clean = reports.iter().filter(|r| r.still_contention_free()).count();
    let _ = writeln!(
        out,
        "contention-free after repair: {clean}/{} scenarios",
        reports.len()
    );
    Ok(out)
}

/// Renders a flow as the `[src, dst]` JSON pair used throughout the
/// certificate schema.
fn flow_json(flow: Flow) -> JsonValue {
    JsonValue::array([
        JsonValue::from(flow.src.index()),
        JsonValue::from(flow.dst.index()),
    ])
}

/// The independent certificate checker: validates `<cert.json>` against
/// `<pattern.txt>` with `nocsyn-certify` (set arithmetic over the model
/// crate only — no synthesis code in the loop). Rejections are returned
/// as errors, so the process exits non-zero; with `--json` the error text
/// is a machine-readable object carrying the stable fingerprint and any
/// typed obligation violations.
fn cmd_certify(args: &[String]) -> Result<String, String> {
    let usage = "usage: nocsyn certify <pattern.txt> <cert.json> [--job <hex64>] [--json]";
    let (Some(pattern_path), Some(cert_path)) = (args.first(), args.get(1)) else {
        return Err(usage.into());
    };
    if pattern_path.starts_with('-') || cert_path.starts_with('-') {
        return Err(usage.into());
    }
    let opts = parse_options(&args[2..])?;
    let expected_job = match &opts.job {
        Some(hex) => Some(
            Digest::from_hex(hex)
                .ok_or_else(|| "--job expects a 64-hex-digit job fingerprint".to_string())?,
        ),
        None => None,
    };
    let pattern = std::fs::read_to_string(pattern_path)
        .map_err(|e| format!("reading {pattern_path}: {e}"))?;
    let cert =
        std::fs::read_to_string(cert_path).map_err(|e| format!("reading {cert_path}: {e}"))?;
    match check_certificate(&pattern, &cert, expected_job.as_ref(), &CheckOptions::new()) {
        Ok(summary) => {
            if opts.json {
                let obj = JsonValue::object([
                    ("command", JsonValue::from("certify")),
                    ("valid", JsonValue::from(true)),
                    ("contention_free", JsonValue::from(summary.contention_free)),
                    ("binding", JsonValue::from(summary.binding)),
                    ("obligations", JsonValue::from(summary.n_obligations)),
                    ("routes", JsonValue::from(summary.n_routes)),
                    ("flows", JsonValue::from(summary.n_flows)),
                    ("cliques", JsonValue::from(summary.n_cliques)),
                    ("witnesses", JsonValue::from(summary.n_witnesses)),
                ]);
                Ok(format!("{obj}\n"))
            } else {
                let verdict = if summary.contention_free {
                    "contention-free proof accepted"
                } else {
                    "non-freedom proof accepted (witnesses confirmed)"
                };
                let mut out = String::new();
                let _ = writeln!(out, "certificate: {verdict}");
                let _ = writeln!(out, "binding: {}", summary.binding);
                let _ = writeln!(
                    out,
                    "obligations: {} checked over {}/{} routed flows; {} cliques, {} witnesses",
                    summary.n_obligations,
                    summary.n_routes,
                    summary.n_flows,
                    summary.n_cliques,
                    summary.n_witnesses
                );
                Ok(out)
            }
        }
        Err(rej) => Err(render_rejection(&rej, opts.json)),
    }
}

/// Renders a certificate rejection for `cmd_certify`'s error path.
fn render_rejection(rej: &Rejection, json: bool) -> String {
    if !json {
        return format!("certificate rejected ({}): {rej}", rej.fingerprint());
    }
    let violations: Vec<JsonValue> = rej
        .violations()
        .iter()
        .map(|v| {
            JsonValue::object([
                (
                    "pair",
                    JsonValue::array([flow_json(v.pair.first()), flow_json(v.pair.second())]),
                ),
                (
                    "shared",
                    JsonValue::array(v.shared.iter().map(|s| JsonValue::from(s.as_str()))),
                ),
            ])
        })
        .collect();
    JsonValue::object([
        ("command", JsonValue::from("certify")),
        ("valid", JsonValue::from(false)),
        ("fingerprint", JsonValue::from(rej.fingerprint())),
        ("detail", JsonValue::from(rej.to_string())),
        ("violations", JsonValue::array(violations)),
    ])
    .to_string()
}

/// The commands `dispatch_probe` recognizes (everything `run` accepts).
const COMMANDS: &[&str] = &[
    "info", "synth", "simulate", "verify", "faults", "certify", "fuzz", "help",
];

/// The pure slice of the CLI that the `cli` fuzz target exercises:
/// command lookup, option parsing and input-layer parsing, with no
/// filesystem access and no synthesis. Input layout: first line is the
/// argument vector (whitespace-split), the rest is the pattern body.
fn dispatch_probe(input: &[u8]) -> CaseReport {
    let ticks = input.len() as u64;
    let text = String::from_utf8_lossy(input);
    let (arg_line, body) = match text.split_once('\n') {
        Some((a, b)) => (a, b),
        None => (text.as_ref(), ""),
    };
    let argv: Vec<String> = arg_line.split_whitespace().map(str::to_string).collect();
    let Some(command) = argv.first() else {
        return CaseReport::rejected(ticks, "empty-argv");
    };
    if !COMMANDS.contains(&command.as_str()) {
        return CaseReport::rejected(ticks, "unknown-command");
    }
    if parse_options(&argv[1..]).is_err() {
        return CaseReport::rejected(ticks, "options-rejected");
    }
    match parse_input("<fuzz>", body) {
        Ok(Input::Schedule(s)) => {
            let pattern = AppPattern::from_schedule(&s);
            CaseReport::accepted(ticks, pattern.flows().len() as u64)
        }
        Ok(Input::Trace(t)) => {
            let pattern = AppPattern::from_trace(&t);
            CaseReport::accepted(ticks, pattern.flows().len() as u64)
        }
        Err(_) => CaseReport::rejected(ticks, "input-rejected"),
    }
}

/// Corpus entries shaped like fuzzed CLI invocations (argument line +
/// pattern body), so the mutators reach deep into `dispatch_probe`.
fn cli_corpus() -> Vec<Vec<u8>> {
    [
        "synth --seed 3 --restarts 2 --jobs 2\nprocs 4\nphase bytes=64\n 0 -> 1\n 2 -> 3\n",
        "info\nprocs 2\nphase\n 0 -> 1\n",
        "faults --network mesh --exhaustive --json\nprocs 4\nphase\n 1 -> 2\n",
        "simulate --network torus\nprocs 4\nmsg 0 -> 1 start=0 finish=10\n",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect()
}

fn cmd_fuzz(opts: &Options) -> Result<String, String> {
    let mut registry = Registry::with_builtin_targets();
    registry.register(FuzzTarget::new("cli", dispatch_probe));

    let mut corpus = nocsyn_fuzz::gen::default_corpus();
    corpus.extend(cli_corpus());
    corpus.extend(nocsyn_fuzz::serve_probe::serve_corpus());
    corpus.extend(nocsyn_fuzz::certify_probe::certify_corpus());
    corpus.extend(nocsyn_fuzz::chaos_probe::chaos_corpus());
    if let Some(dir) = &opts.corpus_dir {
        // Sorted read order keeps the corpus (and thus the whole run)
        // deterministic regardless of directory enumeration order.
        let mut paths: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("reading corpus dir {dir}: {e}"))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        for path in paths {
            corpus.push(
                std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?,
            );
        }
    }

    let config = FuzzConfig {
        iters: opts.iters,
        seed: opts.seed,
        ..FuzzConfig::default()
    }
    .from_env();
    let summary = nocsyn_fuzz::run(&registry, &opts.target, &corpus, &config)?;
    if !summary.clean() {
        // Non-zero exit with replay lines on stderr, so CI fails loudly.
        return Err(summary.render_human());
    }
    if opts.json {
        Ok(format!("{}\n", summary.to_json()))
    } else {
        Ok(summary.render_human())
    }
}

/// Builds a [`Server`] from the CLI options (shared by both serve
/// modes).
fn build_server(opts: &Options) -> Server {
    let serve_opts = ServeOptions {
        limits: ParseLimits::default(),
        cache_capacity: opts.cache_capacity,
        cache_dir: opts.cache_dir.clone().map(PathBuf::from),
        max_requests_per_conn: opts.max_requests,
        max_queue_depth: opts.queue_depth,
        max_restarts: opts.max_restarts,
        workers: opts.jobs,
        io_timeout: opts.io_timeout_ms.map(std::time::Duration::from_millis),
        disk_io: None,
    };
    let sink: Arc<dyn EventSink> = if opts.events {
        Arc::new(JsonLinesSink::stderr())
    } else {
        Arc::new(NullSink)
    };
    Server::new(serve_opts).with_sink(sink)
}

fn cmd_serve(opts: &Options) -> Result<String, String> {
    let server = build_server(opts);
    if let Some(addr) = &opts.listen {
        let listener = std::net::TcpListener::bind(addr.as_str())
            .map_err(|e| format!("binding {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        // Stderr so scripts capturing stdout see only protocol output;
        // printed before the accept loop so callers binding port 0 can
        // learn the ephemeral port.
        eprintln!("nocsyn serve: listening on {local}");
        server
            .serve_listener(&listener, opts.once)
            .map_err(|e| e.to_string())?;
        Ok(String::new())
    } else if opts.drain {
        // Scriptable mode: requests on stdin, replies on stdout, exit at
        // end of input. `nocsyn serve --drain < jobs.jsonl` needs no
        // daemon lifecycle management at all.
        let stdin = std::io::stdin();
        let mut out: Vec<u8> = Vec::new();
        server
            .serve_stream(stdin.lock(), &mut out)
            .map_err(|e| e.to_string())?;
        String::from_utf8(out).map_err(|e| format!("reply stream was not UTF-8: {e}"))
    } else {
        Err("serve requires --listen <addr> or --drain".into())
    }
}

fn cmd_client(args: &[String]) -> Result<String, String> {
    let usage = "usage: nocsyn client <addr> submit <pattern.txt> [opts] | status | stats";
    let Some(addr) = args.first() else {
        return Err(usage.into());
    };
    let Some(op) = args.get(1) else {
        return Err(usage.into());
    };
    let (request, client_opts) = match op.as_str() {
        "status" => (r#"{"op":"status"}"#.to_string(), parse_options(&args[2..])?),
        "stats" => (r#"{"op":"stats"}"#.to_string(), parse_options(&args[2..])?),
        "submit" => {
            let Some(path) = args.get(2) else {
                return Err("client submit requires a pattern file".into());
            };
            let opts = parse_options(&args[3..])?;
            let pattern =
                std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            // Seed, restarts and max-degree are always sent explicitly
            // (CLI defaults match the daemon's), so the submitted job is
            // exactly the one `nocsyn synth` would run locally.
            let mut fields = vec![
                ("op", JsonValue::from("synth")),
                ("pattern", JsonValue::from(pattern)),
                ("seed", JsonValue::from(opts.seed)),
                ("restarts", JsonValue::from(opts.restarts)),
                ("max_degree", JsonValue::from(opts.max_degree)),
            ];
            if let Some(d) = opts.deadline_ms {
                fields.push(("deadline_ms", JsonValue::from(d)));
            }
            (JsonValue::object(fields).to_string(), opts)
        }
        other => return Err(format!("unknown client operation `{other}`; {usage}")),
    };
    // Failures surface as stable kebab-case fingerprints (connect-failed,
    // connection-lost, reply-malformed, retries-exhausted) with a
    // non-zero exit, so scripts can dispatch on the first token.
    let policy = RetryPolicy {
        retries: client_opts.retries,
        backoff_ms: client_opts.backoff_ms,
        seed: client_opts.seed,
    };
    let reply =
        Client::request_with_retry(addr.as_str(), &request, &policy).map_err(|e| e.to_string())?;
    Ok(format!("{reply}\n"))
}

fn cmd_chaos(opts: &Options) -> Result<String, String> {
    let config = ChaosConfig {
        seed: opts.seed,
        iters: opts.iters,
        ..ChaosConfig::default()
    };
    let summary = run_chaos(&config);
    if !summary.clean() {
        // Non-zero exit with the violation details on stderr, so CI
        // fails loudly.
        return Err(summary.render_human());
    }
    if opts.json {
        Ok(format!("{}\n", summary.to_json()))
    } else {
        Ok(summary.render_human())
    }
}

/// Open-loop replay of a timed trace (`simulate` on trace input).
fn cmd_replay(trace: &Trace, opts: &Options) -> Result<String, String> {
    let stand_in = schedule_stand_in(trace);
    let pattern = AppPattern::from_trace(trace);
    let (net, policy) = build_network_for(&pattern, &stand_in, opts)?;
    let plan = place(&net, opts.seed);
    let config = SimConfig::paper().with_link_delays(plan.link_lengths(&net));
    let stats = nocsyn_sim::run_trace(&net, &policy, config, trace).map_err(|e| e.to_string())?;
    if opts.json {
        let obj = JsonValue::object([
            ("command", JsonValue::from("replay")),
            ("network", JsonValue::from(opts.network.as_str())),
            ("switches", JsonValue::from(net.n_switches())),
            ("links", JsonValue::from(net.n_network_links())),
            ("delivered", JsonValue::from(stats.delivered)),
            ("max_latency", JsonValue::from(stats.max_latency)),
            ("deadlock_kills", JsonValue::from(stats.deadlock_kills)),
            ("retransmits", JsonValue::from(stats.retransmits)),
        ]);
        return Ok(format!("{obj}\n"));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "network: {} ({} switches, {} links); open-loop trace replay",
        opts.network,
        net.n_switches(),
        net.n_network_links()
    );
    let _ = writeln!(out, "{stats}");
    Ok(out)
}

/// Builds the requested comparison network for a schedule.
fn build_network(
    schedule: &PhaseSchedule,
    opts: &Options,
) -> Result<(Network, RoutePolicy), String> {
    build_network_for(&AppPattern::from_schedule(schedule), schedule, opts)
}

/// Builds the requested comparison network for an explicit pattern (the
/// schedule is only consulted for the process count).
fn build_network_for(
    pattern: &AppPattern,
    schedule: &PhaseSchedule,
    opts: &Options,
) -> Result<(Network, RoutePolicy), String> {
    let n = schedule.n_procs().max(pattern.n_procs());
    let (rows, cols) = near_square(n);
    match opts.network.as_str() {
        "crossbar" => {
            let (net, routes) = regular::crossbar(n).map_err(|e| e.to_string())?;
            Ok((net, RoutePolicy::deterministic(routes)))
        }
        "mesh" => {
            let (net, routes) = regular::mesh(rows, cols).map_err(|e| e.to_string())?;
            Ok((net, RoutePolicy::deterministic(routes)))
        }
        "torus" => {
            let (net, xy, yx) =
                regular::torus_with_alternates(rows, cols).map_err(|e| e.to_string())?;
            Ok((net, RoutePolicy::adaptive(vec![xy, yx])))
        }
        "generated" => {
            let config = SynthesisConfig::new()
                .with_max_degree(opts.max_degree)
                .with_seed(opts.seed)
                .with_restarts(opts.restarts);
            let result = synthesize(pattern, &config).map_err(|e| e.to_string())?;
            Ok((result.network, RoutePolicy::deterministic(result.routes)))
        }
        other => Err(format!(
            "unknown network `{other}` (expected generated|mesh|torus|crossbar)"
        )),
    }
}

/// Extracts a deterministic route table covering the pattern's flows from
/// a policy: the zero-load (first-alternative) choice per flow, which is
/// what a static Theorem 1 check should see.
fn policy_table(policy: &RoutePolicy, pattern: &AppPattern) -> Result<RouteTable, String> {
    let mut table = RouteTable::new();
    for &flow in pattern.flows() {
        let route = policy
            .first_route(flow)
            .ok_or_else(|| format!("no route for flow {flow}"))?;
        table.insert(flow, route.clone());
    }
    Ok(table)
}

/// Most-square factorization of `n`.
fn near_square(n: usize) -> (usize, usize) {
    let mut r = (n as f64).sqrt().floor() as usize;
    while r > 1 && !n.is_multiple_of(r) {
        r -= 1;
    }
    (r.max(1), n / r.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_pattern(name: &str, content: &str) -> String {
        let path = std::env::temp_dir().join(format!("nocsyn-cli-test-{name}.txt"));
        std::fs::write(&path, content).expect("temp dir is writable");
        path.to_string_lossy().into_owned()
    }

    const PATTERN: &str =
        "procs 4\nphase bytes=256\n  0 -> 1\n  2 -> 3\nphase bytes=256\n  1 -> 2\n  3 -> 0\n";

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_without_arguments() {
        let out = run(&[]).unwrap();
        assert!(out.contains("USAGE"));
        assert!(run(&args(&["help"])).unwrap().contains("COMMANDS"));
    }

    #[test]
    fn info_reports_periods() {
        let path = write_pattern("info", PATTERN);
        let out = run(&args(&["info", &path])).unwrap();
        assert!(out.contains("4 procs"));
        assert!(out.contains("period 1"));
    }

    #[test]
    fn synth_reports_network_and_theorem1() {
        let path = write_pattern("synth", PATTERN);
        let out = run(&args(&["synth", &path, "--restarts", "2", "--seed", "3"])).unwrap();
        assert!(out.contains("synthesized"));
        assert!(out.contains("contention-free: C ∩ R = ∅"));
        assert!(out.contains("area vs 2x2 mesh"));
    }

    #[test]
    fn synth_explain_breaks_down_pipes() {
        let path = write_pattern("explain", PATTERN);
        let out = run(&args(&["synth", &path, "--restarts", "1", "--explain"])).unwrap();
        assert!(out.contains("pipes:"));
        assert!(out.contains("switches:"));
    }

    #[test]
    fn synth_jobs_worker_count_does_not_change_output() {
        let path = write_pattern("jobs", PATTERN);
        let base = args(&["synth", &path, "--restarts", "4", "--seed", "11", "--dot"]);
        let j1 = run(&[base.clone(), args(&["--jobs", "1"])].concat()).unwrap();
        let j4 = run(&[base, args(&["--jobs", "4"])].concat()).unwrap();
        assert_eq!(j1, j4);
    }

    #[test]
    fn info_json_is_one_deterministic_object() {
        let path = write_pattern("info-json", PATTERN);
        let a = run(&args(&["info", &path, "--json"])).unwrap();
        let b = run(&args(&["info", &path, "--json"])).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"command\":\"info\""), "{a}");
        assert!(a.contains("\"procs\":4"), "{a}");
        assert!(a.contains("\"contention_pairs\":"), "{a}");
        assert!(a.contains("\"max_clique\":"), "{a}");
        assert_eq!(a.lines().count(), 1);
    }

    #[test]
    fn synth_json_reports_counters_and_is_jobs_invariant() {
        let path = write_pattern("synth-json", PATTERN);
        let base = args(&["synth", &path, "--restarts", "4", "--seed", "11", "--json"]);
        let j1 = run(&[base.clone(), args(&["--jobs", "1"])].concat()).unwrap();
        let j4 = run(&[base, args(&["--jobs", "4"])].concat()).unwrap();
        assert_eq!(j1, j4, "synth --json must be worker-count invariant");
        assert!(j1.starts_with("{\"command\":\"synth\""), "{j1}");
        assert!(j1.contains("\"status\":\"ok\""), "{j1}");
        assert!(j1.contains("\"contention_free\":true"), "{j1}");
        assert!(j1.contains("\"moves_tried\":"), "{j1}");
        // No wall-clock fields ever — the object must be byte-stable.
        assert!(!j1.contains("elapsed"), "{j1}");
    }

    #[test]
    fn simulate_json_reports_cycle_counters() {
        let path = write_pattern("sim-json", PATTERN);
        let a = run(&args(&["simulate", &path, "--network", "mesh", "--json"])).unwrap();
        let b = run(&args(&["simulate", &path, "--network", "mesh", "--json"])).unwrap();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"command\":\"simulate\""), "{a}");
        assert!(a.contains("\"network\":\"mesh\""), "{a}");
        assert!(a.contains("\"exec_cycles\":"), "{a}");
        assert!(a.contains("\"deadlock_kills\":"), "{a}");
    }

    #[test]
    fn verify_json_reports_theorem1_outcome() {
        let path = write_pattern("verify-json", PATTERN);
        let out = run(&args(&["verify", &path, "--json"])).unwrap();
        assert!(out.starts_with("{\"command\":\"verify\""), "{out}");
        assert!(out.contains("\"contention_free\":"), "{out}");
        assert!(out.contains("\"witnesses\":"), "{out}");
    }

    #[test]
    fn synth_zero_deadline_fails_gracefully() {
        let path = write_pattern("deadline", PATTERN);
        let err = run(&args(&[
            "synth",
            &path,
            "--deadline-ms",
            "0",
            "--jobs",
            "2",
        ]))
        .unwrap_err();
        assert!(err.contains("deadline"), "{err}");
    }

    #[test]
    fn synth_generous_deadline_still_reports() {
        let path = write_pattern("deadline-ok", PATTERN);
        let out = run(&args(&[
            "synth",
            &path,
            "--restarts",
            "2",
            "--deadline-ms",
            "60000",
        ]))
        .unwrap();
        assert!(out.contains("synthesized"), "{out}");
    }

    #[test]
    fn synth_dot_emits_graphviz() {
        let path = write_pattern("dot", PATTERN);
        let out = run(&args(&["synth", &path, "--restarts", "1", "--dot"])).unwrap();
        assert!(out.contains("graph network {"));
    }

    #[test]
    fn simulate_on_each_network_kind() {
        let path = write_pattern("sim", PATTERN);
        for kind in ["crossbar", "mesh", "torus", "generated"] {
            let out = run(&args(&[
                "simulate",
                &path,
                "--network",
                kind,
                "--restarts",
                "1",
            ]))
            .unwrap();
            assert!(out.contains("exec"), "{kind}: {out}");
            assert!(out.contains("deadlock kills: 0"), "{kind}");
        }
    }

    #[test]
    fn verify_flags_contention_on_baselines() {
        let path = write_pattern("verify", PATTERN);
        let out = run(&args(&["verify", &path, "--network", "crossbar"])).unwrap();
        assert!(out.contains("contention-free"));
    }

    #[test]
    fn faults_classifies_every_scenario() {
        let path = write_pattern("faults", PATTERN);
        let out = run(&args(&[
            "faults",
            &path,
            "--network",
            "mesh",
            "--exhaustive",
        ]))
        .unwrap();
        assert!(out.contains("scenarios"), "{out}");
        assert!(out.contains("contention-free after repair:"), "{out}");
        assert!(out.contains("faults L0:"), "{out}");
    }

    #[test]
    fn faults_json_is_identical_across_worker_counts() {
        let path = write_pattern("faults-jobs", PATTERN);
        let base = args(&[
            "faults",
            &path,
            "--network",
            "mesh",
            "--exhaustive",
            "--json",
        ]);
        let j1 = run(&[base.clone(), args(&["--jobs", "1"])].concat()).unwrap();
        let j4 = run(&[base, args(&["--jobs", "4"])].concat()).unwrap();
        assert_eq!(j1, j4);
        for line in j1.lines() {
            assert!(line.starts_with(r#"{"scenario":"#), "{line}");
            assert!(line.contains(r#""contention_free":"#), "{line}");
        }
    }

    #[test]
    fn faults_sampled_scenarios_are_seeded() {
        let path = write_pattern("faults-seed", PATTERN);
        let base = args(&[
            "faults",
            &path,
            "--network",
            "generated",
            "--restarts",
            "1",
            "--scenarios",
            "3",
            "--fault-links",
            "2",
            "--json",
        ]);
        let a = run(&[base.clone(), args(&["--scenario-seed", "7"])].concat()).unwrap();
        let b = run(&[base, args(&["--scenario-seed", "7"])].concat()).unwrap();
        assert_eq!(a, b, "same sampling seed must reproduce the sweep");
        assert_eq!(a.lines().count(), 3);
    }

    #[test]
    fn faults_rejects_bad_options() {
        let path = write_pattern("faults-bad", PATTERN);
        assert!(run(&args(&["faults", &path, "--scenarios", "0"])).is_err());
        assert!(run(&args(&["faults", &path, "--fault-links", "some"])).is_err());
        assert!(run(&args(&["faults", &path, "--scenario-seed"])).is_err());
    }

    #[test]
    fn synth_emit_cert_round_trips_through_certify() {
        let path = write_pattern("emit-cert", PATTERN);
        let cert = std::env::temp_dir().join("nocsyn-cli-test-emit-cert.json");
        let cert = cert.to_string_lossy().into_owned();
        run(&args(&[
            "synth",
            &path,
            "--restarts",
            "1",
            "--seed",
            "5",
            "--emit-cert",
            &cert,
        ]))
        .unwrap();
        let human = run(&args(&["certify", &path, &cert])).unwrap();
        assert!(human.contains("contention-free proof accepted"), "{human}");
        let json = run(&args(&["certify", &path, &cert, "--json"])).unwrap();
        assert!(
            json.starts_with("{\"command\":\"certify\",\"valid\":true"),
            "{json}"
        );
        assert!(json.contains("\"contention_free\":true"), "{json}");
        assert!(json.contains("\"binding\":"), "{json}");
    }

    #[test]
    fn certify_enforces_the_job_binding() {
        let path = write_pattern("cert-job", PATTERN);
        let cert = std::env::temp_dir().join("nocsyn-cli-test-cert-job.json");
        let cert = cert.to_string_lossy().into_owned();
        run(&args(&[
            "synth",
            &path,
            "--restarts",
            "1",
            "--seed",
            "5",
            "--emit-cert",
            &cert,
        ]))
        .unwrap();
        // The emitted certificate is bound to the job fingerprint serve
        // would compute; a wrong expected digest must be rejected.
        let wrong = "0".repeat(64);
        let err = run(&args(&["certify", &path, &cert, "--job", &wrong])).unwrap_err();
        assert!(err.contains("cert-job-mismatch"), "{err}");
        assert!(run(&args(&["certify", &path, &cert, "--job", "zz"])).is_err());
    }

    #[test]
    fn certify_rejects_tampered_certificates_with_a_fingerprint() {
        let path = write_pattern("cert-tamper", PATTERN);
        let cert = std::env::temp_dir().join("nocsyn-cli-test-cert-tamper.json");
        let cert = cert.to_string_lossy().into_owned();
        run(&args(&[
            "synth",
            &path,
            "--restarts",
            "1",
            "--seed",
            "5",
            "--emit-cert",
            &cert,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&cert).unwrap();
        let tampered = text.replacen("\"contention_free\":true", "\"contention_free\":false", 1);
        assert_ne!(text, tampered, "tamper site must exist");
        std::fs::write(&cert, tampered).unwrap();
        let err = run(&args(&["certify", &path, &cert, "--json"])).unwrap_err();
        assert!(err.contains("\"valid\":false"), "{err}");
        assert!(
            err.contains("\"fingerprint\":\"cert-binding-mismatch\""),
            "{err}"
        );
        std::fs::write(&cert, "not a certificate").unwrap();
        let err = run(&args(&["certify", &path, &cert])).unwrap_err();
        assert!(err.contains("certificate rejected ("), "{err}");
    }

    #[test]
    fn certify_rejects_bad_usage() {
        let path = write_pattern("cert-usage", PATTERN);
        assert!(run(&args(&["certify"])).is_err());
        assert!(run(&args(&["certify", &path])).is_err());
        assert!(run(&args(&["certify", &path, "--json"])).is_err());
        assert!(run(&args(&["certify", &path, "/nonexistent-nocsyn-cert"])).is_err());
    }

    #[test]
    fn faults_json_carries_a_cert_delta_per_scenario() {
        let path = write_pattern("faults-cert", PATTERN);
        let out = run(&args(&[
            "faults",
            &path,
            "--network",
            "mesh",
            "--exhaustive",
            "--json",
        ]))
        .unwrap();
        for line in out.lines() {
            assert!(line.contains("\"cert\":{\"valid\":true"), "{line}");
            assert!(line.contains("\"binding\":"), "{line}");
        }
    }

    #[test]
    fn trace_input_is_autodetected() {
        let trace = "procs 4\nmsg 0 -> 1 start=0 finish=200 bytes=256\nmsg 2 -> 3 start=0 finish=200 bytes=256\n";
        let path = write_pattern("trace", trace);
        let info = run(&args(&["info", &path])).unwrap();
        assert!(info.contains("4 procs"));
        let synth = run(&args(&["synth", &path, "--restarts", "1"])).unwrap();
        assert!(synth.contains("contention-free"));
        let replay = run(&args(&["simulate", &path, "--network", "mesh"])).unwrap();
        assert!(replay.contains("open-loop trace replay"));
        assert!(replay.contains("2 delivered"));
        let verify = run(&args(&["verify", &path, "--network", "crossbar"])).unwrap();
        assert!(verify.contains("contention-free"));
    }

    #[test]
    fn fuzz_smoke_runs_clean() {
        let out = run(&args(&["fuzz", "--iters", "200", "--seed", "1"])).unwrap();
        assert!(
            out.contains("ok: zero crashes, zero budget violations"),
            "{out}"
        );
        assert!(out.contains("cli:"), "{out}");
        assert!(out.contains("parse_schedule:"), "{out}");
        assert!(out.contains("parse_trace:"), "{out}");
    }

    #[test]
    fn fuzz_json_is_deterministic_per_seed() {
        let base = args(&["fuzz", "--iters", "150", "--seed", "9", "--json"]);
        let a = run(&base).unwrap();
        let b = run(&base).unwrap();
        assert_eq!(a, b, "same seed must give a byte-identical summary");
        assert!(a.starts_with("{\"seed\":9,\"iters\":150,"), "{a}");
        let c = run(&args(&["fuzz", "--iters", "150", "--seed", "10", "--json"])).unwrap();
        assert_ne!(a, c, "different seeds must explore different inputs");
    }

    #[test]
    fn fuzz_single_target_and_corpus_dir() {
        let dir = std::env::temp_dir().join("nocsyn-cli-test-corpus");
        std::fs::create_dir_all(&dir).expect("temp dir is writable");
        std::fs::write(dir.join("a.txt"), PATTERN).expect("writable");
        let out = run(&args(&[
            "fuzz",
            "--target",
            "parse_schedule",
            "--iters",
            "100",
            "--corpus-dir",
            &dir.to_string_lossy(),
        ]))
        .unwrap();
        assert!(out.contains("parse_schedule:"), "{out}");
        assert!(!out.contains("parse_trace:"), "{out}");
    }

    #[test]
    fn fuzz_rejects_bad_usage() {
        let err = run(&args(&["fuzz", "--target", "bogus", "--iters", "5"])).unwrap_err();
        assert!(err.contains("unknown fuzz target `bogus`"), "{err}");
        assert!(err.contains("parse_schedule"), "{err}");
        assert!(run(&args(&["fuzz", "--iters", "0"])).is_err());
        assert!(run(&args(&["fuzz", "--corpus-dir", "/nonexistent-nocsyn-dir"])).is_err());
    }

    #[test]
    fn dispatch_probe_covers_accept_and_reject_paths() {
        assert_eq!(dispatch_probe(b"").rejected, Some("empty-argv"));
        assert_eq!(dispatch_probe(b"bogus\n").rejected, Some("unknown-command"));
        assert_eq!(
            dispatch_probe(b"synth --wat\nprocs 2\n").rejected,
            Some("options-rejected")
        );
        assert_eq!(
            dispatch_probe(b"synth\nprocs 0\n").rejected,
            Some("input-rejected")
        );
        let ok = dispatch_probe(b"synth --seed 1\nprocs 4\nphase\n 0 -> 1\n");
        assert_eq!(ok.rejected, None);
        assert_eq!(ok.output_units, 1);
    }

    #[test]
    fn error_paths() {
        assert!(run(&args(&["synth"])).is_err()); // missing file
        assert!(run(&args(&["bogus", "x"])).is_err());
        assert!(run(&args(&["info", "/nonexistent-nocsyn-file"])).is_err());
        let path = write_pattern("badopt", PATTERN);
        assert!(run(&args(&["synth", &path, "--max-degree", "lots"])).is_err());
        assert!(run(&args(&["synth", &path, "--restarts", "0"])).is_err());
        assert!(run(&args(&["synth", &path, "--jobs", "0"])).is_err());
        assert!(run(&args(&["synth", &path, "--jobs", "many"])).is_err());
        assert!(run(&args(&["synth", &path, "--jobs"])).is_err());
        assert!(run(&args(&["synth", &path, "--deadline-ms", "soon"])).is_err());
        assert!(run(&args(&["simulate", &path, "--network", "hypercube"])).is_err());
        assert!(run(&args(&["synth", &path, "--wat"])).is_err());
        let bad = write_pattern("badpattern", "phase\n 0 -> 1\n");
        assert!(run(&args(&["info", &bad])).is_err());
    }
}
