//! `nocsyn` — contention-aware synthesis of application-specific on-chip
//! interconnects.
//!
//! Facade crate re-exporting the whole workspace. See the individual crates
//! for details; `README.md` has the architecture overview.

#![forbid(unsafe_code)]

pub mod cli;

pub mod prelude {
    //! The curated single-import surface for typical programs:
    //! `use nocsyn::prelude::*;` covers characterizing an application,
    //! synthesizing a network for it, verifying contention-freedom,
    //! simulating it, and batching jobs through the engine. Specialized
    //! items (Graphviz rendering, regular topologies, energy models,
    //! fuzzing) stay behind their module paths.
    //!
    //! Where two crates export the same name (`Engine` exists in both the
    //! batch engine and the simulator core), the prelude carries the
    //! batch [`Engine`]; reach the other as `nocsyn::sim::Engine`.
    pub use nocsyn_engine::{
        CollectSink, Engine, EngineEvent, EventSink, Job, JobOutcome, JobStatus, JsonLinesSink,
    };
    pub use nocsyn_floorplan::place;
    pub use nocsyn_model::{
        parse_schedule, parse_trace, Flow, FlowInterner, FlowSet, ParseLimits, ParseOptions, Phase,
        PhaseSchedule, ProcId, Trace,
    };
    pub use nocsyn_sim::{AppDriver, RoutePolicy, SimConfig};
    pub use nocsyn_synth::{
        synthesize, synthesize_network, AppPattern, ColoringStrategy, SynthesisConfig,
        SynthesisMode, SynthesisRequest, SynthesisResult,
    };
    pub use nocsyn_topo::{verify_contention_free, Network};
    pub use nocsyn_workloads::{Benchmark, WorkloadParams};
}

pub use nocsyn_certify as certify;
pub use nocsyn_coloring as coloring;
pub use nocsyn_engine as engine;
pub use nocsyn_faults as faults;
pub use nocsyn_floorplan as floorplan;
pub use nocsyn_model as model;
pub use nocsyn_serve as serve;
pub use nocsyn_sim as sim;
pub use nocsyn_synth as synth;
pub use nocsyn_topo as topo;
pub use nocsyn_workloads as workloads;
