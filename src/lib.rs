//! `nocsyn` — contention-aware synthesis of application-specific on-chip
//! interconnects.
//!
//! Facade crate re-exporting the whole workspace. See the individual crates
//! for details; `README.md` has the architecture overview.

#![forbid(unsafe_code)]

pub mod cli;

pub use nocsyn_coloring as coloring;
pub use nocsyn_engine as engine;
pub use nocsyn_faults as faults;
pub use nocsyn_floorplan as floorplan;
pub use nocsyn_model as model;
pub use nocsyn_sim as sim;
pub use nocsyn_synth as synth;
pub use nocsyn_topo as topo;
pub use nocsyn_workloads as workloads;
