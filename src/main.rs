//! `nocsyn` — command-line front end for the interconnect synthesizer.
//!
//! All logic lives in [`nocsyn::cli`]; this wrapper only maps the result
//! onto the process exit code.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match nocsyn::cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("run `nocsyn help` for usage");
            ExitCode::FAILURE
        }
    }
}
