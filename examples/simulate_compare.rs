//! Head-to-head simulation: run the CG workload on a crossbar, a mesh, a
//! torus, and the network synthesized for it, and compare execution and
//! communication time — a miniature of the paper's Figure 8.
//!
//! Run with `cargo run --release --example simulate_compare`.

use nocsyn::prelude::*;
use nocsyn::topo::regular;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 16;
    let schedule = Benchmark::Cg.schedule(n, &WorkloadParams::paper_default(Benchmark::Cg))?;

    // The four contenders.
    let (xbar, xbar_routes) = regular::crossbar(n)?;
    let (mesh, mesh_routes) = regular::mesh(4, 4)?;
    let (torus, torus_xy, torus_yx) = regular::torus_with_alternates(4, 4)?;
    let generated = synthesize(
        &AppPattern::from_schedule(&schedule),
        &SynthesisConfig::new().with_seed(1),
    )?;

    let contenders: Vec<(&str, &nocsyn::topo::Network, RoutePolicy)> = vec![
        ("crossbar", &xbar, RoutePolicy::deterministic(xbar_routes)),
        ("mesh", &mesh, RoutePolicy::deterministic(mesh_routes)),
        (
            "torus",
            &torus,
            RoutePolicy::adaptive(vec![torus_xy, torus_yx]),
        ),
        (
            "generated",
            &generated.network,
            RoutePolicy::deterministic(generated.routes.clone()),
        ),
    ];

    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>9}",
        "network", "exec (cyc)", "comm (cyc)", "messages", "deadlocks"
    );
    let mut base = None;
    for (name, net, policy) in contenders {
        // Link delays follow each network's own floorplan.
        let plan = place(net, 99);
        let config = SimConfig::paper().with_link_delays(plan.link_lengths(net));
        let stats = AppDriver::new(net, policy, config).run(&schedule)?;
        let rel = match base {
            None => {
                base = Some(stats.exec_cycles as f64);
                1.0
            }
            Some(b) => stats.exec_cycles as f64 / b,
        };
        println!(
            "{:<10} {:>10} {:>12.0} {:>10} {:>9}   ({:>5.3}x crossbar)",
            name,
            stats.exec_cycles,
            stats.mean_comm_cycles,
            stats.delivered,
            stats.packets.deadlock_kills,
            rel
        );
    }
    Ok(())
}
