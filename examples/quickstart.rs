//! Quickstart: characterize a tiny application, synthesize a network for
//! it, and verify it is contention-free.
//!
//! Run with `cargo run --example quickstart`.

use nocsyn::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the application's communication as phases: each phase is
    //    one communication call — a partial permutation of flows that are
    //    live simultaneously (one contention period).
    let mut schedule = PhaseSchedule::new(8);
    // A neighbor exchange...
    schedule.push(Phase::from_flows([
        (0usize, 1usize),
        (2, 3),
        (4, 5),
        (6, 7),
    ])?)?;
    schedule.push(Phase::from_flows([
        (1usize, 0usize),
        (3, 2),
        (5, 4),
        (7, 6),
    ])?)?;
    // ...then a butterfly step.
    schedule.push(Phase::from_flows([
        (0usize, 4usize),
        (1, 5),
        (2, 6),
        (3, 7),
    ])?)?;
    schedule.push(Phase::from_flows([
        (4usize, 0usize),
        (5, 1),
        (6, 2),
        (7, 3),
    ])?)?;

    // 2. Extract the contention model (Definitions 2-5 of the paper).
    let pattern = AppPattern::from_schedule(&schedule);
    println!("{pattern}");

    // 3. Synthesize a minimal low-contention network under a maximum
    //    switch degree of 5 (the paper's running constraint).
    let config = SynthesisConfig::new().with_max_degree(5).with_seed(42);
    let result = synthesize(&pattern, &config)?;
    println!("\n{}", result.report);
    println!("\n{}", result.network);

    // 4. Check Theorem 1: the application's potential contention set must
    //    not intersect the network's resource conflict set.
    let report = verify_contention_free(pattern.contention(), &result.routes);
    println!("{report}");
    assert!(report.is_contention_free());

    // 5. Inspect a route: flows are source-routed over explicit channels.
    let flow = nocsyn::model::Flow::from_indices(0, 4);
    if let Some(route) = result.routes.route(flow) {
        println!("route for {flow}: {route}");
    }
    Ok(())
}
