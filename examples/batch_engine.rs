//! Batch synthesis through the execution engine: submit every paper
//! benchmark as one job batch, fan the restart portfolios across the
//! machine, stream structured telemetry, and show that a worker count
//! never changes a selected result.
//!
//! Run with `cargo run --release --example batch_engine`.

use std::sync::Arc;

use nocsyn::prelude::*;

fn jobs() -> Result<Vec<Job>, Box<dyn std::error::Error>> {
    Benchmark::ALL
        .into_iter()
        .map(|benchmark| {
            let sched = benchmark.schedule(16, &WorkloadParams::paper_default(benchmark))?;
            let request = SynthesisRequest::builder(AppPattern::from_schedule(&sched))
                .config(SynthesisConfig::new().with_seed(0xBA7C ^ (benchmark as u64)))
                .restarts(8)
                .build()?;
            Ok(Job::new(format!("{}-16", benchmark.name()), request))
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A telemetry sink that buffers events; JsonLinesSink::stderr() would
    // stream them as JSON lines instead (what `nocsyn synth --events` does).
    let sink = Arc::new(CollectSink::new());
    let engine = Engine::new().with_sink(sink.clone());
    println!(
        "running {} jobs on {} workers",
        Benchmark::ALL.len(),
        engine.workers()
    );

    let outcomes = engine.run(jobs()?);
    println!(
        "\n{:<8} {:>9} {:>7} {:>9} {:>9}",
        "job", "restarts", "links", "switches", "status"
    );
    for o in &outcomes {
        let (links, switches) = o
            .result
            .as_ref()
            .map_or((0, 0), |r| (r.report.n_links, r.report.n_switches));
        println!(
            "{:<8} {:>6}/{:<2} {:>7} {:>9} {:>9}",
            o.name,
            o.attempts_completed,
            o.attempts_total,
            links,
            switches,
            o.status.label()
        );
        assert_eq!(o.status, JobStatus::Completed);
    }

    // The portfolio reduction is a stable argmin: rerunning on a single
    // worker selects bit-identical networks.
    let single = Engine::new().with_workers(1).run(jobs()?);
    for (a, b) in outcomes.iter().zip(&single) {
        let (ra, rb) = (a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        assert_eq!(ra.report, rb.report, "{}", a.name);
        assert_eq!(ra.routes, rb.routes, "{}", a.name);
    }
    println!("\nworker count did not change any selected result (asserted).");

    let restarts = sink
        .events()
        .iter()
        .filter(|e| e.kind() == "restart_completed")
        .count();
    println!("telemetry: {restarts} restart events, e.g.:");
    if let Some(event) = sink
        .events()
        .iter()
        .find(|e| e.kind() == "restart_completed")
    {
        println!("  {}", event.to_json());
    }
    if let Some(EngineEvent::JobFinished {
        job, elapsed_ms, ..
    }) = sink
        .events()
        .iter()
        .find(|e| e.kind() == "job_finished")
        .cloned()
    {
        println!("  first finished job: {job} after {elapsed_ms} ms");
    }
    Ok(())
}
