//! Synthesizing an interconnect for a custom SoC accelerator pipeline —
//! the paper's motivating use case beyond HPC benchmarks: a
//! special-purpose chip whose dataflow is known at design time.
//!
//! The fictional chip is a streaming video analytics SoC with 12 cores:
//!
//! ```text
//!   0: camera DMA        4-7: 4x decode lanes     10: detector
//!   1: preprocessor      8: feature extractor     11: DRAM controller
//!   2-3: 2x denoisers    9: tracker
//! ```
//!
//! Run with `cargo run --example custom_soc`.

use nocsyn::prelude::*;

fn pipeline_schedule() -> Result<PhaseSchedule, Box<dyn std::error::Error>> {
    let mut s = PhaseSchedule::new(12);
    // Stage A: camera feeds the preprocessor while the DRAM controller
    // streams reference frames to the tracker.
    s.push(
        Phase::from_flows([(0usize, 1usize), (11, 9)])?
            .with_bytes(8192)
            .with_compute(500),
    )?;
    // Stage B: preprocessor fans out to the two denoisers (two calls).
    s.push(
        Phase::from_flows([(1usize, 2usize), (11, 10)])?
            .with_bytes(8192)
            .with_compute(200),
    )?;
    s.push(
        Phase::from_flows([(1usize, 3usize)])?
            .with_bytes(8192)
            .with_compute(200),
    )?;
    // Stage C: denoisers feed decode lanes pairwise.
    s.push(
        Phase::from_flows([(2usize, 4usize), (3, 6)])?
            .with_bytes(4096)
            .with_compute(800),
    )?;
    s.push(
        Phase::from_flows([(2usize, 5usize), (3, 7)])?
            .with_bytes(4096)
            .with_compute(800),
    )?;
    // Stage D: decode lanes stream into the feature extractor (4 calls).
    for lane in 4..8usize {
        s.push(
            Phase::from_flows([(lane, 8usize)])?
                .with_bytes(2048)
                .with_compute(300),
        )?;
    }
    // Stage E: features to tracker and detector; results to DRAM.
    s.push(
        Phase::from_flows([(8usize, 9usize), (10, 11)])?
            .with_bytes(1024)
            .with_compute(400),
    )?;
    s.push(
        Phase::from_flows([(8usize, 10usize), (9, 11)])?
            .with_bytes(1024)
            .with_compute(400),
    )?;
    Ok(s)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schedule = pipeline_schedule()?;
    let pattern = AppPattern::from_schedule(&schedule);
    println!("{pattern}");

    // Tight budget: 4-port switches.
    let config = SynthesisConfig::new().with_max_degree(4).with_seed(0x50C);
    let result = synthesize(&pattern, &config)?;
    println!("\n{}", result.report);
    println!("{}", result.network);

    let check = verify_contention_free(pattern.contention(), &result.routes);
    println!("{check}");

    // Simulate the pipeline end to end on the synthesized fabric.
    let stats = AppDriver::new(
        &result.network,
        RoutePolicy::deterministic(result.routes.clone()),
        SimConfig::paper(),
    )
    .run(&schedule)?;
    println!("\nsimulated: {stats}");
    assert_eq!(stats.packets.deadlock_kills, 0);
    Ok(())
}
