//! One fabric for a whole workload: synthesize a single network that is
//! contention-free for *both* the CG and MG benchmarks, estimate its
//! energy, and emit a Graphviz rendering.
//!
//! Run with `cargo run --release --example multi_app`.

use nocsyn::floorplan::{estimate_energy, PowerParams};
use nocsyn::prelude::*;
use nocsyn::topo::to_dot;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cg = Benchmark::Cg.schedule(16, &WorkloadParams::paper_default(Benchmark::Cg))?;
    let mg = Benchmark::Mg.schedule(16, &WorkloadParams::paper_default(Benchmark::Mg))?;
    let p_cg = AppPattern::from_schedule(&cg);
    let p_mg = AppPattern::from_schedule(&mg);

    // One synthesis target covering both applications' contention periods.
    let merged = AppPattern::merged([&p_cg, &p_mg]);
    println!("CG:     {p_cg}");
    println!("MG:     {p_mg}");
    println!("merged: {merged}");

    let result = synthesize(&merged, &SynthesisConfig::new().with_seed(0xD0))?;
    println!("\n{}", result.report);

    // The shared network is contention-free for each application alone.
    for (name, pattern) in [("CG", &p_cg), ("MG", &p_mg)] {
        let check = verify_contention_free(pattern.contention(), &result.routes);
        println!("{name}: {check}");
        assert!(check.is_contention_free());
    }

    // Energy estimate per application on the shared fabric.
    let plan = place(&result.network, 3);
    let params = PowerParams::default();
    for (name, schedule) in [("CG", &cg), ("MG", &mg)] {
        let report = estimate_energy(
            &result.network,
            &plan,
            &result.routes,
            &schedule.to_trace(),
            &params,
        );
        println!(
            "{name}: switch {:.0} + link {:.0} + leak {:.0} = {:.0} energy units",
            report.switch_dynamic,
            report.link_dynamic,
            report.leakage,
            report.total()
        );
    }

    // Graphviz rendering of the shared network (pipe `dot -Tsvg`).
    println!("\n{}", to_dot(&result.network));
    Ok(())
}
