//! The paper's worked example (Sections 3.1-3.4): the CG benchmark on 16
//! processors, from contention periods through cut analysis to the final
//! synthesized network and its floorplan.
//!
//! Run with `cargo run --example cg_design`.

use std::collections::BTreeSet;

use nocsyn::coloring::fast_color;
use nocsyn::floorplan::mesh_baseline;
use nocsyn::prelude::*;
use nocsyn::workloads::figure1;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Figure 1: the communication pattern (two row-reduction rounds and a
    // transpose) as a phase schedule.
    let schedule = figure1::schedule();
    let cliques = schedule.maximum_clique_set();
    println!("CG@16 contention periods:");
    for (i, c) in cliques.iter().enumerate() {
        println!("  period {}: {c}", i + 1);
    }

    // Figure 2: comparing two bisections with the Fast_Color bound. More
    // messages cross Cut 2, yet it needs fewer links — concurrency, not
    // message count, sizes a pipe.
    let flows = schedule.all_flows();
    for (name, (side_a, _)) in [("Cut 1", figure1::cut1()), ("Cut 2", figure1::cut2())] {
        let a: BTreeSet<_> = side_a.iter().copied().collect();
        let mut fwd = BTreeSet::new();
        let mut bwd = BTreeSet::new();
        for &f in &flows {
            match (a.contains(&f.src), a.contains(&f.dst)) {
                (true, false) => drop(fwd.insert(f)),
                (false, true) => drop(bwd.insert(f)),
                _ => {}
            }
        }
        println!(
            "{name}: {} crossing messages -> {} links",
            fwd.len() + bwd.len(),
            fast_color(&cliques, &fwd, &bwd)
        );
    }

    // Figures 5-6: full synthesis and floorplan.
    let pattern = AppPattern::from_schedule(&schedule);
    let result = synthesize(&pattern, &SynthesisConfig::new().with_seed(0xC9))?;
    println!("\n{}", result.report);

    let plan = place(&result.network, 7);
    let area = plan.area(&result.network);
    let mesh = mesh_baseline(4, 4);
    println!(
        "area vs 4x4 mesh: switch {:.0}%, link {:.0}%",
        100.0 * area.switch_area / mesh.switch_area,
        100.0 * area.link_area / mesh.link_area
    );

    // The transpose flows all get dedicated, conflict-free paths.
    let transpose = figure1::transpose_clique();
    for flow in transpose.iter().take(3) {
        println!(
            "route for {flow}: {}",
            result
                .routes
                .route(*flow)
                .expect("all pattern flows routed")
        );
    }
    let _ = Flow::from_indices(0, 1); // (see quickstart for route queries)
    Ok(())
}
