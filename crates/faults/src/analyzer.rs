//! Incremental degradation analysis: one Theorem-1 checker, many
//! scenarios.
//!
//! [`DegradationReport::analyze`] re-verifies the whole repaired table
//! per scenario — `O(|C| · route length)` every time, even though a
//! typical fault scenario reroutes a handful of flows and leaves the
//! rest of the table untouched. [`DegradationAnalyzer`] keeps a single
//! [`IncrementalChecker`] seeded with the baseline table and, per
//! scenario, applies only the repair's *delta* (the rerouted flows and
//! the flows that lost their path), reads the verdict, and rolls the
//! edits back — so consecutive scenarios pay for what they change, not
//! for what they share.
//!
//! The reports produced are identical to [`DegradationReport::analyze`]
//! (debug builds assert this against the exact checker per scenario),
//! so callers can switch per call site without any output churn.

use nocsyn_model::ContentionSet;
use nocsyn_topo::{IncrementalChecker, Network, Route, RouteTable};

use crate::{repair_routes, DegradationReport, FaultScenario};

/// Re-usable degradation analyzer over one `(network, contention,
/// baseline routes)` triple.
///
/// ```
/// use nocsyn_faults::{DegradationAnalyzer, FaultScenario};
/// use nocsyn_model::{ContentionSet, Flow};
/// use nocsyn_topo::regular;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let (net, routes) = regular::mesh(2, 2)?;
/// let mut contention = ContentionSet::new();
/// contention.insert(Flow::from_indices(0, 3), Flow::from_indices(1, 2));
///
/// let mut analyzer = DegradationAnalyzer::new(&net, &contention, &routes);
/// for scenario in FaultScenario::enumerate_single_link_faults(&net) {
///     let report = analyzer.analyze(scenario);
///     assert_eq!(report.n_unroutable(), 0);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DegradationAnalyzer<'a> {
    net: &'a Network,
    baseline: &'a RouteTable,
    checker: IncrementalChecker,
}

impl<'a> DegradationAnalyzer<'a> {
    /// Seeds the checker with the fault-free baseline table.
    pub fn new(net: &'a Network, contention: &'a ContentionSet, baseline: &'a RouteTable) -> Self {
        DegradationAnalyzer {
            net,
            baseline,
            checker: IncrementalChecker::with_routes(contention, baseline),
        }
    }

    /// Analyzes one scenario, byte-identical to
    /// [`DegradationReport::analyze`] on the same inputs.
    ///
    /// Repair edits are applied to the shared checker, the verdict is
    /// read, and the edits are undone — the checker is back at the
    /// baseline when this returns, whatever the scenario did.
    pub fn analyze(&mut self, scenario: FaultScenario) -> DegradationReport {
        let outcome = repair_routes(self.net, self.baseline, &scenario);
        // Each edited flow appears in exactly one of `rerouted` /
        // `unroutable`, so one undo entry per flow restores the
        // baseline regardless of replay order.
        let mut undo: Vec<(nocsyn_model::Flow, Option<Route>)> = Vec::new();
        for &flow in &outcome.rerouted {
            let repaired = outcome
                .routes
                .route(flow)
                .expect("rerouted flows are routed in the repaired table")
                .clone();
            undo.push((flow, self.checker.set_route(flow, repaired)));
        }
        for witness in &outcome.unroutable {
            undo.push((witness.flow, self.checker.clear_route(witness.flow)));
        }
        let check = self.checker.report();
        #[cfg(debug_assertions)]
        {
            self.checker.assert_consistent();
            assert_eq!(
                check,
                nocsyn_topo::verify_contention_free(self.checker.contention(), &outcome.routes),
                "incremental degradation verdict diverged from the exact checker"
            );
        }
        let report = DegradationReport::from_parts(scenario, outcome, check);
        for (flow, previous) in undo.into_iter().rev() {
            match previous {
                Some(route) => {
                    self.checker.set_route(flow, route);
                }
                None => {
                    self.checker.clear_route(flow);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::Flow;
    use nocsyn_topo::regular;

    fn crossing_contention() -> ContentionSet {
        let mut c = ContentionSet::new();
        c.insert(Flow::from_indices(0, 3), Flow::from_indices(1, 2));
        c
    }

    #[test]
    fn matches_one_shot_analysis_over_every_single_fault() {
        let (net, routes) = regular::mesh(2, 2).expect("mesh builds");
        let contention = crossing_contention();
        let mut analyzer = DegradationAnalyzer::new(&net, &contention, &routes);
        let scenarios: Vec<FaultScenario> = FaultScenario::enumerate_single_link_faults(&net)
            .into_iter()
            .chain(FaultScenario::enumerate_single_switch_faults(&net))
            .collect();
        for scenario in scenarios {
            let incremental = analyzer.analyze(scenario.clone());
            let exact = DegradationReport::analyze(&net, &contention, &routes, scenario);
            assert_eq!(
                incremental.to_json().to_string(),
                exact.to_json().to_string()
            );
            assert_eq!(incremental.contention(), exact.contention());
        }
    }

    #[test]
    fn checker_state_is_restored_between_scenarios() {
        // Analyzing the same disruptive scenario twice (with a benign
        // one in between) must give identical reports — any leaked edit
        // would show up in the second pass.
        let (net, routes) = regular::mesh(3, 3).expect("mesh builds");
        let contention = crossing_contention();
        let mut analyzer = DegradationAnalyzer::new(&net, &contention, &routes);
        let scenario = FaultScenario::sample(&net, 2, 1, 0xFA);
        let first = analyzer.analyze(scenario.clone()).to_json().to_string();
        analyzer.analyze(FaultScenario::none());
        let second = analyzer.analyze(scenario).to_json().to_string();
        assert_eq!(first, second);
    }
}
