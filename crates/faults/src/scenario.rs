//! Fault scenarios: deterministic selections of dead network elements.

use std::collections::BTreeSet;
use std::fmt;

use nocsyn_model::json::JsonValue;
use nocsyn_rng::Rng;
use nocsyn_topo::{LinkId, Network, SwitchId};

/// A set of failed links and switches.
///
/// A failed link carries no traffic in either direction; a failed switch
/// additionally kills every link incident to it. Scenarios are plain
/// value types — they never mutate the [`Network`], so link and channel
/// identity is preserved and repaired route tables remain comparable to
/// the original contention set (Theorem 1) and simulatable on the
/// original network.
///
/// Ordering is canonical (`BTreeSet` storage), so two scenarios with the
/// same elements render identically regardless of construction order.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultScenario {
    failed_links: BTreeSet<LinkId>,
    failed_switches: BTreeSet<SwitchId>,
}

impl FaultScenario {
    /// The empty scenario: nothing has failed.
    pub fn none() -> Self {
        FaultScenario::default()
    }

    /// Adds a failed link.
    #[must_use]
    pub fn with_failed_link(mut self, link: LinkId) -> Self {
        self.failed_links.insert(link);
        self
    }

    /// Adds a failed switch.
    #[must_use]
    pub fn with_failed_switch(mut self, switch: SwitchId) -> Self {
        self.failed_switches.insert(switch);
        self
    }

    /// The failed links.
    pub fn failed_links(&self) -> &BTreeSet<LinkId> {
        &self.failed_links
    }

    /// The failed switches.
    pub fn failed_switches(&self) -> &BTreeSet<SwitchId> {
        &self.failed_switches
    }

    /// Whether nothing has failed.
    pub fn is_empty(&self) -> bool {
        self.failed_links.is_empty() && self.failed_switches.is_empty()
    }

    /// Total failed elements (links plus switches).
    pub fn len(&self) -> usize {
        self.failed_links.len() + self.failed_switches.len()
    }

    /// Draws a scenario of `n_links` failed network links and
    /// `n_switches` failed switches from `net`, deterministically from
    /// `seed` (sampling without replacement via `nocsyn-rng`).
    ///
    /// Only switch-to-switch links are eligible: a dead processor
    /// attachment link trivially disconnects that processor, which tells
    /// us nothing about the *network's* resilience. Counts larger than
    /// the eligible population are clamped.
    pub fn sample(net: &Network, n_links: usize, n_switches: usize, seed: u64) -> Self {
        let mut rng = Rng::seed_from_u64(seed);
        let mut links = network_links(net);
        rng.shuffle(&mut links);
        links.truncate(n_links.min(links.len()));
        let mut switches: Vec<SwitchId> = net.switch_ids().collect();
        rng.shuffle(&mut switches);
        switches.truncate(n_switches.min(switches.len()));
        FaultScenario {
            failed_links: links.into_iter().collect(),
            failed_switches: switches.into_iter().collect(),
        }
    }

    /// One scenario per switch-to-switch link of `net`, in [`LinkId`]
    /// order — the exhaustive single-link fault model.
    pub fn enumerate_single_link_faults(net: &Network) -> Vec<FaultScenario> {
        network_links(net)
            .into_iter()
            .map(|l| FaultScenario::none().with_failed_link(l))
            .collect()
    }

    /// One scenario per switch of `net`, in [`SwitchId`] order — the
    /// exhaustive single-switch fault model.
    pub fn enumerate_single_switch_faults(net: &Network) -> Vec<FaultScenario> {
        net.switch_ids()
            .map(|s| FaultScenario::none().with_failed_switch(s))
            .collect()
    }

    /// Compact stable label for report rows, e.g. `L3+L7+S1`, or `none`.
    pub fn label(&self) -> String {
        if self.is_empty() {
            return "none".to_string();
        }
        let parts: Vec<String> = self
            .failed_links
            .iter()
            .map(|l| l.to_string())
            .chain(self.failed_switches.iter().map(|s| s.to_string()))
            .collect();
        parts.join("+")
    }

    /// JSON rendering: sorted id arrays, no volatile fields.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "failed_links",
                JsonValue::array(self.failed_links.iter().map(|l| JsonValue::from(l.index()))),
            ),
            (
                "failed_switches",
                JsonValue::array(
                    self.failed_switches
                        .iter()
                        .map(|s| JsonValue::from(s.index())),
                ),
            ),
        ])
    }
}

impl fmt::Display for FaultScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Switch-to-switch links of `net`, in id order (processor attachment
/// links excluded).
fn network_links(net: &Network) -> Vec<LinkId> {
    net.link_ids()
        .filter(|&id| {
            net.link(id)
                .is_ok_and(|link| link.a().as_proc().is_none() && link.b().as_proc().is_none())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::ProcId;

    /// p0-s0 === s1-p1, two parallel links between the switches.
    fn twin_link() -> Network {
        let mut net = Network::new(2);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        net.add_link(s0, s1).expect("distinct switches");
        net.add_link(s0, s1).expect("distinct switches");
        net.attach(ProcId(0), s0).expect("fresh proc");
        net.attach(ProcId(1), s1).expect("fresh proc");
        net
    }

    #[test]
    fn enumeration_covers_network_links_only() {
        let net = twin_link();
        let scenarios = FaultScenario::enumerate_single_link_faults(&net);
        assert_eq!(scenarios.len(), 2); // the two s0-s1 links, not the NICs
        for s in &scenarios {
            assert_eq!(s.len(), 1);
        }
        assert_eq!(FaultScenario::enumerate_single_switch_faults(&net).len(), 2);
    }

    #[test]
    fn sampling_is_deterministic_and_clamped() {
        let net = twin_link();
        let a = FaultScenario::sample(&net, 1, 1, 42);
        let b = FaultScenario::sample(&net, 1, 1, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
        // Requesting more faults than exist clamps to the population.
        let all = FaultScenario::sample(&net, 99, 99, 7);
        assert_eq!(all.failed_links().len(), 2);
        assert_eq!(all.failed_switches().len(), 2);
        // Sampled links are never processor attachments.
        for &l in all.failed_links() {
            let link = net.link(l).expect("sampled links exist");
            assert!(link.a().as_proc().is_none() && link.b().as_proc().is_none());
        }
    }

    #[test]
    fn seeds_change_draws_somewhere() {
        let net = twin_link();
        let draws: BTreeSet<FaultScenario> = (0..16)
            .map(|seed| FaultScenario::sample(&net, 1, 0, seed))
            .collect();
        assert!(draws.len() > 1, "all seeds drew the same link");
    }

    #[test]
    fn labels_and_json_are_stable() {
        let s = FaultScenario::none()
            .with_failed_switch(SwitchId(1))
            .with_failed_link(LinkId(3))
            .with_failed_link(LinkId(0));
        assert_eq!(s.label(), "L0+L3+S1");
        assert_eq!(
            s.to_json().to_string(),
            r#"{"failed_links":[0,3],"failed_switches":[1]}"#
        );
        assert_eq!(FaultScenario::none().label(), "none");
        assert!(FaultScenario::none().is_empty());
    }
}
