//! `nocsyn-faults` — deterministic fault injection, route repair, and
//! Theorem-1 degradation analysis for synthesized interconnects.
//!
//! The paper's networks are minimal by construction: Section 3 sizes each
//! inter-switch pipe to the `Fast_Color` clique lower bound, so a single
//! dead link can disconnect flows or reintroduce exactly the contention
//! Theorem 1 (`C ∩ R = ∅`) designed out. This crate measures how
//! gracefully a network degrades:
//!
//! 1. [`FaultScenario`] names a set of dead links and switches — sampled
//!    deterministically from a seed via `nocsyn-rng`, or enumerated
//!    exhaustively over every single-element fault.
//! 2. [`repair_routes`] re-routes the affected flows of a [`RouteTable`]
//!    over the surviving subgraph (shortest-path fallback via
//!    `shortest_route_avoiding`), keeping unaffected routes untouched.
//!    Flows with no surviving path come back as structured
//!    [`DisconnectionWitness`]es.
//! 3. [`DegradationReport::analyze`] re-runs `verify_contention_free` on
//!    the repaired table, classifying **every** flow as
//!    [`FlowFate::Repaired`], [`FlowFate::ContentionIntroduced`] (with the
//!    Theorem-1 witnesses), or [`FlowFate::Unroutable`]. For sweeps over
//!    many scenarios of one baseline, [`DegradationAnalyzer`] produces the
//!    identical reports incrementally: one shared Theorem-1 checker,
//!    per-scenario route edits applied and rolled back.
//!
//! Everything here is a pure function of `(network, routes, scenario)`:
//! reports carry no clocks or iteration-order artifacts, so the same seed
//! and scenario produce byte-identical JSON on any worker count — the
//! property the CI fault-determinism gate pins.
//!
//! ```
//! use nocsyn_faults::{DegradationReport, FaultScenario};
//! use nocsyn_model::{ContentionSet, Flow};
//! use nocsyn_topo::regular;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (net, routes) = regular::mesh(2, 2)?;
//! // Two flows that overlap in time: they must never share a channel.
//! let mut contention = ContentionSet::new();
//! contention.insert(Flow::from_indices(0, 3), Flow::from_indices(1, 2));
//!
//! // Fail each network link in turn; the mesh reroutes around every one.
//! for scenario in FaultScenario::enumerate_single_link_faults(&net) {
//!     let report = DegradationReport::analyze(&net, &contention, &routes, scenario);
//!     assert_eq!(report.n_unroutable(), 0);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analyzer;
mod repair;
mod report;
mod scenario;

pub use analyzer::DegradationAnalyzer;
pub use repair::{
    repair_routes, route_is_affected, DisconnectCause, DisconnectionWitness, RepairOutcome,
};
pub use report::{DegradationReport, FlowFate};
pub use scenario::FaultScenario;
