//! Route repair over the surviving subgraph.

use std::collections::BTreeSet;
use std::fmt;

use nocsyn_model::json::JsonValue;
use nocsyn_model::Flow;
use nocsyn_topo::{shortest_route_avoiding, Network, Route, RouteTable};

use crate::FaultScenario;

/// Whether `route` traverses a failed link or passes through a failed
/// switch of `scenario` (endpoints included: a route whose first hop
/// leaves a dead switch is affected).
///
/// A hop referencing a link unknown to `net` is treated as affected —
/// conservative, and unreachable for tables validated against `net`.
pub fn route_is_affected(net: &Network, route: &Route, scenario: &FaultScenario) -> bool {
    route.hops().iter().any(|&ch| {
        if scenario.failed_links().contains(&ch.link) {
            return true;
        }
        match net.channel_endpoints(ch) {
            Ok((a, b)) => [a, b].into_iter().any(|node| {
                node.as_switch()
                    .is_some_and(|s| scenario.failed_switches().contains(&s))
            }),
            Err(_) => true,
        }
    })
}

/// Why a flow has no surviving route.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DisconnectCause {
    /// The flow's source or destination processor is cut off outright:
    /// its home switch or its attachment link has failed.
    EndpointFailed,
    /// Both endpoints survive, but the surviving switch graph has no
    /// path between their home switches.
    Partitioned,
}

impl DisconnectCause {
    /// Stable lowercase label (`endpoint_failed` / `partitioned`).
    pub fn label(self) -> &'static str {
        match self {
            DisconnectCause::EndpointFailed => "endpoint_failed",
            DisconnectCause::Partitioned => "partitioned",
        }
    }
}

/// Structured witness that a flow is disconnected under a scenario.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisconnectionWitness {
    /// The flow with no surviving route.
    pub flow: Flow,
    /// Why it is disconnected.
    pub cause: DisconnectCause,
}

impl DisconnectionWitness {
    /// Diagnoses why `flow` cannot be routed under `scenario`:
    /// distinguishes a dead endpoint (home switch or attachment link
    /// failed) from a partitioned surviving graph.
    pub fn diagnose(net: &Network, flow: Flow, scenario: &FaultScenario) -> Self {
        let endpoint_failed = [flow.src, flow.dst].into_iter().any(|proc| {
            let home_dead = net
                .switch_of(proc)
                .is_ok_and(|s| scenario.failed_switches().contains(&s));
            let nic_dead = net
                .attachment_link(proc)
                .is_ok_and(|l| scenario.failed_links().contains(&l));
            home_dead || nic_dead
        });
        DisconnectionWitness {
            flow,
            cause: if endpoint_failed {
                DisconnectCause::EndpointFailed
            } else {
                DisconnectCause::Partitioned
            },
        }
    }

    /// JSON rendering (`{"src":..,"dst":..,"cause":".."}`).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("src", JsonValue::from(self.flow.src.index())),
            ("dst", JsonValue::from(self.flow.dst.index())),
            ("cause", JsonValue::from(self.cause.label())),
        ])
    }
}

impl fmt::Display for DisconnectionWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "flow {} is unroutable ({})",
            self.flow,
            self.cause.label()
        )
    }
}

/// Result of a repair pass: the surviving route table plus what changed.
#[derive(Debug, Clone)]
pub struct RepairOutcome {
    /// Routes for every flow that still has a path: unaffected routes
    /// verbatim, affected ones re-routed over the surviving subgraph.
    pub routes: RouteTable,
    /// The flows whose routes were re-routed.
    pub rerouted: BTreeSet<Flow>,
    /// Flows with no surviving path, with the reason.
    pub unroutable: Vec<DisconnectionWitness>,
}

/// Repairs `routes` for `net` under `scenario`.
///
/// Unaffected routes are kept bit-identical (their channels keep the
/// Theorem-1 assignment the synthesizer chose); affected flows fall back
/// to the deterministic shortest surviving path. Flows whose endpoints
/// are cut off or whose endpoints lie in different surviving components
/// are reported as [`DisconnectionWitness`]es, in flow order.
///
/// The repair is a pure function of its arguments — no clocks, no
/// ambient randomness — so degradation reports built on it are
/// byte-identical across runs and worker counts.
pub fn repair_routes(
    net: &Network,
    routes: &RouteTable,
    scenario: &FaultScenario,
) -> RepairOutcome {
    let mut out = RouteTable::new();
    let mut rerouted = BTreeSet::new();
    let mut unroutable = Vec::new();
    for (flow, route) in routes.iter() {
        if !route_is_affected(net, route, scenario) {
            out.insert(flow, route.clone());
            continue;
        }
        match shortest_route_avoiding(
            net,
            flow,
            scenario.failed_links(),
            scenario.failed_switches(),
        ) {
            Ok(repaired) => {
                out.insert(flow, repaired);
                rerouted.insert(flow);
            }
            Err(_) => unroutable.push(DisconnectionWitness::diagnose(net, flow, scenario)),
        }
    }
    RepairOutcome {
        routes: out,
        rerouted,
        unroutable,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::ProcId;
    use nocsyn_topo::{regular, LinkId, Network};

    #[test]
    fn unaffected_routes_survive_verbatim() {
        let (net, routes) = regular::mesh(2, 2).expect("2x2 mesh builds");
        let scenario = FaultScenario::none();
        let outcome = repair_routes(&net, &routes, &scenario);
        assert_eq!(outcome.routes, routes);
        assert!(outcome.rerouted.is_empty());
        assert!(outcome.unroutable.is_empty());
    }

    #[test]
    fn mesh_reroutes_around_any_single_link() {
        let (net, routes) = regular::mesh(3, 3).expect("3x3 mesh builds");
        for scenario in FaultScenario::enumerate_single_link_faults(&net) {
            let outcome = repair_routes(&net, &routes, &scenario);
            assert!(
                outcome.unroutable.is_empty(),
                "mesh disconnected by {scenario}"
            );
            assert!(!outcome.rerouted.is_empty(), "{scenario} affected no route");
            outcome
                .routes
                .validate(&net)
                .expect("repaired routes are walks in the original network");
            for (flow, route) in outcome.routes.iter() {
                assert!(
                    !route_is_affected(&net, route, &scenario),
                    "repaired route for {flow} still crosses {scenario}"
                );
            }
        }
    }

    #[test]
    fn dead_endpoint_is_witnessed_as_endpoint_failed() {
        let (net, routes) = regular::mesh(2, 2).expect("2x2 mesh builds");
        let home = net.switch_of(ProcId(0)).expect("proc 0 attached");
        let scenario = FaultScenario::none().with_failed_switch(home);
        let outcome = repair_routes(&net, &routes, &scenario);
        assert!(!outcome.unroutable.is_empty());
        for w in &outcome.unroutable {
            assert!(w.flow.src == ProcId(0) || w.flow.dst == ProcId(0));
            assert_eq!(w.cause, DisconnectCause::EndpointFailed);
        }
        // Flows not touching proc 0 still have routes.
        assert!(outcome
            .routes
            .iter()
            .all(|(f, _)| f.src != ProcId(0) && f.dst != ProcId(0)));
    }

    #[test]
    fn partition_is_witnessed_as_partitioned() {
        // p0-s0-s1-p1: the single inter-switch link is a bridge.
        let mut net = Network::new(2);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        let bridge = net.add_link(s0, s1).expect("distinct switches");
        net.attach(ProcId(0), s0).expect("fresh proc");
        net.attach(ProcId(1), s1).expect("fresh proc");
        let flow = Flow::from_indices(0, 1);
        let mut routes = RouteTable::new();
        routes.insert(
            flow,
            nocsyn_topo::shortest_route(&net, flow).expect("line routes"),
        );
        let scenario = FaultScenario::none().with_failed_link(bridge);
        let outcome = repair_routes(&net, &routes, &scenario);
        assert_eq!(
            outcome.unroutable,
            vec![DisconnectionWitness {
                flow,
                cause: DisconnectCause::Partitioned
            }]
        );
        assert_eq!(
            outcome.unroutable[0].to_json().to_string(),
            r#"{"src":0,"dst":1,"cause":"partitioned"}"#
        );
    }

    #[test]
    fn affectedness_sees_failed_switch_interiors() {
        // Route through the middle switch of a line is affected when the
        // middle switch dies, even though its own links were not named.
        let mut net = Network::new(2);
        let s: Vec<_> = (0..3).map(|_| net.add_switch()).collect();
        net.add_link(s[0], s[1]).expect("distinct");
        net.add_link(s[1], s[2]).expect("distinct");
        net.attach(ProcId(0), s[0]).expect("fresh");
        net.attach(ProcId(1), s[2]).expect("fresh");
        let flow = Flow::from_indices(0, 1);
        let route = nocsyn_topo::shortest_route(&net, flow).expect("line routes");
        let scenario = FaultScenario::none().with_failed_switch(s[1]);
        assert!(route_is_affected(&net, &route, &scenario));
        let benign = FaultScenario::none().with_failed_link(LinkId(99));
        assert!(!route_is_affected(&net, &route, &benign));
    }
}
