//! Degradation reports: repair plus Theorem-1 re-verification.

use std::collections::BTreeMap;
use std::fmt;

use nocsyn_model::json::JsonValue;
use nocsyn_model::{ContentionSet, Flow};
use nocsyn_topo::{
    verify_contention_free, ContentionReport, ContentionWitness, Network, RouteTable,
};

use crate::{repair_routes, DisconnectionWitness, FaultScenario};

/// What happened to one flow under a fault scenario.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowFate {
    /// The flow still has a route and is contention-free under the
    /// repaired table. `rerouted` distinguishes flows whose original
    /// route survived untouched from flows moved to a fallback path.
    Repaired {
        /// Whether the route had to change.
        rerouted: bool,
    },
    /// The flow has a route, but the repaired table violates Theorem 1
    /// for it: its route now shares channels with a temporally
    /// conflicting flow.
    ContentionIntroduced {
        /// The Theorem-1 witnesses involving this flow.
        witnesses: Vec<ContentionWitness>,
    },
    /// No surviving path exists for the flow.
    Unroutable {
        /// The structured disconnection witness.
        witness: DisconnectionWitness,
    },
}

impl FlowFate {
    /// Stable lowercase label
    /// (`repaired` / `contention_introduced` / `unroutable`).
    pub fn label(&self) -> &'static str {
        match self {
            FlowFate::Repaired { .. } => "repaired",
            FlowFate::ContentionIntroduced { .. } => "contention_introduced",
            FlowFate::Unroutable { .. } => "unroutable",
        }
    }
}

/// The full degradation analysis of one `(network, routes, scenario)`
/// triple: every flow of the original table classified, plus the
/// Theorem-1 report over the repaired table.
///
/// The report is a pure value — no timestamps, `BTreeMap`-ordered flows —
/// so its JSON rendering is byte-identical for the same inputs on any
/// worker count.
#[derive(Debug, Clone)]
pub struct DegradationReport {
    scenario: FaultScenario,
    fates: BTreeMap<Flow, FlowFate>,
    check: ContentionReport,
    repaired_routes: RouteTable,
}

impl DegradationReport {
    /// Repairs `routes` under `scenario` and re-runs
    /// [`verify_contention_free`] on the result, classifying every flow.
    pub fn analyze(
        net: &Network,
        contention: &ContentionSet,
        routes: &RouteTable,
        scenario: FaultScenario,
    ) -> Self {
        let outcome = repair_routes(net, routes, &scenario);
        let check = verify_contention_free(contention, &outcome.routes);
        Self::from_parts(scenario, outcome, check)
    }

    /// Classifies every flow of a repair outcome against a Theorem-1
    /// report over the repaired table. Shared by [`Self::analyze`] and
    /// the incremental [`DegradationAnalyzer`](crate::DegradationAnalyzer):
    /// as long as `check` equals `verify_contention_free` over
    /// `outcome.routes`, both paths build identical reports.
    pub(crate) fn from_parts(
        scenario: FaultScenario,
        outcome: crate::RepairOutcome,
        check: ContentionReport,
    ) -> Self {
        let mut fates: BTreeMap<Flow, FlowFate> = BTreeMap::new();
        for witness in &outcome.unroutable {
            fates.insert(
                witness.flow,
                FlowFate::Unroutable {
                    witness: witness.clone(),
                },
            );
        }
        for (flow, _) in outcome.routes.iter() {
            let witnesses: Vec<ContentionWitness> = check
                .witnesses()
                .iter()
                .filter(|w| w.flow_a == flow || w.flow_b == flow)
                .cloned()
                .collect();
            let fate = if witnesses.is_empty() {
                FlowFate::Repaired {
                    rerouted: outcome.rerouted.contains(&flow),
                }
            } else {
                FlowFate::ContentionIntroduced { witnesses }
            };
            fates.insert(flow, fate);
        }
        DegradationReport {
            scenario,
            fates,
            check,
            repaired_routes: outcome.routes,
        }
    }

    /// The scenario the report describes.
    pub fn scenario(&self) -> &FaultScenario {
        &self.scenario
    }

    /// Per-flow fates, in flow order.
    pub fn fates(&self) -> impl Iterator<Item = (Flow, &FlowFate)> + '_ {
        self.fates.iter().map(|(f, fate)| (*f, fate))
    }

    /// The fate of one flow, if it was in the original table.
    pub fn fate(&self, flow: Flow) -> Option<&FlowFate> {
        self.fates.get(&flow)
    }

    /// The Theorem-1 report over the repaired table.
    pub fn contention(&self) -> &ContentionReport {
        &self.check
    }

    /// The repaired route table (unroutable flows absent).
    pub fn repaired_routes(&self) -> &RouteTable {
        &self.repaired_routes
    }

    /// Flows that kept or regained a contention-free route.
    pub fn n_repaired(&self) -> usize {
        self.count(|f| matches!(f, FlowFate::Repaired { .. }))
    }

    /// Repaired flows that actually moved to a fallback path.
    pub fn n_rerouted(&self) -> usize {
        self.count(|f| matches!(f, FlowFate::Repaired { rerouted: true }))
    }

    /// Flows now violating Theorem 1.
    pub fn n_contention(&self) -> usize {
        self.count(|f| matches!(f, FlowFate::ContentionIntroduced { .. }))
    }

    /// Flows with no surviving path.
    pub fn n_unroutable(&self) -> usize {
        self.count(|f| matches!(f, FlowFate::Unroutable { .. }))
    }

    /// Whether the network degraded gracefully: every flow still routed
    /// and the repaired table still satisfies `C ∩ R = ∅`.
    pub fn still_contention_free(&self) -> bool {
        self.check.is_contention_free() && self.n_unroutable() == 0
    }

    fn count(&self, pred: impl Fn(&FlowFate) -> bool) -> usize {
        self.fates.values().filter(|f| pred(f)).count()
    }

    /// Deterministic JSON rendering: scenario, counts, then one entry per
    /// flow in flow order. Carries no clocks or volatile fields.
    pub fn to_json(&self) -> JsonValue {
        let flows = self.fates.iter().map(|(flow, fate)| {
            let mut fields = vec![
                ("src", JsonValue::from(flow.src.index())),
                ("dst", JsonValue::from(flow.dst.index())),
                ("fate", JsonValue::from(fate.label())),
            ];
            match fate {
                FlowFate::Repaired { rerouted } => {
                    fields.push(("rerouted", JsonValue::from(*rerouted)));
                }
                FlowFate::ContentionIntroduced { witnesses } => {
                    fields.push((
                        "witnesses",
                        JsonValue::array(witnesses.iter().map(|w| {
                            JsonValue::object([
                                ("flow_a", JsonValue::from(w.flow_a.to_string().as_str())),
                                ("flow_b", JsonValue::from(w.flow_b.to_string().as_str())),
                                (
                                    "shared",
                                    JsonValue::array(
                                        w.shared
                                            .iter()
                                            .map(|ch| JsonValue::from(ch.to_string().as_str())),
                                    ),
                                ),
                            ])
                        })),
                    ));
                }
                FlowFate::Unroutable { witness } => {
                    fields.push(("cause", JsonValue::from(witness.cause.label())));
                }
            }
            JsonValue::object(fields)
        });
        JsonValue::object([
            ("scenario", self.scenario.to_json()),
            ("n_repaired", JsonValue::from(self.n_repaired())),
            ("n_rerouted", JsonValue::from(self.n_rerouted())),
            ("n_contention", JsonValue::from(self.n_contention())),
            ("n_unroutable", JsonValue::from(self.n_unroutable())),
            (
                "contention_free",
                JsonValue::from(self.still_contention_free()),
            ),
            ("flows", JsonValue::array(flows)),
        ])
    }
}

impl fmt::Display for DegradationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "faults {}: {} repaired ({} rerouted), {} contention, {} unroutable — {}",
            self.scenario.label(),
            self.n_repaired(),
            self.n_rerouted(),
            self.n_contention(),
            self.n_unroutable(),
            if self.still_contention_free() {
                "still contention-free (C ∩ R = ∅)"
            } else {
                "DEGRADED"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_topo::regular;

    fn crossing_contention() -> ContentionSet {
        let mut c = ContentionSet::new();
        c.insert(Flow::from_indices(0, 3), Flow::from_indices(1, 2));
        c
    }

    #[test]
    fn empty_scenario_repairs_everything_in_place() {
        let (net, routes) = regular::mesh(2, 2).expect("mesh builds");
        let report = DegradationReport::analyze(
            &net,
            &crossing_contention(),
            &routes,
            FaultScenario::none(),
        );
        assert_eq!(report.n_repaired(), routes.len());
        assert_eq!(report.n_rerouted(), 0);
        assert_eq!(report.n_unroutable(), 0);
        assert!(report.still_contention_free());
        for (_, fate) in report.fates() {
            assert_eq!(fate.label(), "repaired");
        }
    }

    #[test]
    fn every_flow_is_classified() {
        let (net, routes) = regular::mesh(2, 2).expect("mesh builds");
        for scenario in FaultScenario::enumerate_single_link_faults(&net) {
            let report =
                DegradationReport::analyze(&net, &crossing_contention(), &routes, scenario);
            assert_eq!(
                report.n_repaired() + report.n_contention() + report.n_unroutable(),
                routes.len()
            );
        }
    }

    #[test]
    fn contention_fate_carries_theorem1_witnesses() {
        // 2x2 mesh, fail one column link: the two crossing flows are
        // forced to share the survivors somewhere, or stay clean — either
        // way the classification matches the contention report exactly.
        let (net, routes) = regular::mesh(2, 2).expect("mesh builds");
        let contention = crossing_contention();
        let mut contention_seen = false;
        for scenario in FaultScenario::enumerate_single_link_faults(&net) {
            let report = DegradationReport::analyze(&net, &contention, &routes, scenario);
            for (flow, fate) in report.fates() {
                if let FlowFate::ContentionIntroduced { witnesses } = fate {
                    contention_seen = true;
                    assert!(!witnesses.is_empty());
                    for w in witnesses {
                        assert!(w.flow_a == flow || w.flow_b == flow);
                        assert!(!w.shared.is_empty());
                    }
                }
            }
            assert_eq!(
                report.still_contention_free(),
                report.n_contention() == 0 && report.n_unroutable() == 0
            );
        }
        assert!(
            contention_seen,
            "no single-link fault of the 2x2 mesh introduced contention — the fixture is dead"
        );
    }

    #[test]
    fn json_is_deterministic_and_clock_free() {
        let (net, routes) = regular::mesh(2, 2).expect("mesh builds");
        let scenario = FaultScenario::sample(&net, 1, 0, 0xFA);
        let a = DegradationReport::analyze(&net, &crossing_contention(), &routes, scenario.clone())
            .to_json()
            .to_string();
        let b = DegradationReport::analyze(&net, &crossing_contention(), &routes, scenario)
            .to_json()
            .to_string();
        assert_eq!(a, b);
        assert!(a.contains(r#""scenario":"#));
        assert!(a.contains(r#""flows":["#));
        for volatile in ["time", "elapsed", "ms"] {
            assert!(!a.contains(volatile), "volatile field `{volatile}` in {a}");
        }
    }
}
