//! Property tests of route repair, on the in-repo `nocsyn-check`
//! harness: repaired routes never touch failed elements, repair is
//! complete (every flow classified), and unaffected routes are kept
//! verbatim — over random grids, random fault scenarios, and real
//! synthesized networks.

use nocsyn_check::{check, check_assert, u64_in, usize_in};
use nocsyn_faults::{repair_routes, route_is_affected, DegradationReport, FaultScenario};
use nocsyn_model::Flow;
use nocsyn_synth::{synthesize, AppPattern, SynthesisConfig};
use nocsyn_topo::{regular, Network, RouteTable};
use nocsyn_workloads::{Benchmark, WorkloadParams};

/// Asserts the repair invariants for one `(net, routes, scenario)`:
/// no repaired route touches a failed element, every flow is either
/// routed or witnessed, and unaffected routes survive bit-identical.
fn assert_repair_invariants(
    net: &Network,
    routes: &RouteTable,
    scenario: &FaultScenario,
) -> nocsyn_check::CaseResult {
    let outcome = repair_routes(net, routes, scenario);
    // Completeness: routed + unroutable partitions the original flows.
    check_assert!(outcome.routes.len() + outcome.unroutable.len() == routes.len());
    for (flow, route) in outcome.routes.iter() {
        // The core property: repair never routes through a failed link
        // or switch.
        check_assert!(
            !route_is_affected(net, route, scenario),
            "repaired route for {flow} crosses {scenario}"
        );
        for ch in route.hops() {
            check_assert!(!scenario.failed_links().contains(&ch.link));
        }
        // Repaired tables stay valid walks of the *original* network.
        route
            .validate(net, flow)
            .map_err(|e| nocsyn_check::CaseError::Fail(format!("{flow}: {e}")))?;
        // Stability: unaffected routes are untouched.
        if let Some(original) = routes.route(flow) {
            if !route_is_affected(net, original, scenario) {
                check_assert!(route == original, "unaffected {flow} was rewritten");
            }
        }
    }
    Ok(())
}

#[test]
fn repair_avoids_failed_elements_on_grids() {
    check(
        "repair_avoids_failed_elements_on_grids",
        (
            (usize_in(2..5), usize_in(2..5)),
            (usize_in(0..4), usize_in(0..3)),
            u64_in(0..1_000_000),
        ),
        |&((rows, cols), (n_links, n_switches), seed)| {
            let (net, routes) = regular::mesh(rows, cols).unwrap();
            let scenario = FaultScenario::sample(&net, n_links, n_switches, seed);
            assert_repair_invariants(&net, &routes, &scenario)?;
            let (net, routes) = regular::torus(rows.max(3), cols.max(3)).unwrap();
            let scenario = FaultScenario::sample(&net, n_links, n_switches, seed);
            assert_repair_invariants(&net, &routes, &scenario)
        },
    );
}

#[test]
fn repair_avoids_failed_elements_on_synthesized_networks() {
    check_fewer_cases();
}

/// Synthesized CG/MG networks at 8 procs: exhaustive single-link and
/// single-switch faults plus a few sampled multi-fault scenarios.
fn check_fewer_cases() {
    nocsyn_check::check_n(
        "repair_avoids_failed_elements_on_synthesized_networks",
        12,
        (
            nocsyn_check::choice([Benchmark::Cg, Benchmark::Mg]),
            u64_in(0..64),
        ),
        |&(benchmark, seed)| {
            let sched = benchmark
                .schedule(
                    8,
                    &WorkloadParams::paper_default(benchmark).with_iterations(1),
                )
                .unwrap();
            let pattern = AppPattern::from_schedule(&sched);
            let config = SynthesisConfig::new().with_seed(seed).with_restarts(1);
            let result = synthesize(&pattern, &config).unwrap();
            for scenario in FaultScenario::enumerate_single_link_faults(&result.network)
                .into_iter()
                .chain(FaultScenario::enumerate_single_switch_faults(
                    &result.network,
                ))
                .chain((0..4).map(|k| FaultScenario::sample(&result.network, 2, 1, seed ^ k)))
            {
                assert_repair_invariants(&result.network, &result.routes, &scenario)?;
            }
            Ok(())
        },
    );
}

/// Degradation analysis classifies exactly the original flow set, and its
/// counts are consistent with the fates, for arbitrary scenarios.
#[test]
fn degradation_report_is_total_and_consistent() {
    check(
        "degradation_report_is_total_and_consistent",
        (
            usize_in(2..4),
            usize_in(2..4),
            usize_in(0..3),
            u64_in(0..1_000_000),
        ),
        |&(rows, cols, n_links, seed)| {
            let (net, routes) = regular::mesh(rows, cols).unwrap();
            let mut contention = nocsyn_model::ContentionSet::new();
            let n = rows * cols;
            contention.insert(Flow::from_indices(0, n - 1), Flow::from_indices(1, n - 2));
            let scenario = FaultScenario::sample(&net, n_links, 0, seed);
            let report = DegradationReport::analyze(&net, &contention, &routes, scenario);
            check_assert!(report.fates().count() == routes.len());
            check_assert!(
                report.n_repaired() + report.n_contention() + report.n_unroutable() == routes.len()
            );
            check_assert!(report.n_rerouted() <= report.n_repaired());
            check_assert!(
                report.still_contention_free()
                    == (report.n_contention() == 0 && report.n_unroutable() == 0)
            );
            Ok(())
        },
    );
}
