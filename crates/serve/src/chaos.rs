//! Deterministic I/O chaos: seeded fault plans, fault-injecting I/O
//! wrappers, and the closed-loop harness behind `nocsyn chaos`.
//!
//! The fault model mirrors what PR 3 did for links and switches, applied
//! to the serving substrate instead of the synthesized network: every
//! fault is drawn from a seeded [`nocsyn_rng::Rng`] stream, so a chaos
//! run is a *replayable schedule*, not a dice roll. The named fault
//! points:
//!
//! | label                | where it fires                                  |
//! |----------------------|-------------------------------------------------|
//! | `disk-write-fail`    | a cache file write errors, nothing lands        |
//! | `disk-write-torn`    | the process "crashes" after `k` bytes land      |
//! | `disk-read-fail`     | a cache file read errors                        |
//! | `disk-rename-fail`   | a commit rename errors                          |
//! | `conn-read-stall`    | the peer stops sending mid-request (slowloris)  |
//! | `conn-mid-line-eof`  | the peer disconnects mid-line                   |
//! | `engine-panic`       | a synthesis attempt panics inside the engine    |
//!
//! A torn write models a *process crash*: after it fires, every further
//! I/O on the [`ChaosDisk`] fails until [`FaultPlan::revive`] — so the
//! in-process cleanup code cannot paper over the torn file, and the
//! startup recovery scan has to earn its keep.
//!
//! [`run_chaos`] drives a seeded schedule of requests × faults against an
//! in-process server over a [`MemDisk`] and checks three invariants:
//!
//! 1. **No torn entry is ever served**: every `status:"ok"` synth reply
//!    is byte-identical (modulo the cache-tier marker) to the fault-free
//!    reference reply for that job.
//! 2. **Every reply is well-formed** JSON with a declared kind, or the
//!    connection drops cleanly with no reply at all.
//! 3. **The cache heals**: once faults stop, a fresh process over the
//!    surviving store serves every job with the reference bytes, and the
//!    second request is a warm hit.

use std::collections::BTreeMap;
use std::io::{self, BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};

use nocsyn_model::json::{self, JsonValue};
use nocsyn_rng::{hash_str, Rng};

use crate::io::{DiskIo, MemDisk};
use crate::server::{ServeOptions, Server};

/// A named place where the chaos layer may inject a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// A cache file write (`DiskIo::write`).
    DiskWrite,
    /// A cache file read (`DiskIo::read`).
    DiskRead,
    /// A commit rename (`DiskIo::rename`).
    DiskRename,
    /// Reading a request line from a connection.
    ConnRead,
    /// Running a synthesis job in the engine.
    Engine,
}

impl FaultPoint {
    const ALL: [FaultPoint; 5] = [
        FaultPoint::DiskWrite,
        FaultPoint::DiskRead,
        FaultPoint::DiskRename,
        FaultPoint::ConnRead,
        FaultPoint::Engine,
    ];

    fn index(self) -> usize {
        match self {
            FaultPoint::DiskWrite => 0,
            FaultPoint::DiskRead => 1,
            FaultPoint::DiskRename => 2,
            FaultPoint::ConnRead => 3,
            FaultPoint::Engine => 4,
        }
    }

    /// Stable kebab-case label of the point's RNG stream.
    pub fn label(self) -> &'static str {
        match self {
            FaultPoint::DiskWrite => "disk-write",
            FaultPoint::DiskRead => "disk-read",
            FaultPoint::DiskRename => "disk-rename",
            FaultPoint::ConnRead => "conn-read",
            FaultPoint::Engine => "engine",
        }
    }
}

/// One injected fault, as decided by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectedFault {
    /// The operation errors; nothing happened.
    Fail,
    /// A write lands only its first `k` bytes, then the process "dies"
    /// (all further disk I/O fails until [`FaultPlan::revive`]).
    Torn(usize),
    /// The connection delivers `k` bytes and then stalls (times out).
    Stall(usize),
    /// The connection delivers `k` bytes and then closes mid-line.
    MidLineEof(usize),
    /// The synthesis attempt panics inside the engine.
    Panic,
}

/// Stable labels for the fault summary, one per injectable outcome.
const FAULT_LABELS: [&str; 7] = [
    "conn-mid-line-eof",
    "conn-read-stall",
    "disk-read-fail",
    "disk-rename-fail",
    "disk-write-fail",
    "disk-write-torn",
    "engine-panic",
];

/// A seeded, deterministic schedule of faults. Each fault point draws
/// from its own RNG stream (seeded from the plan seed and the point
/// label), so the decision sequence at one point is independent of how
/// calls interleave across points — the property that keeps same-seed
/// chaos runs byte-identical.
#[derive(Debug)]
pub struct FaultPlan {
    armed: bool,
    crashed: bool,
    probs: [f64; 5],
    rngs: [Rng; 5],
    ops: [u64; 5],
    scripted_fail: [Vec<u64>; 5],
    scripted_torn: Vec<(u64, usize)>,
    counts: BTreeMap<&'static str, u64>,
}

impl FaultPlan {
    /// A plan with the default fault probabilities, armed.
    pub fn seeded(seed: u64) -> Self {
        let mut plan = FaultPlan::quiet(seed);
        plan.probs = [0.10, 0.06, 0.05, 0.08, 0.03];
        plan
    }

    /// A plan that injects nothing until scripted faults are added —
    /// the starting point for targeted crash-point tests.
    pub fn quiet(seed: u64) -> Self {
        let rngs = FaultPoint::ALL.map(|p| Rng::seed_from_u64(seed ^ hash_str(p.label())));
        FaultPlan {
            armed: true,
            crashed: false,
            probs: [0.0; 5],
            rngs,
            ops: [0; 5],
            scripted_fail: Default::default(),
            scripted_torn: Vec::new(),
            counts: FAULT_LABELS.iter().map(|l| (*l, 0)).collect(),
        }
    }

    /// Overrides one point's fault probability.
    #[must_use]
    pub fn with_probability(mut self, point: FaultPoint, p: f64) -> Self {
        self.probs[point.index()] = p.clamp(0.0, 1.0);
        self
    }

    /// Scripts a hard failure at the `op`-th operation (0-based) of
    /// `point`, independent of the probabilistic stream.
    #[must_use]
    pub fn with_fail_at(mut self, point: FaultPoint, op: u64) -> Self {
        self.scripted_fail[point.index()].push(op);
        self
    }

    /// Scripts a torn write (crash after `k` bytes) at the `op`-th
    /// `DiskWrite` operation.
    #[must_use]
    pub fn with_torn_write_at(mut self, op: u64, k: usize) -> Self {
        self.scripted_torn.push((op, k));
        self
    }

    /// Stops all probabilistic injection (scripted faults still fire);
    /// the healing phase of a chaos run flips this.
    pub fn disarm(&mut self) {
        self.armed = false;
    }

    /// Whether a torn write has "crashed the process": all disk I/O
    /// fails until [`FaultPlan::revive`].
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Clears the crashed state — the harness's model of a restart.
    pub fn revive(&mut self) {
        self.crashed = false;
    }

    /// Per-label injected-fault counts (all labels, stable order).
    pub fn injected(&self) -> Vec<(&'static str, u64)> {
        self.counts.iter().map(|(l, c)| (*l, *c)).collect()
    }

    fn count(&mut self, label: &'static str) {
        *self.counts.entry(label).or_insert(0) += 1;
    }

    /// Decides whether the next operation at `point` faults. `len` is
    /// the operation's payload size, used to pick torn/cut offsets.
    pub fn decide(&mut self, point: FaultPoint, len: usize) -> Option<InjectedFault> {
        let i = point.index();
        let op = self.ops[i];
        self.ops[i] += 1;
        if self.crashed {
            return None;
        }
        if point == FaultPoint::DiskWrite {
            if let Some(&(_, k)) = self.scripted_torn.iter().find(|&&(o, _)| o == op) {
                self.crashed = true;
                self.count("disk-write-torn");
                return Some(InjectedFault::Torn(k.min(len)));
            }
        }
        if self.scripted_fail[i].contains(&op) {
            return Some(self.fail_kind(point, len));
        }
        if !self.armed || self.probs[i] <= 0.0 {
            return None;
        }
        let p = self.probs[i];
        if !self.rngs[i].gen_bool(p) {
            return None;
        }
        match point {
            FaultPoint::DiskWrite => {
                if self.rngs[i].gen_bool(0.5) {
                    let k = self.rngs[i].gen_range(0..=len);
                    self.crashed = true;
                    self.count("disk-write-torn");
                    Some(InjectedFault::Torn(k))
                } else {
                    self.count("disk-write-fail");
                    Some(InjectedFault::Fail)
                }
            }
            FaultPoint::ConnRead => {
                let k = self.rngs[i].gen_range(0..=len);
                if self.rngs[i].gen_bool(0.5) {
                    self.count("conn-read-stall");
                    Some(InjectedFault::Stall(k))
                } else {
                    self.count("conn-mid-line-eof");
                    Some(InjectedFault::MidLineEof(k))
                }
            }
            _ => Some(self.fail_kind(point, len)),
        }
    }

    /// The non-torn fault for a point (used by scripted failures).
    fn fail_kind(&mut self, point: FaultPoint, len: usize) -> InjectedFault {
        match point {
            FaultPoint::DiskWrite => {
                self.count("disk-write-fail");
                InjectedFault::Fail
            }
            FaultPoint::DiskRead => {
                self.count("disk-read-fail");
                InjectedFault::Fail
            }
            FaultPoint::DiskRename => {
                self.count("disk-rename-fail");
                InjectedFault::Fail
            }
            FaultPoint::ConnRead => {
                self.count("conn-mid-line-eof");
                InjectedFault::MidLineEof(len / 2)
            }
            FaultPoint::Engine => {
                self.count("engine-panic");
                InjectedFault::Panic
            }
        }
    }
}

fn chaos_err(detail: &str) -> io::Error {
    io::Error::other(format!("chaos: {detail}"))
}

/// A [`DiskIo`] that consults a shared [`FaultPlan`] before delegating
/// to the wrapped store. After a torn write "crashes the process", every
/// operation fails until the plan is revived.
#[derive(Debug)]
pub struct ChaosDisk {
    inner: Arc<dyn DiskIo>,
    plan: Arc<Mutex<FaultPlan>>,
}

impl ChaosDisk {
    /// Wraps `inner` with faults drawn from `plan`.
    pub fn new(inner: Arc<dyn DiskIo>, plan: Arc<Mutex<FaultPlan>>) -> Self {
        ChaosDisk { inner, plan }
    }

    fn plan(&self) -> MutexGuard<'_, FaultPlan> {
        self.plan.lock().expect("fault plan lock never poisoned")
    }

    fn check_alive(&self) -> io::Result<()> {
        if self.plan().crashed() {
            Err(chaos_err("process crashed"))
        } else {
            Ok(())
        }
    }
}

impl DiskIo for ChaosDisk {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.create_dir_all(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.check_alive()?;
        match self.plan().decide(FaultPoint::DiskWrite, bytes.len()) {
            None => self.inner.write(path, bytes),
            Some(InjectedFault::Fail) => Err(chaos_err("disk-write-fail")),
            Some(InjectedFault::Torn(k)) => {
                // The torn prefix lands; the error models the process
                // dying before the rest (the plan is now `crashed`, so
                // any in-process cleanup attempt fails too).
                let _ = self.inner.write(path, &bytes[..k.min(bytes.len())]);
                Err(chaos_err("disk-write-torn"))
            }
            Some(_) => Err(chaos_err("disk-write-fail")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.check_alive()?;
        match self.plan().decide(FaultPoint::DiskRename, 0) {
            None => self.inner.rename(from, to),
            Some(_) => Err(chaos_err("disk-rename-fail")),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.check_alive()?;
        match self.plan().decide(FaultPoint::DiskRead, 0) {
            None => self.inner.read(path),
            Some(_) => Err(chaos_err("disk-read-fail")),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        !self.plan().crashed() && self.inner.exists(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.check_alive()?;
        self.inner.remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        self.check_alive()?;
        self.inner.list_dir(dir)
    }
}

/// A reader over an in-memory request that models connection faults:
/// after `cut` bytes it either stalls (every further read errors with
/// `TimedOut`, as a socket read deadline would) or closes (EOF mid-line).
#[derive(Debug)]
pub struct ChaosReader {
    data: Vec<u8>,
    pos: usize,
    cut: usize,
    stall: bool,
}

impl ChaosReader {
    /// Wraps `data`; `fault` is typically the plan's `ConnRead` decision.
    pub fn new(data: Vec<u8>, fault: Option<InjectedFault>) -> Self {
        let len = data.len();
        let (cut, stall) = match fault {
            Some(InjectedFault::Stall(k)) => (k.min(len), true),
            Some(InjectedFault::MidLineEof(k)) => (k.min(len), false),
            _ => (len, false),
        };
        ChaosReader {
            data,
            pos: 0,
            cut,
            stall,
        }
    }
}

impl Read for ChaosReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.pos >= self.cut {
            return if self.stall {
                Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    "chaos: conn-read-stall",
                ))
            } else {
                Ok(0)
            };
        }
        let n = buf.len().min(self.cut - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Tuning for one [`run_chaos`] schedule.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed: fault streams, job corpus, and request order all
    /// derive from it.
    pub seed: u64,
    /// Connections driven during the fault phase.
    pub iters: u64,
    /// Distinct synthesis jobs in the corpus.
    pub jobs: usize,
    /// In-memory cache entries of the server under test — deliberately
    /// smaller than `jobs`, so disk promotion stays on the hot path.
    pub cache_capacity: usize,
    /// A scheduled process restart every this many connections (0 turns
    /// scheduled restarts off; torn-write crashes restart regardless).
    pub crash_every: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            iters: 500,
            jobs: 6,
            cache_capacity: 3,
            crash_every: 61,
        }
    }
}

/// Counters and verdicts from one chaos run. Wall-clock-free: same seed,
/// same bytes.
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// Config echo: master seed.
    pub seed: u64,
    /// Config echo: fault-phase connections driven.
    pub iters: u64,
    /// Config echo: distinct jobs in the corpus.
    pub jobs: usize,
    /// Process restarts (scheduled + crash-forced).
    pub crashes: u64,
    /// Connections driven (fault phase).
    pub requests: u64,
    /// Well-formed `status:"ok"` synth replies observed.
    pub replies_ok: u64,
    /// Well-formed error replies observed.
    pub replies_error: u64,
    /// Connections that ended without a reply (stall, mid-line EOF).
    pub conn_drops: u64,
    /// Error replies by stable fingerprint.
    pub error_fingerprints: BTreeMap<String, u64>,
    /// Faults injected, by label (all labels, stable order).
    pub faults: Vec<(&'static str, u64)>,
    /// Cache disk errors accumulated across all server incarnations.
    pub disk_errors: u64,
    /// Cache certificate refusals accumulated across incarnations.
    pub cert_errors: u64,
    /// Valid entries found by startup scans across incarnations.
    pub recovered: u64,
    /// Files quarantined by startup scans across incarnations.
    pub quarantined: u64,
    /// Jobs that healed to byte-identical warm hits after faults stopped.
    pub healed: u64,
    /// Invariant violations (empty on a clean run).
    pub violations: Vec<String>,
}

impl ChaosSummary {
    /// Whether every invariant held.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Deterministic JSON rendering (no wall-clock fields).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("command", JsonValue::from("chaos")),
            ("seed", JsonValue::from(self.seed)),
            ("iters", JsonValue::from(self.iters)),
            ("jobs", JsonValue::from(self.jobs)),
            ("crashes", JsonValue::from(self.crashes)),
            ("requests", JsonValue::from(self.requests)),
            ("replies_ok", JsonValue::from(self.replies_ok)),
            ("replies_error", JsonValue::from(self.replies_error)),
            ("conn_drops", JsonValue::from(self.conn_drops)),
            (
                "errors",
                JsonValue::object(
                    self.error_fingerprints
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(*v))),
                ),
            ),
            (
                "faults",
                JsonValue::object(
                    self.faults
                        .iter()
                        .map(|(k, v)| (k.to_string(), JsonValue::from(*v))),
                ),
            ),
            ("disk_errors", JsonValue::from(self.disk_errors)),
            ("cert_errors", JsonValue::from(self.cert_errors)),
            ("recovered", JsonValue::from(self.recovered)),
            ("quarantined", JsonValue::from(self.quarantined)),
            ("healed", JsonValue::from(self.healed)),
            ("violations", JsonValue::from(self.violations.len() as u64)),
            (
                "violation_detail",
                JsonValue::array(self.violations.iter().map(|v| JsonValue::from(v.as_str()))),
            ),
        ])
    }

    /// Human-readable rendering.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "chaos: seed {} · {} connections over {} jobs · {} restarts",
            self.seed, self.requests, self.jobs, self.crashes
        );
        let _ = writeln!(
            out,
            "replies: {} ok, {} error, {} dropped connections",
            self.replies_ok, self.replies_error, self.conn_drops
        );
        let injected: Vec<String> = self
            .faults
            .iter()
            .filter(|(_, c)| *c > 0)
            .map(|(l, c)| format!("{l}×{c}"))
            .collect();
        let _ = writeln!(
            out,
            "faults injected: {}",
            if injected.is_empty() {
                "none".to_string()
            } else {
                injected.join(", ")
            }
        );
        let _ = writeln!(
            out,
            "cache: {} disk errors, {} cert refusals, {} recovered, {} quarantined",
            self.disk_errors, self.cert_errors, self.recovered, self.quarantined
        );
        let _ = writeln!(
            out,
            "healed: {}/{} jobs byte-identical",
            self.healed, self.jobs
        );
        if self.clean() {
            let _ = writeln!(out, "invariants: all held (0 violations)");
        } else {
            let _ = writeln!(out, "invariants VIOLATED ({}):", self.violations.len());
            for v in &self.violations {
                let _ = writeln!(out, "  - {v}");
            }
        }
        out
    }

    fn violation(&mut self, detail: String) {
        // Cap the detail list so a systematically-broken run cannot
        // allocate without bound; the count keeps the full tally.
        if self.violations.len() < 16 {
            self.violations.push(detail);
        } else if self.violations.len() == 16 {
            self.violations
                .push("… further violations elided".to_string());
        }
    }
}

/// One synthetic job: a small valid schedule and the request line that
/// submits it.
fn gen_request(rng: &mut Rng, job_seed: u64) -> String {
    let n = rng.gen_range(4..9usize);
    let mut ids: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut ids);
    let mut pattern = format!("procs {n}\nphase\n");
    for pair in ids.chunks(2) {
        if let [a, b] = pair {
            use std::fmt::Write as _;
            let _ = writeln!(pattern, "  {a} -> {b}");
        }
    }
    JsonValue::object([
        ("op", JsonValue::from("synth")),
        ("pattern", JsonValue::from(pattern)),
        ("seed", JsonValue::from(job_seed)),
        ("restarts", JsonValue::from(1u64)),
    ])
    .to_string()
}

/// Collapses the cache-tier marker so replies from different tiers
/// compare byte-for-byte.
fn normalize_tier(line: &str) -> String {
    line.replace("\"cache\":\"hit\"", "\"cache\":\"miss\"")
        .replace("\"cache\":\"disk\"", "\"cache\":\"miss\"")
}

fn chaos_server(
    config: &ChaosConfig,
    dir: &Path,
    disk: &Arc<dyn DiskIo>,
    plan: &Arc<Mutex<FaultPlan>>,
) -> Server {
    Server::new(ServeOptions {
        cache_capacity: config.cache_capacity,
        cache_dir: Some(dir.to_path_buf()),
        disk_io: Some(disk.clone()),
        ..ServeOptions::default()
    })
    .with_fault_plan(plan.clone())
}

fn absorb_cache_stats(server: &Server, summary: &mut ChaosSummary) {
    let stats = server.cache_stats();
    summary.disk_errors += stats.disk_errors;
    summary.cert_errors += stats.cert_errors;
    summary.recovered += stats.recovered;
    summary.quarantined += stats.quarantined;
}

/// Validates one connection's reply bytes against the invariants and
/// updates the counters. Returns whether any reply line was seen.
fn check_replies(
    summary: &mut ChaosSummary,
    out: &[u8],
    expected: Option<&str>,
    context: &str,
) -> bool {
    let mut any = false;
    for raw in out.split(|b| *b == b'\n').filter(|l| !l.is_empty()) {
        any = true;
        let Ok(text) = std::str::from_utf8(raw) else {
            summary.violation(format!("{context}: reply is not UTF-8"));
            continue;
        };
        let Ok(value) = json::parse(text) else {
            summary.violation(format!("{context}: reply is not well-formed JSON: {text}"));
            continue;
        };
        match value.get("reply").and_then(JsonValue::as_str) {
            Some("synth") => {
                if value.get("status").and_then(JsonValue::as_str) == Some("ok") {
                    summary.replies_ok += 1;
                    if let Some(want) = expected {
                        if normalize_tier(text) != want {
                            summary.violation(format!(
                                "{context}: served bytes differ from the fault-free reference \
                                 (torn or stale entry served)"
                            ));
                        }
                    }
                } else {
                    summary.replies_error += 1;
                }
            }
            Some("error") => {
                summary.replies_error += 1;
                let fp = value
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("missing-fingerprint")
                    .to_string();
                if fp == "missing-fingerprint" {
                    summary.violation(format!("{context}: error reply without a fingerprint"));
                }
                *summary.error_fingerprints.entry(fp).or_insert(0) += 1;
            }
            Some("stats") | Some("status") => {}
            _ => summary.violation(format!("{context}: reply with unknown kind: {text}")),
        }
    }
    any
}

/// Runs one seeded chaos schedule end to end and reports the verdict.
/// Deterministic: the summary (including its JSON form) is a pure
/// function of `config`.
pub fn run_chaos(config: &ChaosConfig) -> ChaosSummary {
    let mut summary = ChaosSummary {
        seed: config.seed,
        iters: config.iters,
        jobs: config.jobs.max(1),
        crashes: 0,
        requests: 0,
        replies_ok: 0,
        replies_error: 0,
        conn_drops: 0,
        error_fingerprints: BTreeMap::new(),
        faults: Vec::new(),
        disk_errors: 0,
        cert_errors: 0,
        recovered: 0,
        quarantined: 0,
        healed: 0,
        violations: Vec::new(),
    };
    let n_jobs = summary.jobs;
    let mut rng = Rng::seed_from_u64(config.seed ^ hash_str("chaos-harness"));
    let requests: Vec<String> = (0..n_jobs)
        .map(|i| gen_request(&mut rng, i as u64))
        .collect();

    // Fault-free reference: the bytes every later serve of the same job
    // must reproduce exactly.
    let reference = Server::new(ServeOptions {
        cache_capacity: n_jobs,
        ..ServeOptions::default()
    });
    let mut expected: Vec<String> = Vec::with_capacity(n_jobs);
    for req in &requests {
        let reply = reference.handle_line(req);
        expected.push(normalize_tier(&reply.line));
        if !reply.line.contains("\"status\":\"ok\"") {
            summary.violation(format!(
                "reference run failed for a corpus job: {}",
                reply.line
            ));
        }
    }
    if !summary.clean() {
        summary.faults = FaultPlan::quiet(config.seed).injected();
        return summary;
    }

    // Fault phase: one shared surviving store, fault-wrapped; the server
    // (the "process") restarts on schedule and whenever a torn write
    // kills it.
    let plan = Arc::new(Mutex::new(FaultPlan::seeded(config.seed)));
    let store = Arc::new(MemDisk::new());
    let disk: Arc<dyn DiskIo> = Arc::new(ChaosDisk::new(store, plan.clone()));
    let dir = PathBuf::from("chaos-store");
    let mut server = chaos_server(config, &dir, &disk, &plan);

    for it in 0..config.iters {
        let ji = rng.gen_range(0..n_jobs);
        let (line, want) = if it % 17 == 16 {
            (r#"{"op":"stats"}"#.to_string(), None)
        } else {
            (requests[ji].clone(), Some(expected[ji].as_str()))
        };
        let mut bytes = line.into_bytes();
        bytes.push(b'\n');
        let fault = plan
            .lock()
            .expect("fault plan lock never poisoned")
            .decide(FaultPoint::ConnRead, bytes.len());
        let reader = BufReader::new(ChaosReader::new(bytes, fault));
        let mut out: Vec<u8> = Vec::new();
        let stream = server.serve_stream(reader, &mut out);
        summary.requests += 1;
        let context = format!("connection {it}");
        let replied = check_replies(&mut summary, &out, want, &context);
        if stream.is_err() || !replied {
            summary.conn_drops += 1;
        }

        let crashed = plan
            .lock()
            .expect("fault plan lock never poisoned")
            .crashed();
        let scheduled = config.crash_every > 0 && (it + 1) % config.crash_every == 0;
        if crashed || scheduled {
            absorb_cache_stats(&server, &mut summary);
            plan.lock()
                .expect("fault plan lock never poisoned")
                .revive();
            server = chaos_server(config, &dir, &disk, &plan);
            summary.crashes += 1;
        }
    }
    absorb_cache_stats(&server, &mut summary);
    drop(server);

    // Healing phase: faults off, fresh process over whatever survived.
    {
        let mut p = plan.lock().expect("fault plan lock never poisoned");
        p.revive();
        p.disarm();
    }
    let healer = chaos_server(config, &dir, &disk, &plan);
    for (ji, req) in requests.iter().enumerate() {
        let first = healer.handle_line(req);
        let second = healer.handle_line(req);
        let first_ok = normalize_tier(&first.line) == expected[ji];
        let second_ok = normalize_tier(&second.line) == expected[ji]
            && second.line.contains("\"cache\":\"hit\"");
        if first_ok && second_ok {
            summary.healed += 1;
        } else {
            summary.violation(format!(
                "job {ji} did not heal to byte-identical warm results \
                 (first ok: {first_ok}, warm hit ok: {second_ok})"
            ));
        }
    }
    absorb_cache_stats(&healer, &mut summary);
    summary.faults = plan
        .lock()
        .expect("fault plan lock never poisoned")
        .injected();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_plan_streams_are_deterministic_per_point() {
        let decisions = |seed| {
            let mut plan = FaultPlan::seeded(seed);
            (0..64)
                .map(|_| plan.decide(FaultPoint::DiskRead, 0).is_some())
                .collect::<Vec<bool>>()
        };
        assert_eq!(decisions(7), decisions(7));
        assert_ne!(decisions(7), decisions(8), "different seeds should differ");
    }

    #[test]
    fn disk_read_stream_is_independent_of_other_points() {
        // Interleaving calls at other points must not shift DiskRead's
        // decision sequence.
        let mut lone = FaultPlan::seeded(3);
        let lone_seq: Vec<bool> = (0..32)
            .map(|_| lone.decide(FaultPoint::DiskRead, 0).is_some())
            .collect();
        let mut mixed = FaultPlan::seeded(3);
        let mixed_seq: Vec<bool> = (0..32)
            .map(|_| {
                let _ = mixed.decide(FaultPoint::DiskWrite, 10);
                let _ = mixed.decide(FaultPoint::Engine, 0);
                mixed.revive(); // torn writes crash; clear for the probe
                mixed.decide(FaultPoint::DiskRead, 0).is_some()
            })
            .collect();
        assert_eq!(lone_seq, mixed_seq);
    }

    #[test]
    fn torn_write_crashes_until_revived() {
        let plan = Arc::new(Mutex::new(FaultPlan::quiet(0).with_torn_write_at(0, 3)));
        let store = Arc::new(MemDisk::new());
        let disk = ChaosDisk::new(store.clone(), plan.clone());
        let path = PathBuf::from("d").join("x.json");
        let err = disk
            .write(&path, b"0123456789")
            .expect_err("torn write errors");
        assert!(err.to_string().contains("disk-write-torn"));
        // The torn prefix landed on the underlying store.
        assert_eq!(store.snapshot(&path).expect("prefix landed"), b"012");
        // Everything now fails: the process is dead.
        assert!(disk.read(&path).is_err());
        assert!(disk.write(&path, b"full").is_err());
        assert!(!disk.exists(&path));
        plan.lock().expect("lock").revive();
        assert!(disk.read(&path).is_ok());
    }

    #[test]
    fn scripted_fail_fires_at_exactly_the_given_op() {
        let plan = Arc::new(Mutex::new(
            FaultPlan::quiet(0).with_fail_at(FaultPoint::DiskWrite, 1),
        ));
        let disk = ChaosDisk::new(Arc::new(MemDisk::new()), plan);
        let p = PathBuf::from("f");
        assert!(disk.write(&p, b"a").is_ok());
        assert!(disk.write(&p, b"b").is_err());
        assert!(disk.write(&p, b"c").is_ok());
    }

    #[test]
    fn chaos_reader_stall_and_eof() {
        let mut buf = Vec::new();
        let mut eof = ChaosReader::new(b"hello\n".to_vec(), Some(InjectedFault::MidLineEof(3)));
        eof.read_to_end(&mut buf)
            .expect("eof variant reads cleanly");
        assert_eq!(buf, b"hel");

        let mut stall = ChaosReader::new(b"hello\n".to_vec(), Some(InjectedFault::Stall(2)));
        let mut buf = Vec::new();
        let err = stall.read_to_end(&mut buf).expect_err("stall errors");
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(buf, b"he");

        let mut clean = ChaosReader::new(b"hello\n".to_vec(), None);
        let mut buf = Vec::new();
        clean.read_to_end(&mut buf).expect("clean reads");
        assert_eq!(buf, b"hello\n");
    }

    #[test]
    fn summary_json_shape_is_stable() {
        let summary = run_chaos(&ChaosConfig {
            iters: 8,
            ..ChaosConfig::default()
        });
        let rendered = summary.to_json().to_string();
        for key in [
            "\"command\":\"chaos\"",
            "\"faults\":{",
            "\"disk-write-torn\":",
            "\"engine-panic\":",
            "\"violations\":",
            "\"healed\":",
        ] {
            assert!(rendered.contains(key), "missing {key} in {rendered}");
        }
    }
}
