//! The request half of the line protocol: strict parsing of one JSON
//! object into a typed [`Request`].
//!
//! Parsing is *strict*: unknown operations, unknown fields, and
//! wrong-typed fields are all rejected. Strictness is a cache-integrity
//! property, not pedantry — a field this version ignored but a future
//! version acts on would let two servers disagree about what a request
//! means while computing the same fingerprint.

use std::fmt;

use nocsyn_model::json::{self, JsonValue};

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Synthesize a network for an inline pattern text.
    Synth(SynthRequest),
    /// Report cache and request counters.
    Stats,
    /// Liveness / readiness probe.
    Status,
}

/// Payload of a `synth` request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthRequest {
    /// Schedule or trace text (autodetected, same rule as the CLI:
    /// any `msg ` line makes it a trace).
    pub pattern: String,
    /// RNG seed; defaults to the config default.
    pub seed: Option<u64>,
    /// Restart portfolio size; defaults to the config default. Zero is
    /// rejected by the request builder with a `zero-restarts` reply, not
    /// silently clamped.
    pub restarts: Option<u64>,
    /// Maximum switch degree; defaults to the config default.
    pub max_degree: Option<u64>,
    /// Wall-clock budget. Deliberately **not** part of the cache
    /// fingerprint: a deadline changes how long the search may run,
    /// never what a completed search returns, and only completed
    /// results are cached.
    pub deadline_ms: Option<u64>,
    /// Synthesis mode: `"flat"` (the default) or `"decomposed"`
    /// (cluster, synthesize per cluster, stitch, re-verify). Part of the
    /// cache fingerprint via the request's canonical form, so flat and
    /// decomposed answers never collide.
    pub mode: Option<String>,
    /// Cluster count for decomposed mode; only legal alongside
    /// `"mode":"decomposed"`. Absent means auto-sizing.
    pub clusters: Option<u64>,
}

/// A rejected request: a stable kebab-case fingerprint naming the
/// failure class, plus a human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// Stable identifier (`bad-json`, `not-an-object`, `missing-op`,
    /// `unknown-op`, `missing-pattern`, `bad-field`).
    pub fingerprint: &'static str,
    /// Human-readable detail; never required to be stable.
    pub detail: String,
}

impl RequestError {
    fn new(fingerprint: &'static str, detail: impl Into<String>) -> Self {
        RequestError {
            fingerprint,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.fingerprint, self.detail)
    }
}

impl std::error::Error for RequestError {}

/// Fields the `synth` operation accepts.
const SYNTH_FIELDS: &[&str] = &[
    "op",
    "pattern",
    "seed",
    "restarts",
    "max_degree",
    "deadline_ms",
    "mode",
    "clusters",
];

/// Parses one protocol line into a [`Request`].
///
/// # Errors
///
/// [`RequestError`] with a stable fingerprint on any malformed frame;
/// never panics on any input (the JSON layer is bounded and total).
pub fn parse_request(line: &str) -> Result<Request, RequestError> {
    let value = json::parse(line).map_err(|e| RequestError::new("bad-json", e.to_string()))?;
    let Some(pairs) = value.as_object() else {
        return Err(RequestError::new(
            "not-an-object",
            "request frame must be a JSON object",
        ));
    };
    let Some(op) = value.get("op").and_then(JsonValue::as_str) else {
        return Err(RequestError::new(
            "missing-op",
            "request object needs a string \"op\" field",
        ));
    };
    match op {
        "synth" => {
            for (key, _) in pairs {
                if !SYNTH_FIELDS.contains(&key.as_str()) {
                    return Err(RequestError::new(
                        "bad-field",
                        format!("unknown field {key:?} in synth request"),
                    ));
                }
            }
            let Some(pattern) = value.get("pattern").and_then(JsonValue::as_str) else {
                return Err(RequestError::new(
                    "missing-pattern",
                    "synth request needs a string \"pattern\" field",
                ));
            };
            let mode = match value.get("mode") {
                None => None,
                Some(v) => match v.as_str() {
                    Some(m @ ("flat" | "decomposed")) => Some(m.to_string()),
                    _ => {
                        return Err(RequestError::new(
                            "bad-field",
                            "field \"mode\" must be \"flat\" or \"decomposed\"",
                        ));
                    }
                },
            };
            let clusters = u64_field(&value, "clusters")?;
            if clusters.is_some() && mode.as_deref() != Some("decomposed") {
                return Err(RequestError::new(
                    "bad-field",
                    "field \"clusters\" requires \"mode\":\"decomposed\"",
                ));
            }
            Ok(Request::Synth(SynthRequest {
                pattern: pattern.to_string(),
                seed: u64_field(&value, "seed")?,
                restarts: u64_field(&value, "restarts")?,
                max_degree: u64_field(&value, "max_degree")?,
                deadline_ms: u64_field(&value, "deadline_ms")?,
                mode,
                clusters,
            }))
        }
        "stats" => {
            only_op(pairs, "stats")?;
            Ok(Request::Stats)
        }
        "status" => {
            only_op(pairs, "status")?;
            Ok(Request::Status)
        }
        other => Err(RequestError::new(
            "unknown-op",
            format!("unknown op {other:?}"),
        )),
    }
}

/// Rejects any field besides `op` for payload-free operations.
fn only_op(pairs: &[(String, JsonValue)], op: &str) -> Result<(), RequestError> {
    for (key, _) in pairs {
        if key != "op" {
            return Err(RequestError::new(
                "bad-field",
                format!("unknown field {key:?} in {op} request"),
            ));
        }
    }
    Ok(())
}

/// Reads an optional unsigned-integer field; present-but-wrong-typed is
/// an error, absent is `None`.
fn u64_field(value: &JsonValue, key: &str) -> Result<Option<u64>, RequestError> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => v.as_u64().map(Some).ok_or_else(|| {
            RequestError::new(
                "bad-field",
                format!("field {key:?} must be an unsigned integer"),
            )
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_synth_request() {
        let req = parse_request(
            r#"{"op":"synth","pattern":"procs 2\n","seed":7,"restarts":2,"max_degree":4,"deadline_ms":100,"mode":"decomposed","clusters":2}"#,
        )
        .expect("valid");
        assert_eq!(
            req,
            Request::Synth(SynthRequest {
                pattern: "procs 2\n".into(),
                seed: Some(7),
                restarts: Some(2),
                max_degree: Some(4),
                deadline_ms: Some(100),
                mode: Some("decomposed".into()),
                clusters: Some(2),
            })
        );
    }

    #[test]
    fn optional_fields_default_to_none() {
        let req = parse_request(r#"{"op":"synth","pattern":"procs 2\n"}"#).expect("valid");
        assert_eq!(
            req,
            Request::Synth(SynthRequest {
                pattern: "procs 2\n".into(),
                seed: None,
                restarts: None,
                max_degree: None,
                deadline_ms: None,
                mode: None,
                clusters: None,
            })
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"op":"status"}"#), Ok(Request::Status));
    }

    #[test]
    fn rejections_carry_stable_fingerprints() {
        let cases: &[(&str, &str)] = &[
            ("not json", "bad-json"),
            ("[1,2]", "not-an-object"),
            ("{}", "missing-op"),
            (r#"{"op":7}"#, "missing-op"),
            (r#"{"op":"frobnicate"}"#, "unknown-op"),
            (r#"{"op":"synth"}"#, "missing-pattern"),
            (r#"{"op":"synth","pattern":42}"#, "missing-pattern"),
            (r#"{"op":"synth","pattern":"p","seed":"x"}"#, "bad-field"),
            (r#"{"op":"synth","pattern":"p","seed":-1}"#, "bad-field"),
            (r#"{"op":"synth","pattern":"p","seed":1.5}"#, "bad-field"),
            (r#"{"op":"synth","pattern":"p","bogus":1}"#, "bad-field"),
            (
                r#"{"op":"synth","pattern":"p","mode":"turbo"}"#,
                "bad-field",
            ),
            (r#"{"op":"synth","pattern":"p","mode":7}"#, "bad-field"),
            (r#"{"op":"synth","pattern":"p","clusters":2}"#, "bad-field"),
            (
                r#"{"op":"synth","pattern":"p","mode":"flat","clusters":2}"#,
                "bad-field",
            ),
            (
                r#"{"op":"synth","pattern":"p","mode":"decomposed","clusters":-1}"#,
                "bad-field",
            ),
            (r#"{"op":"stats","extra":1}"#, "bad-field"),
            (r#"{"op":"status","extra":1}"#, "bad-field"),
        ];
        for (input, want) in cases {
            let err = parse_request(input).expect_err(input);
            assert_eq!(err.fingerprint, *want, "input {input:?}");
            assert!(err.to_string().starts_with(want));
        }
    }
}
