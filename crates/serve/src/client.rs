//! A minimal blocking client for the line protocol — what the
//! `nocsyn client` subcommand and the integration tests use.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A connected protocol client. One request in flight at a time: the
/// server replies exactly one line per request and flushes per line, so
/// a blocking write-then-read round trip is safe.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serve daemon at `addr` (e.g. `127.0.0.1:7733`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request line and reads one reply line (trailing newline
    /// stripped). The request must not contain embedded newlines — the
    /// protocol frames on them.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket, or `UnexpectedEof` if the server
    /// closes the connection without replying.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without replying",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeOptions, Server};
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn round_trips_requests_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = listener.local_addr().expect("bound address");
        let server = Arc::new(Server::new(ServeOptions::default()));
        let background = {
            let server = Arc::clone(&server);
            thread::spawn(move || server.serve_listener(&listener, true))
        };

        let mut client = Client::connect(addr).expect("connect");
        let status = client.request("{\"op\":\"status\"}").expect("status reply");
        assert!(status.starts_with("{\"reply\":\"status\""));

        let pattern = "procs 4\\nphase\\n  0 -> 1\\n  2 -> 3\\n";
        let req = format!("{{\"op\":\"synth\",\"pattern\":\"{pattern}\",\"restarts\":1}}");
        let miss = client.request(&req).expect("miss reply");
        let hit = client.request(&req).expect("hit reply");
        assert!(miss.contains("\"cache\":\"miss\""));
        assert!(hit.contains("\"cache\":\"hit\""));
        assert_eq!(miss.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""), hit);

        drop(client);
        background
            .join()
            .expect("listener thread")
            .expect("listener I/O");
    }
}
