//! A minimal blocking client for the line protocol — what the
//! `nocsyn client` subcommand and the integration tests use.
//!
//! [`Client::request_with_retry`] adds the resilience half: stable
//! kebab-case error fingerprints instead of raw I/O errors, and a
//! deterministic seeded-backoff retry loop for the failures the protocol
//! declares transient (`queue-full`, connection loss, connect refusal).
//! A malformed reply is *not* transient — the server is speaking the
//! wrong protocol, and hammering it will not fix that.

use std::io::{self, BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use nocsyn_model::json;
use nocsyn_rng::Rng;

/// A client-side failure with a stable kebab-case fingerprint — the
/// contract `nocsyn client` exposes to scripts (exit status + first
/// token of the stderr line), mirroring the server's error replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientError {
    /// Could not establish a connection.
    ConnectFailed(String),
    /// The connection died mid-request or mid-reply.
    ConnectionLost(String),
    /// The server replied with something that does not parse as JSON.
    ReplyMalformed(String),
    /// Every attempt failed; carries the last failure's fingerprint.
    RetriesExhausted(String),
}

impl ClientError {
    /// The stable kebab-case fingerprint.
    pub fn fingerprint(&self) -> &'static str {
        match self {
            ClientError::ConnectFailed(_) => "connect-failed",
            ClientError::ConnectionLost(_) => "connection-lost",
            ClientError::ReplyMalformed(_) => "reply-malformed",
            ClientError::RetriesExhausted(_) => "retries-exhausted",
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let detail = match self {
            ClientError::ConnectFailed(d)
            | ClientError::ConnectionLost(d)
            | ClientError::ReplyMalformed(d)
            | ClientError::RetriesExhausted(d) => d,
        };
        write!(f, "{}: {detail}", self.fingerprint())
    }
}

impl std::error::Error for ClientError {}

/// Deterministic retry tuning for [`Client::request_with_retry`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = fail fast).
    pub retries: u64,
    /// Base backoff per retry in milliseconds; attempt `k` sleeps
    /// `k * backoff_ms` plus a seeded jitter in `0..backoff_ms`.
    pub backoff_ms: u64,
    /// Seed for the jitter stream — same seed, same sleep schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            retries: 0,
            backoff_ms: 50,
            seed: 0,
        }
    }
}

/// A connected protocol client. One request in flight at a time: the
/// server replies exactly one line per request and flushes per line, so
/// a blocking write-then-read round trip is safe.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a serve daemon at `addr` (e.g. `127.0.0.1:7733`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request line and reads one reply line (trailing newline
    /// stripped). The request must not contain embedded newlines — the
    /// protocol frames on them.
    ///
    /// # Errors
    ///
    /// I/O errors from the socket, or `UnexpectedEof` if the server
    /// closes the connection without replying.
    pub fn request(&mut self, line: &str) -> io::Result<String> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection without replying",
            ));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// One request with fingerprinted failures and deterministic retry:
    /// connects, sends `line`, and validates that the reply parses as
    /// JSON. Connect failures, lost connections, and `queue-full` replies
    /// are transient — each retry (up to `policy.retries`) reconnects
    /// after a seeded backoff of `k * backoff_ms` plus jitter drawn from
    /// `Rng::seed_from_u64(policy.seed)`, so a given (seed, failure
    /// pattern) produces one fixed sleep schedule. A malformed reply
    /// fails fast: the peer is not speaking the protocol, and retrying
    /// cannot help.
    ///
    /// A well-formed `queue-full` reply on the *final* attempt is
    /// returned as `Ok` — it is the server's authoritative answer, and
    /// the caller sees the full error envelope.
    ///
    /// # Errors
    ///
    /// [`ClientError`] with a stable fingerprint: the specific failure
    /// when `policy.retries` is 0, `retries-exhausted` (carrying the last
    /// failure) otherwise.
    pub fn request_with_retry<A: ToSocketAddrs>(
        addr: A,
        line: &str,
        policy: &RetryPolicy,
    ) -> Result<String, ClientError> {
        let mut jitter = Rng::seed_from_u64(policy.seed);
        let mut last = String::new();
        for attempt in 0..=policy.retries {
            if attempt > 0 && policy.backoff_ms > 0 {
                let jitter_ms = jitter.gen_range(0..policy.backoff_ms);
                std::thread::sleep(Duration::from_millis(
                    attempt.saturating_mul(policy.backoff_ms) + jitter_ms,
                ));
            }
            let failure = match Client::connect(&addr) {
                Err(e) => ClientError::ConnectFailed(e.to_string()),
                Ok(mut client) => match client.request(line) {
                    Err(e) => ClientError::ConnectionLost(e.to_string()),
                    Ok(reply) => {
                        if json::parse(&reply).is_err() {
                            return Err(ClientError::ReplyMalformed(format!(
                                "reply is not well-formed JSON: {reply}"
                            )));
                        }
                        if reply.contains("\"error\":\"queue-full\"") && attempt < policy.retries {
                            // queue-full is a valid protocol reply, not a
                            // ClientError; remember it only as the reason
                            // for the next retry.
                            last = "queue-full: server at capacity".to_string();
                            continue;
                        }
                        return Ok(reply);
                    }
                },
            };
            if policy.retries == 0 {
                return Err(failure);
            }
            last = failure.to_string();
        }
        Err(ClientError::RetriesExhausted(last))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ServeOptions, Server};
    use std::net::TcpListener;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn round_trips_requests_over_tcp() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = listener.local_addr().expect("bound address");
        let server = Arc::new(Server::new(ServeOptions::default()));
        let background = {
            let server = Arc::clone(&server);
            thread::spawn(move || server.serve_listener(&listener, true))
        };

        let mut client = Client::connect(addr).expect("connect");
        let status = client.request("{\"op\":\"status\"}").expect("status reply");
        assert!(status.starts_with("{\"reply\":\"status\""));

        let pattern = "procs 4\\nphase\\n  0 -> 1\\n  2 -> 3\\n";
        let req = format!("{{\"op\":\"synth\",\"pattern\":\"{pattern}\",\"restarts\":1}}");
        let miss = client.request(&req).expect("miss reply");
        let hit = client.request(&req).expect("hit reply");
        assert!(miss.contains("\"cache\":\"miss\""));
        assert!(hit.contains("\"cache\":\"hit\""));
        assert_eq!(miss.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""), hit);

        drop(client);
        background
            .join()
            .expect("listener thread")
            .expect("listener I/O");
    }

    #[test]
    fn connect_failure_fingerprints_depend_on_retry_budget() {
        // Bind-then-drop guarantees a port nothing is listening on.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
            listener.local_addr().expect("bound address")
        };
        let fail_fast = RetryPolicy {
            retries: 0,
            backoff_ms: 0,
            seed: 1,
        };
        let err = Client::request_with_retry(addr, "{\"op\":\"status\"}", &fail_fast)
            .expect_err("nobody is listening");
        assert_eq!(err.fingerprint(), "connect-failed");

        let with_budget = RetryPolicy {
            retries: 2,
            backoff_ms: 0,
            seed: 1,
        };
        let err = Client::request_with_retry(addr, "{\"op\":\"status\"}", &with_budget)
            .expect_err("still nobody listening");
        assert_eq!(err.fingerprint(), "retries-exhausted");
        assert!(err.to_string().contains("connect-failed"), "{err}");
    }

    #[test]
    fn malformed_replies_fail_fast_with_a_stable_fingerprint() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = listener.local_addr().expect("bound address");
        let imposter = thread::spawn(move || {
            // Accept every connection the retry loop might open and
            // answer each with a non-JSON line.
            for conn in listener.incoming().take(1) {
                let mut stream = conn.expect("accept");
                let mut drain = [0u8; 256];
                let _ = io::Read::read(&mut stream, &mut drain);
                let _ = stream.write_all(b"NOT JSON AT ALL\n");
            }
        });
        let policy = RetryPolicy {
            retries: 3,
            backoff_ms: 0,
            seed: 7,
        };
        let err = Client::request_with_retry(addr, "{\"op\":\"status\"}", &policy)
            .expect_err("garbage replies are fatal");
        // Fails fast: malformed replies never burn the retry budget.
        assert_eq!(err.fingerprint(), "reply-malformed");
        imposter.join().expect("imposter thread");
    }

    #[test]
    fn queue_full_final_attempt_returns_the_servers_reply() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("ephemeral port");
        let addr = listener.local_addr().expect("bound address");
        let server = Arc::new(Server::new(ServeOptions {
            max_queue_depth: 0,
            ..ServeOptions::default()
        }));
        let background = {
            let server = Arc::clone(&server);
            // Three connections: the initial attempt plus two retries.
            thread::spawn(move || {
                for _ in 0..3 {
                    server.serve_listener(&listener, true)?;
                }
                Ok::<(), io::Error>(())
            })
        };
        let pattern = "procs 4\\nphase\\n  0 -> 1\\n  2 -> 3\\n";
        let req = format!("{{\"op\":\"synth\",\"pattern\":\"{pattern}\",\"restarts\":1}}");
        let policy = RetryPolicy {
            retries: 2,
            backoff_ms: 0,
            seed: 3,
        };
        let reply = Client::request_with_retry(addr, &req, &policy)
            .expect("the final queue-full reply is the server's answer");
        assert!(reply.contains("\"error\":\"queue-full\""), "{reply}");
        background
            .join()
            .expect("listener thread")
            .expect("listener I/O");
    }
}
