//! The disk I/O seam: every filesystem touch the serve stack makes goes
//! through [`DiskIo`], so production runs on the real filesystem
//! ([`RealDisk`]) while tests, benches, and the chaos harness run on an
//! in-memory store ([`MemDisk`]) — optionally wrapped in a
//! fault-injecting [`ChaosDisk`](crate::ChaosDisk).
//!
//! The surface is deliberately tiny: exactly the calls the result cache's
//! commit protocol and recovery scan need (`write`, `rename`, `read`,
//! `exists`, `remove_file`, `create_dir_all`, `list_dir`). Keeping the
//! seam this narrow is what makes the chaos layer's coverage claim
//! meaningful — there is no second path to the disk to slip past it.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// A minimal filesystem facade. Implementations must be shareable across
/// threads (the cache sits behind a mutex in a multi-connection server).
pub trait DiskIo: Send + Sync + std::fmt::Debug {
    /// Creates `dir` and any missing parents.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Writes `bytes` to `path`, replacing any existing file. Not atomic —
    /// callers that need atomicity write to a temp path and [`DiskIo::rename`].
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store; a failed write may leave a
    /// partial file behind (that is the failure mode the commit protocol
    /// defends against).
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to` (replacing `to` if present).
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store, including `from` not existing.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Reads the full contents of `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store, including `path` not existing.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Whether `path` currently exists as a file.
    fn exists(&self, path: &Path) -> bool;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store, including `path` not existing.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Lists the files directly inside `dir`, sorted by path so every
    /// caller iterates deterministically. Subdirectories are not listed
    /// and not descended into.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying store, including `dir` not existing.
    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
}

/// The production implementation: straight passthrough to `std::fs`.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealDisk;

impl DiskIo for RealDisk {
    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        std::fs::write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.is_file()
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut files: Vec<PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        files.sort();
        Ok(files)
    }
}

/// An in-memory filesystem: a sorted map from path to bytes. Hermetic
/// (no temp dirs to clean up), deterministic (`list_dir` order is the
/// map order), and shared-by-`Arc` so a "restarted" cache can reopen the
/// same surviving store — which is exactly how the chaos harness models
/// a process crash.
#[derive(Debug, Default)]
pub struct MemDisk {
    files: Mutex<BTreeMap<PathBuf, Vec<u8>>>,
}

impl MemDisk {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemDisk::default()
    }

    /// Number of files currently stored.
    pub fn file_count(&self) -> usize {
        self.files
            .lock()
            .expect("mem disk lock never poisoned")
            .len()
    }

    /// Direct snapshot of a file's bytes, bypassing the trait (test
    /// helper for asserting on-disk state).
    pub fn snapshot(&self, path: &Path) -> Option<Vec<u8>> {
        self.files
            .lock()
            .expect("mem disk lock never poisoned")
            .get(path)
            .cloned()
    }

    /// Directly installs a file, bypassing the trait (test helper for
    /// staging torn or hostile on-disk states).
    pub fn install(&self, path: &Path, bytes: &[u8]) {
        self.files
            .lock()
            .expect("mem disk lock never poisoned")
            .insert(path.to_path_buf(), bytes.to_vec());
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("no such file: {}", path.display()),
    )
}

impl DiskIo for MemDisk {
    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        // Directories are implicit: a file exists iff it was written.
        Ok(())
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem disk lock never poisoned")
            .insert(path.to_path_buf(), bytes.to_vec());
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut files = self.files.lock().expect("mem disk lock never poisoned");
        let Some(bytes) = files.remove(from) else {
            return Err(not_found(from));
        };
        files.insert(to.to_path_buf(), bytes);
        Ok(())
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.files
            .lock()
            .expect("mem disk lock never poisoned")
            .get(path)
            .cloned()
            .ok_or_else(|| not_found(path))
    }

    fn exists(&self, path: &Path) -> bool {
        self.files
            .lock()
            .expect("mem disk lock never poisoned")
            .contains_key(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.files
            .lock()
            .expect("mem disk lock never poisoned")
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| not_found(path))
    }

    fn list_dir(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        Ok(self
            .files
            .lock()
            .expect("mem disk lock never poisoned")
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .cloned()
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_disk_round_trips_and_errors_on_missing() {
        let disk = MemDisk::new();
        let dir = PathBuf::from("d");
        let a = dir.join("a.json");
        let b = dir.join("b.json");
        assert!(!disk.exists(&a));
        assert!(disk.read(&a).is_err());
        assert!(disk.remove_file(&a).is_err());
        assert!(disk.rename(&a, &b).is_err());

        disk.write(&a, b"hello").expect("mem write");
        assert!(disk.exists(&a));
        assert_eq!(disk.read(&a).expect("mem read"), b"hello");

        disk.rename(&a, &b).expect("mem rename");
        assert!(!disk.exists(&a));
        assert_eq!(disk.read(&b).expect("mem read"), b"hello");

        disk.remove_file(&b).expect("mem remove");
        assert_eq!(disk.file_count(), 0);
    }

    #[test]
    fn mem_list_dir_is_sorted_and_shallow() {
        let disk = MemDisk::new();
        let dir = PathBuf::from("store");
        disk.write(&dir.join("b.json"), b"{}").expect("write");
        disk.write(&dir.join("a.json"), b"{}").expect("write");
        disk.write(&dir.join("quarantine").join("c.json"), b"{}")
            .expect("write");
        disk.write(&PathBuf::from("elsewhere").join("d.json"), b"{}")
            .expect("write");
        let listed = disk.list_dir(&dir).expect("list");
        assert_eq!(listed, vec![dir.join("a.json"), dir.join("b.json")]);
    }

    #[test]
    fn real_disk_round_trips() {
        let dir = std::env::temp_dir().join(format!("nocsyn-io-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let disk = RealDisk;
        disk.create_dir_all(&dir).expect("mkdir");
        let tmp = dir.join("x.tmp");
        let fin = dir.join("x.json");
        disk.write(&tmp, b"{}").expect("write");
        disk.rename(&tmp, &fin).expect("rename");
        assert!(disk.exists(&fin));
        assert!(!disk.exists(&tmp));
        assert_eq!(disk.read(&fin).expect("read"), b"{}");
        assert_eq!(disk.list_dir(&dir).expect("list"), vec![fin.clone()]);
        disk.remove_file(&fin).expect("remove");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
