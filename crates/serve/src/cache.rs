//! The content-addressed result cache: bounded in-memory LRU over an
//! optional on-disk store.
//!
//! Keys are [`Digest`]s of the canonical job form
//! ([`job_fingerprint`](crate::job_fingerprint)); values are the exact
//! rendered synth-report JSON object strings a fresh run would produce.
//! Because synthesis is deterministic, a cached value is not an
//! approximation of a fresh run — it is byte-for-byte *the* result, which
//! is what makes hits verifiable (and what the cache-correctness property
//! tests check).
//!
//! The disk tier stores one `<hex-digest>.json` file per entry, plus a
//! companion `<hex-digest>.cert.json` contention-freedom certificate.
//! All filesystem traffic goes through the [`DiskIo`] seam, so the chaos
//! harness can inject write/read/rename faults at every touch point.
//!
//! # Commit protocol
//!
//! Disk entries commit via temp-file + atomic rename, certificate
//! **before** report:
//!
//! 1. write `<fp>.cert.json.tmp`, rename to `<fp>.cert.json`
//! 2. write `<fp>.json.tmp`, rename to `<fp>.json`
//!
//! A crash at any point leaves either a complete pair, an orphan
//! certificate (harmless — quarantined by the startup scan), or a `.tmp`
//! (ditto). The *reverse* order had a real failure mode: a report
//! committed without its certificate is refused by
//! [`ResultCache::lookup_certified`] on every future start and
//! re-synthesized forever. The report is only attempted once the
//! certificate is durable.
//!
//! # Recovery
//!
//! [`ResultCache::recover`] scans the store once at startup: leftover
//! `.tmp` files, unparseable files, and orphans (report without cert,
//! cert without report) are moved into a `quarantine/` subdirectory and
//! counted in [`CacheStats::quarantined`]; complete well-formed pairs are
//! counted in [`CacheStats::recovered`]. Quarantine preserves the bytes
//! for post-mortems instead of deleting them.
//!
//! Disk contents remain untrusted after recovery: a file that fails to
//! re-parse as JSON is ignored (counted in [`CacheStats::disk_errors`])
//! rather than served, and [`ResultCache::lookup_certified`]
//! additionally refuses to serve a disk entry whose certificate is
//! missing or fails the caller's validator (counted in
//! [`CacheStats::cert_errors`] — the entry is re-synthesized instead).
//! Only *completed* results are ever inserted, so a deadline can never
//! poison the cache with a degraded best-so-far report.

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use nocsyn_model::json;
use nocsyn_model::Digest;

use crate::io::{DiskIo, RealDisk};

/// Where a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Not cached anywhere; the engine ran.
    Miss,
    /// Served from the in-memory LRU.
    Hit,
    /// Served from the on-disk store (and promoted into memory).
    Disk,
}

impl CacheTier {
    /// Stable lowercase label used in reply envelopes and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            CacheTier::Miss => "miss",
            CacheTier::Hit => "hit",
            CacheTier::Disk => "disk",
        }
    }
}

/// Monotonic cache counters (all since server start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that found nothing and fell through to the engine.
    pub misses: u64,
    /// Lookups served from the disk tier.
    pub disk_hits: u64,
    /// Entries inserted after fresh synthesis.
    pub insertions: u64,
    /// In-memory entries evicted by the LRU bound.
    pub evictions: u64,
    /// Disk files that failed to read, parse, write, or commit.
    pub disk_errors: u64,
    /// Disk entries refused because their contention-freedom certificate
    /// was missing, unreadable, or failed validation.
    pub cert_errors: u64,
    /// Complete, well-formed entry pairs found by the startup scan.
    pub recovered: u64,
    /// Files quarantined by the startup scan (torn temps, unparseable
    /// files, orphan reports or certificates).
    pub quarantined: u64,
}

/// A bounded two-tier (memory + optional disk) result cache.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<Digest, String>,
    /// Recency order, least-recent first. Bounded by `capacity`, so the
    /// O(len) reshuffle on a hit stays small.
    recency: VecDeque<Digest>,
    dir: Option<PathBuf>,
    io: Arc<dyn DiskIo>,
    stats: CacheStats,
}

impl ResultCache {
    /// An in-memory cache holding at most `capacity` entries (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            recency: VecDeque::new(),
            dir: None,
            io: Arc::new(RealDisk),
            stats: CacheStats::default(),
        }
    }

    /// Adds an on-disk tier under `dir` (created on first insertion).
    /// The store is *not* scanned here — call [`ResultCache::recover`]
    /// to quarantine crash leftovers before serving.
    #[must_use]
    pub fn with_dir(mut self, dir: PathBuf) -> Self {
        self.dir = Some(dir);
        self
    }

    /// Replaces the disk backend (real filesystem by default) — the hook
    /// the chaos harness and hermetic tests use.
    #[must_use]
    pub fn with_io(mut self, io: Arc<dyn DiskIo>) -> Self {
        self.io = io;
        self
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, promoting disk entries into memory and refreshing
    /// LRU recency. Returns the cached report string and the tier that
    /// satisfied the lookup; `None` counts as a miss.
    pub fn lookup(&mut self, key: &Digest) -> Option<(String, CacheTier)> {
        if let Some(report) = self.map.get(key) {
            let report = report.clone();
            self.touch(key);
            self.stats.hits += 1;
            return Some((report, CacheTier::Hit));
        }
        if let Some(report) = self.read_disk(key) {
            self.stats.disk_hits += 1;
            self.insert_memory(*key, report.clone());
            return Some((report, CacheTier::Disk));
        }
        self.stats.misses += 1;
        None
    }

    /// Looks up `key` with certificate validation on the untrusted disk
    /// tier. Memory entries are trusted (they were validated or freshly
    /// synthesized in this process); a disk entry is served only when its
    /// companion certificate exists and `validate` accepts it, otherwise
    /// it counts as a [`CacheStats::cert_errors`] miss and the caller
    /// re-synthesizes.
    pub fn lookup_certified<F: FnOnce(&str) -> bool>(
        &mut self,
        key: &Digest,
        validate: F,
    ) -> Option<(String, CacheTier)> {
        if let Some(report) = self.map.get(key) {
            let report = report.clone();
            self.touch(key);
            self.stats.hits += 1;
            return Some((report, CacheTier::Hit));
        }
        if let Some(report) = self.read_disk(key) {
            let certified = self
                .read_cert(key)
                .map(|cert| validate(&cert))
                .unwrap_or(false);
            if !certified {
                self.stats.cert_errors += 1;
                self.stats.misses += 1;
                return None;
            }
            self.stats.disk_hits += 1;
            self.insert_memory(*key, report.clone());
            return Some((report, CacheTier::Disk));
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a freshly synthesized report under `key`, in memory and —
    /// when a disk tier is configured — on disk. Disk write failures are
    /// counted, not fatal: the request that produced the result already
    /// has its answer.
    pub fn insert(&mut self, key: Digest, report: String) {
        self.insert_with_cert(key, report, None);
    }

    /// Like [`ResultCache::insert`], but also persists the result's
    /// contention-freedom certificate next to the report on the disk
    /// tier, where [`ResultCache::lookup_certified`] will demand it.
    ///
    /// Commit order is certificate first, then report (each via
    /// temp-file + rename): a crash between the two leaves an orphan
    /// certificate the startup scan quarantines — never a cert-less
    /// report that would be refused and re-synthesized forever.
    pub fn insert_with_cert(&mut self, key: Digest, report: String, cert: Option<String>) {
        self.stats.insertions += 1;
        if let Some(dir) = self.dir.clone() {
            if self.io.create_dir_all(&dir).is_err() {
                self.stats.disk_errors += 1;
            } else {
                let cert_committed = match &cert {
                    Some(cert) => self.commit_file(
                        &dir,
                        &format!("{}.cert.json", key.to_hex()),
                        cert.as_bytes(),
                    ),
                    None => true,
                };
                // The report commits only once its certificate is
                // durable (the ordering the regression tests pin).
                if cert_committed {
                    self.commit_file(&dir, &format!("{}.json", key.to_hex()), report.as_bytes());
                }
            }
        }
        self.insert_memory(key, report);
    }

    /// Commits `bytes` to `dir/name` atomically: write `name.tmp`, then
    /// rename over the final path. Returns whether the commit landed;
    /// failures are counted and the temp file removed best-effort (a
    /// crash can still strand it — that is the startup scan's job).
    fn commit_file(&mut self, dir: &Path, name: &str, bytes: &[u8]) -> bool {
        let tmp = dir.join(format!("{name}.tmp"));
        let fin = dir.join(name);
        let committed = self
            .io
            .write(&tmp, bytes)
            .and_then(|()| self.io.rename(&tmp, &fin));
        if committed.is_err() {
            self.stats.disk_errors += 1;
            let _ = self.io.remove_file(&tmp);
            return false;
        }
        true
    }

    /// Scans the disk store once, quarantining crash leftovers: `.tmp`
    /// files, files that are not well-formed JSON, orphan reports (no
    /// certificate) and orphan certificates (no report). Complete
    /// well-formed pairs count as [`CacheStats::recovered`]. A missing
    /// or unlistable store is fine — there is nothing to recover.
    pub fn recover(&mut self) {
        let Some(dir) = self.dir.clone() else {
            return;
        };
        let Ok(files) = self.io.list_dir(&dir) else {
            return;
        };
        let mut reports: Vec<(String, PathBuf)> = Vec::new();
        let mut certs: Vec<(String, PathBuf)> = Vec::new();
        for path in files {
            let Some(name) = path.file_name().and_then(|n| n.to_str()).map(String::from) else {
                self.quarantine(&dir, &path);
                continue;
            };
            if name.ends_with(".tmp") {
                self.quarantine(&dir, &path);
                continue;
            }
            let stem = if let Some(stem) = name.strip_suffix(".cert.json") {
                Some((stem.to_string(), true))
            } else {
                name.strip_suffix(".json").map(|s| (s.to_string(), false))
            };
            let Some((stem, is_cert)) = stem else {
                self.quarantine(&dir, &path);
                continue;
            };
            let well_formed = self
                .io
                .read(&path)
                .ok()
                .and_then(|bytes| String::from_utf8(bytes).ok())
                .is_some_and(|text| json::parse(&text).is_ok());
            if !well_formed {
                self.quarantine(&dir, &path);
                continue;
            }
            if is_cert {
                certs.push((stem, path));
            } else {
                reports.push((stem, path));
            }
        }
        // Orphans on either side are quarantined; complete pairs stand.
        for (stem, path) in &reports {
            if certs.iter().any(|(s, _)| s == stem) {
                self.stats.recovered += 1;
            } else {
                self.quarantine(&dir, path);
            }
        }
        for (stem, path) in &certs {
            if !reports.iter().any(|(s, _)| s == stem) {
                self.quarantine(&dir, path);
            }
        }
    }

    /// Moves `path` into `dir/quarantine/`, preserving the bytes for
    /// post-mortems. Falls back to deletion if the move fails; counts a
    /// disk error if even that fails.
    fn quarantine(&mut self, dir: &Path, path: &Path) {
        let qdir = dir.join("quarantine");
        let name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "unnamed".into());
        let moved = self
            .io
            .create_dir_all(&qdir)
            .and_then(|()| self.io.rename(path, &qdir.join(name)));
        if moved.is_err() && self.io.remove_file(path).is_err() {
            self.stats.disk_errors += 1;
            return;
        }
        self.stats.quarantined += 1;
    }

    /// Moves `key` to the most-recent end of the recency queue.
    fn touch(&mut self, key: &Digest) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            self.recency.remove(pos);
        }
        self.recency.push_back(*key);
    }

    fn insert_memory(&mut self, key: Digest, report: String) {
        if self.map.insert(key, report).is_none() {
            self.recency.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.recency.pop_front() {
                    self.map.remove(&old);
                    self.stats.evictions += 1;
                } else {
                    break;
                }
            }
        } else {
            self.touch(&key);
        }
    }

    /// Reads and validates a disk entry; anything unreadable or not
    /// well-formed JSON is treated as absent.
    fn read_disk(&mut self, key: &Digest) -> Option<String> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("{}.json", key.to_hex()));
        if !self.io.exists(&path) {
            return None;
        }
        let text = self
            .io
            .read(&path)
            .ok()
            .and_then(|bytes| String::from_utf8(bytes).ok());
        match text {
            Some(text) if json::parse(&text).is_ok() => Some(text),
            _ => {
                self.stats.disk_errors += 1;
                None
            }
        }
    }

    /// Reads the companion certificate of a disk entry, if present.
    fn read_cert(&self, key: &Digest) -> Option<String> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("{}.cert.json", key.to_hex()));
        self.io
            .read(&path)
            .ok()
            .and_then(|bytes| String::from_utf8(bytes).ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::{ChaosDisk, FaultPlan, FaultPoint};
    use crate::io::MemDisk;
    use nocsyn_model::sha256;
    use std::fs;
    use std::sync::Mutex;

    fn key(n: u8) -> Digest {
        sha256(&[n])
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut cache = ResultCache::new(4);
        let k = key(1);
        assert_eq!(cache.lookup(&k), None);
        cache.insert(k, "{\"a\":1}".into());
        assert_eq!(
            cache.lookup(&k),
            Some(("{\"a\":1}".to_string(), CacheTier::Hit))
        );
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.insertions), (1, 1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), "{}".into());
        cache.insert(key(2), "{}".into());
        // Touch 1 so 2 becomes the eviction victim.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), "{}".into());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.lookup(&key(2)).is_none());
        assert!(cache.lookup(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut cache = ResultCache::new(0);
        cache.insert(key(1), "{}".into());
        cache.insert(key(2), "{}".into());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reinserting_updates_without_growth() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), "{\"v\":1}".into());
        cache.insert(key(1), "{\"v\":2}".into());
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.lookup(&key(1)),
            Some(("{\"v\":2}".to_string(), CacheTier::Hit))
        );
    }

    #[test]
    fn disk_tier_round_trips_and_rejects_garbage() {
        let dir =
            std::env::temp_dir().join(format!("nocsyn-serve-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let mut warm = ResultCache::new(2).with_dir(dir.clone());
        warm.insert(key(1), "{\"a\":1}".into());

        // A fresh cache (cold memory) finds the entry on disk.
        let mut cold = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(
            cold.lookup(&key(1)),
            Some(("{\"a\":1}".to_string(), CacheTier::Disk))
        );
        // Promoted: second lookup is a memory hit.
        assert_eq!(
            cold.lookup(&key(1)),
            Some(("{\"a\":1}".to_string(), CacheTier::Hit))
        );
        assert_eq!(cold.stats().disk_hits, 1);

        // Corrupt file -> treated as absent, counted.
        fs::write(dir.join(format!("{}.json", key(2).to_hex())), "not json")
            .expect("test dir writable");
        let mut c = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(c.lookup(&key(2)), None);
        assert_eq!(c.stats().disk_errors, 1);
        assert_eq!(c.stats().misses, 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn certified_lookup_trusts_memory_but_demands_disk_certificates() {
        let dir = std::env::temp_dir().join(format!(
            "nocsyn-serve-cert-cache-test-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);

        let mut warm = ResultCache::new(2).with_dir(dir.clone());
        warm.insert_with_cert(key(1), "{\"a\":1}".into(), Some("CERT".into()));
        // Memory tier: served without consulting the validator.
        assert_eq!(
            warm.lookup_certified(&key(1), |_| false),
            Some(("{\"a\":1}".to_string(), CacheTier::Hit))
        );

        // Cold cache: disk entry served only when the validator accepts.
        let mut cold = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(
            cold.lookup_certified(&key(1), |cert| cert == "CERT"),
            Some(("{\"a\":1}".to_string(), CacheTier::Disk))
        );
        assert_eq!(cold.stats().cert_errors, 0);

        // Validator rejection: refused, counted, treated as a miss.
        let mut reject = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(reject.lookup_certified(&key(1), |_| false), None);
        let s = reject.stats();
        assert_eq!((s.cert_errors, s.misses, s.disk_hits), (1, 1, 0));

        // Missing certificate file: same refusal.
        fs::write(dir.join(format!("{}.json", key(2).to_hex())), "{\"b\":2}")
            .expect("test dir writable");
        let mut missing = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(missing.lookup_certified(&key(2), |_| true), None);
        assert_eq!(missing.stats().cert_errors, 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tier_labels_are_stable() {
        assert_eq!(CacheTier::Miss.label(), "miss");
        assert_eq!(CacheTier::Hit.label(), "hit");
        assert_eq!(CacheTier::Disk.label(), "disk");
    }

    fn mem_cache(store: &Arc<MemDisk>, dir: &Path) -> ResultCache {
        ResultCache::new(4)
            .with_dir(dir.to_path_buf())
            .with_io(store.clone() as Arc<dyn DiskIo>)
    }

    #[test]
    fn commits_are_atomic_and_leave_no_temp_files() {
        let store = Arc::new(MemDisk::new());
        let dir = PathBuf::from("store");
        let mut cache = mem_cache(&store, &dir);
        cache.insert_with_cert(key(1), "{\"a\":1}".into(), Some("{\"cert\":1}".into()));
        assert_eq!(
            store.snapshot(&dir.join(format!("{}.json", key(1).to_hex()))),
            Some(b"{\"a\":1}".to_vec())
        );
        assert_eq!(
            store.snapshot(&dir.join(format!("{}.cert.json", key(1).to_hex()))),
            Some(b"{\"cert\":1}".to_vec())
        );
        assert_eq!(store.file_count(), 2, "no temp files left behind");
        assert_eq!(cache.stats().disk_errors, 0);
    }

    /// Regression for the pre-atomic-commit ordering bug: a failed or
    /// torn *certificate* commit must suppress the report write, so a
    /// crash between the two can never leave a cert-less report that is
    /// refused and re-synthesized forever.
    #[test]
    fn report_is_not_committed_when_the_certificate_commit_fails() {
        let store = Arc::new(MemDisk::new());
        let dir = PathBuf::from("store");
        // Op 0 is the certificate's temp-file write: fail it.
        let plan = Arc::new(Mutex::new(
            FaultPlan::quiet(0).with_fail_at(FaultPoint::DiskWrite, 0),
        ));
        let disk: Arc<dyn DiskIo> = Arc::new(ChaosDisk::new(store.clone(), plan));
        let mut cache = ResultCache::new(4).with_dir(dir.clone()).with_io(disk);
        cache.insert_with_cert(key(1), "{\"a\":1}".into(), Some("{\"cert\":1}".into()));
        assert_eq!(
            store.file_count(),
            0,
            "no report may land without its certificate"
        );
        assert_eq!(cache.stats().disk_errors, 1);
        // The in-memory tier still serves the result to this process.
        assert!(cache.lookup(&key(1)).is_some());
    }

    /// A crash (torn write) during the report commit leaves an orphan
    /// certificate and a torn temp file; the startup scan quarantines
    /// both and the entry is simply absent — never served torn.
    #[test]
    fn recover_quarantines_torn_commits_and_orphans() {
        let store = Arc::new(MemDisk::new());
        let dir = PathBuf::from("store");
        // Ops 0 (cert tmp) succeeds; op 1 (report tmp) tears mid-write.
        let plan = Arc::new(Mutex::new(FaultPlan::quiet(0).with_torn_write_at(1, 3)));
        let disk: Arc<dyn DiskIo> = Arc::new(ChaosDisk::new(store.clone(), plan.clone()));
        let mut dying = ResultCache::new(4).with_dir(dir.clone()).with_io(disk);
        dying.insert_with_cert(key(1), "{\"a\":1}".into(), Some("{\"cert\":1}".into()));
        // The crash stranded the committed cert and a torn report temp.
        assert!(store.exists(&dir.join(format!("{}.cert.json", key(1).to_hex()))));
        assert!(store.exists(&dir.join(format!("{}.json.tmp", key(1).to_hex()))));
        drop(dying);
        plan.lock().expect("lock").revive();

        // "Restart": a fresh cache over the surviving store.
        let mut reborn = mem_cache(&store, &dir);
        reborn.recover();
        let s = reborn.stats();
        assert_eq!((s.recovered, s.quarantined), (0, 2), "{s:?}");
        assert_eq!(reborn.lookup(&key(1)), None, "torn entry is not served");
        // Quarantined bytes are preserved for post-mortems.
        assert!(store.exists(
            &dir.join("quarantine")
                .join(format!("{}.json.tmp", key(1).to_hex()))
        ));
    }

    #[test]
    fn recover_counts_complete_pairs_and_quarantines_junk() {
        let store = Arc::new(MemDisk::new());
        let dir = PathBuf::from("store");
        let mut warm = mem_cache(&store, &dir);
        warm.insert_with_cert(key(1), "{\"a\":1}".into(), Some("{\"cert\":1}".into()));
        warm.insert_with_cert(key(2), "{\"b\":2}".into(), Some("{\"cert\":2}".into()));
        // Junk: a stray temp, an unparseable report, a non-json name.
        store.install(&dir.join("stray.json.tmp"), b"xx");
        store.install(&dir.join(format!("{}.json", key(3).to_hex())), b"not json");
        store.install(&dir.join("README"), b"hello");
        drop(warm);

        let mut reborn = mem_cache(&store, &dir);
        reborn.recover();
        let s = reborn.stats();
        assert_eq!(s.recovered, 2, "{s:?}");
        assert_eq!(s.quarantined, 3, "{s:?}");
        // The recovered pairs still serve.
        assert_eq!(
            reborn.lookup(&key(1)),
            Some(("{\"a\":1}".to_string(), CacheTier::Disk))
        );
        assert_eq!(
            reborn.lookup(&key(2)),
            Some(("{\"b\":2}".to_string(), CacheTier::Disk))
        );
    }

    #[test]
    fn recover_quarantines_orphan_reports_and_orphan_certs() {
        let store = Arc::new(MemDisk::new());
        let dir = PathBuf::from("store");
        store.install(&dir.join(format!("{}.json", key(1).to_hex())), b"{\"a\":1}");
        store.install(
            &dir.join(format!("{}.cert.json", key(2).to_hex())),
            b"{\"cert\":2}",
        );
        let mut cache = mem_cache(&store, &dir);
        cache.recover();
        let s = cache.stats();
        assert_eq!((s.recovered, s.quarantined), (0, 2), "{s:?}");
        assert_eq!(cache.lookup(&key(1)), None);
    }
}
