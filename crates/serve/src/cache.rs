//! The content-addressed result cache: bounded in-memory LRU over an
//! optional on-disk store.
//!
//! Keys are [`Digest`]s of the canonical job form
//! ([`job_fingerprint`](crate::job_fingerprint)); values are the exact
//! rendered synth-report JSON object strings a fresh run would produce.
//! Because synthesis is deterministic, a cached value is not an
//! approximation of a fresh run — it is byte-for-byte *the* result, which
//! is what makes hits verifiable (and what the cache-correctness property
//! tests check).
//!
//! The disk tier stores one `<hex-digest>.json` file per entry, plus a
//! companion `<hex-digest>.cert.json` contention-freedom certificate.
//! Disk contents are treated as untrusted: a file that fails to re-parse
//! as JSON is ignored (counted in [`CacheStats::disk_errors`]) rather
//! than served, and [`ResultCache::lookup_certified`] additionally
//! refuses to serve a disk entry whose certificate is missing or fails
//! the caller's validator (counted in [`CacheStats::cert_errors`] — the
//! entry is re-synthesized instead). Only *completed* results are ever
//! inserted, so a deadline can never poison the cache with a degraded
//! best-so-far report.

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::path::PathBuf;

use nocsyn_model::json;
use nocsyn_model::Digest;

/// Where a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheTier {
    /// Not cached anywhere; the engine ran.
    Miss,
    /// Served from the in-memory LRU.
    Hit,
    /// Served from the on-disk store (and promoted into memory).
    Disk,
}

impl CacheTier {
    /// Stable lowercase label used in reply envelopes and telemetry.
    pub fn label(&self) -> &'static str {
        match self {
            CacheTier::Miss => "miss",
            CacheTier::Hit => "hit",
            CacheTier::Disk => "disk",
        }
    }
}

/// Monotonic cache counters (all since server start).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that found nothing and fell through to the engine.
    pub misses: u64,
    /// Lookups served from the disk tier.
    pub disk_hits: u64,
    /// Entries inserted after fresh synthesis.
    pub insertions: u64,
    /// In-memory entries evicted by the LRU bound.
    pub evictions: u64,
    /// Disk files that failed to read, parse, or write.
    pub disk_errors: u64,
    /// Disk entries refused because their contention-freedom certificate
    /// was missing, unreadable, or failed validation.
    pub cert_errors: u64,
}

/// A bounded two-tier (memory + optional disk) result cache.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    map: HashMap<Digest, String>,
    /// Recency order, least-recent first. Bounded by `capacity`, so the
    /// O(len) reshuffle on a hit stays small.
    recency: VecDeque<Digest>,
    dir: Option<PathBuf>,
    stats: CacheStats,
}

impl ResultCache {
    /// An in-memory cache holding at most `capacity` entries (clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            recency: VecDeque::new(),
            dir: None,
            stats: CacheStats::default(),
        }
    }

    /// Adds an on-disk tier under `dir` (created on first insertion).
    #[must_use]
    pub fn with_dir(mut self, dir: PathBuf) -> Self {
        self.dir = Some(dir);
        self
    }

    /// Entries currently held in memory.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the in-memory tier is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up `key`, promoting disk entries into memory and refreshing
    /// LRU recency. Returns the cached report string and the tier that
    /// satisfied the lookup; `None` counts as a miss.
    pub fn lookup(&mut self, key: &Digest) -> Option<(String, CacheTier)> {
        if let Some(report) = self.map.get(key) {
            let report = report.clone();
            self.touch(key);
            self.stats.hits += 1;
            return Some((report, CacheTier::Hit));
        }
        if let Some(report) = self.read_disk(key) {
            self.stats.disk_hits += 1;
            self.insert_memory(*key, report.clone());
            return Some((report, CacheTier::Disk));
        }
        self.stats.misses += 1;
        None
    }

    /// Looks up `key` with certificate validation on the untrusted disk
    /// tier. Memory entries are trusted (they were validated or freshly
    /// synthesized in this process); a disk entry is served only when its
    /// companion certificate exists and `validate` accepts it, otherwise
    /// it counts as a [`CacheStats::cert_errors`] miss and the caller
    /// re-synthesizes.
    pub fn lookup_certified<F: FnOnce(&str) -> bool>(
        &mut self,
        key: &Digest,
        validate: F,
    ) -> Option<(String, CacheTier)> {
        if let Some(report) = self.map.get(key) {
            let report = report.clone();
            self.touch(key);
            self.stats.hits += 1;
            return Some((report, CacheTier::Hit));
        }
        if let Some(report) = self.read_disk(key) {
            let certified = self
                .read_cert(key)
                .map(|cert| validate(&cert))
                .unwrap_or(false);
            if !certified {
                self.stats.cert_errors += 1;
                self.stats.misses += 1;
                return None;
            }
            self.stats.disk_hits += 1;
            self.insert_memory(*key, report.clone());
            return Some((report, CacheTier::Disk));
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts a freshly synthesized report under `key`, in memory and —
    /// when a disk tier is configured — on disk. Disk write failures are
    /// counted, not fatal: the request that produced the result already
    /// has its answer.
    pub fn insert(&mut self, key: Digest, report: String) {
        self.insert_with_cert(key, report, None);
    }

    /// Like [`ResultCache::insert`], but also persists the result's
    /// contention-freedom certificate next to the report on the disk
    /// tier, where [`ResultCache::lookup_certified`] will demand it.
    pub fn insert_with_cert(&mut self, key: Digest, report: String, cert: Option<String>) {
        self.stats.insertions += 1;
        if let Some(dir) = &self.dir {
            let path = dir.join(format!("{}.json", key.to_hex()));
            let write = fs::create_dir_all(dir).and_then(|()| fs::write(&path, &report));
            if write.is_err() {
                self.stats.disk_errors += 1;
            }
            if let Some(cert) = &cert {
                let cert_path = dir.join(format!("{}.cert.json", key.to_hex()));
                if fs::write(&cert_path, cert).is_err() {
                    self.stats.disk_errors += 1;
                }
            }
        }
        self.insert_memory(key, report);
    }

    /// Moves `key` to the most-recent end of the recency queue.
    fn touch(&mut self, key: &Digest) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            self.recency.remove(pos);
        }
        self.recency.push_back(*key);
    }

    fn insert_memory(&mut self, key: Digest, report: String) {
        if self.map.insert(key, report).is_none() {
            self.recency.push_back(key);
            while self.map.len() > self.capacity {
                if let Some(old) = self.recency.pop_front() {
                    self.map.remove(&old);
                    self.stats.evictions += 1;
                } else {
                    break;
                }
            }
        } else {
            self.touch(&key);
        }
    }

    /// Reads and validates a disk entry; anything unreadable or not
    /// well-formed JSON is treated as absent.
    fn read_disk(&mut self, key: &Digest) -> Option<String> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("{}.json", key.to_hex()));
        if !path.exists() {
            return None;
        }
        match fs::read_to_string(&path) {
            Ok(text) if json::parse(&text).is_ok() => Some(text),
            _ => {
                self.stats.disk_errors += 1;
                None
            }
        }
    }

    /// Reads the companion certificate of a disk entry, if present.
    fn read_cert(&self, key: &Digest) -> Option<String> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("{}.cert.json", key.to_hex()));
        fs::read_to_string(path).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::sha256;

    fn key(n: u8) -> Digest {
        sha256(&[n])
    }

    #[test]
    fn miss_then_insert_then_hit() {
        let mut cache = ResultCache::new(4);
        let k = key(1);
        assert_eq!(cache.lookup(&k), None);
        cache.insert(k, "{\"a\":1}".into());
        assert_eq!(
            cache.lookup(&k),
            Some(("{\"a\":1}".to_string(), CacheTier::Hit))
        );
        let s = cache.stats();
        assert_eq!((s.misses, s.hits, s.insertions), (1, 1, 1));
        assert_eq!(cache.len(), 1);
        assert!(!cache.is_empty());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), "{}".into());
        cache.insert(key(2), "{}".into());
        // Touch 1 so 2 becomes the eviction victim.
        assert!(cache.lookup(&key(1)).is_some());
        cache.insert(key(3), "{}".into());
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&key(1)).is_some());
        assert!(cache.lookup(&key(2)).is_none());
        assert!(cache.lookup(&key(3)).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut cache = ResultCache::new(0);
        cache.insert(key(1), "{}".into());
        cache.insert(key(2), "{}".into());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn reinserting_updates_without_growth() {
        let mut cache = ResultCache::new(2);
        cache.insert(key(1), "{\"v\":1}".into());
        cache.insert(key(1), "{\"v\":2}".into());
        assert_eq!(cache.len(), 1);
        assert_eq!(
            cache.lookup(&key(1)),
            Some(("{\"v\":2}".to_string(), CacheTier::Hit))
        );
    }

    #[test]
    fn disk_tier_round_trips_and_rejects_garbage() {
        let dir =
            std::env::temp_dir().join(format!("nocsyn-serve-cache-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);

        let mut warm = ResultCache::new(2).with_dir(dir.clone());
        warm.insert(key(1), "{\"a\":1}".into());

        // A fresh cache (cold memory) finds the entry on disk.
        let mut cold = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(
            cold.lookup(&key(1)),
            Some(("{\"a\":1}".to_string(), CacheTier::Disk))
        );
        // Promoted: second lookup is a memory hit.
        assert_eq!(
            cold.lookup(&key(1)),
            Some(("{\"a\":1}".to_string(), CacheTier::Hit))
        );
        assert_eq!(cold.stats().disk_hits, 1);

        // Corrupt file -> treated as absent, counted.
        fs::write(dir.join(format!("{}.json", key(2).to_hex())), "not json")
            .expect("test dir writable");
        let mut c = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(c.lookup(&key(2)), None);
        assert_eq!(c.stats().disk_errors, 1);
        assert_eq!(c.stats().misses, 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn certified_lookup_trusts_memory_but_demands_disk_certificates() {
        let dir = std::env::temp_dir().join(format!(
            "nocsyn-serve-cert-cache-test-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);

        let mut warm = ResultCache::new(2).with_dir(dir.clone());
        warm.insert_with_cert(key(1), "{\"a\":1}".into(), Some("CERT".into()));
        // Memory tier: served without consulting the validator.
        assert_eq!(
            warm.lookup_certified(&key(1), |_| false),
            Some(("{\"a\":1}".to_string(), CacheTier::Hit))
        );

        // Cold cache: disk entry served only when the validator accepts.
        let mut cold = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(
            cold.lookup_certified(&key(1), |cert| cert == "CERT"),
            Some(("{\"a\":1}".to_string(), CacheTier::Disk))
        );
        assert_eq!(cold.stats().cert_errors, 0);

        // Validator rejection: refused, counted, treated as a miss.
        let mut reject = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(reject.lookup_certified(&key(1), |_| false), None);
        let s = reject.stats();
        assert_eq!((s.cert_errors, s.misses, s.disk_hits), (1, 1, 0));

        // Missing certificate file: same refusal.
        fs::write(dir.join(format!("{}.json", key(2).to_hex())), "{\"b\":2}")
            .expect("test dir writable");
        let mut missing = ResultCache::new(2).with_dir(dir.clone());
        assert_eq!(missing.lookup_certified(&key(2), |_| true), None);
        assert_eq!(missing.stats().cert_errors, 1);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tier_labels_are_stable() {
        assert_eq!(CacheTier::Miss.label(), "miss");
        assert_eq!(CacheTier::Hit.label(), "hit");
        assert_eq!(CacheTier::Disk.label(), "disk");
    }
}
