//! The canonical synth-report JSON object — the one rendering shared by
//! `nocsyn synth --json`, the serve daemon's replies, and the cache.
//!
//! Byte-identity between a cache hit, the miss that populated it, and a
//! direct CLI run is a *construction* property, not a test-only
//! coincidence: all three paths call [`synth_json_object`] and store or
//! splice the returned string verbatim.

use nocsyn_engine::{JobOutcome, JobStatus};
use nocsyn_model::json::JsonValue;
use nocsyn_synth::AppPattern;
use nocsyn_topo::verify_contention_free;

/// Renders the deterministic synth-report object for a completed (or
/// deadline-degraded) outcome, exactly as `nocsyn synth --json` prints
/// it (sans trailing newline).
///
/// The `contention_free` field re-runs the Theorem-1 check against the
/// pattern rather than trusting the report's own flag — the same
/// belt-and-braces the CLI has always done.
///
/// # Panics
///
/// Panics if the outcome carries no result; callers dispatch on
/// `outcome.result` first (a failed job has nothing to render).
pub fn synth_json_object(pattern: &AppPattern, outcome: &JobOutcome, seed: u64) -> String {
    let result = outcome
        .result
        .as_ref()
        .expect("synth_json_object requires an outcome with a result");
    let check = verify_contention_free(pattern.contention(), &result.routes);
    let status = if outcome.status == JobStatus::DeadlineExceeded {
        "deadline-exceeded"
    } else {
        "ok"
    };
    let r = &result.report;
    let obj = JsonValue::object([
        ("command", JsonValue::from("synth")),
        ("status", JsonValue::from(status)),
        ("seed", JsonValue::from(seed)),
        ("switches", JsonValue::from(r.n_switches)),
        ("links", JsonValue::from(r.n_links)),
        ("max_degree", JsonValue::from(r.max_degree)),
        ("constraints_met", JsonValue::from(r.constraints_met)),
        (
            "contention_free",
            JsonValue::from(check.is_contention_free()),
        ),
        ("connectivity_links", JsonValue::from(r.connectivity_links)),
        ("rounds", JsonValue::from(r.rounds)),
        ("splits", JsonValue::from(r.splits)),
        ("moves_tried", JsonValue::from(r.moves_tried)),
        ("moves_accepted", JsonValue::from(r.moves_accepted)),
        ("reroutes_tried", JsonValue::from(r.reroutes_tried)),
        ("reroutes_accepted", JsonValue::from(r.reroutes_accepted)),
        ("reroutes_neutral", JsonValue::from(r.reroutes_neutral)),
    ]);
    obj.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_engine::Engine;
    use nocsyn_model::parse_schedule;
    use nocsyn_synth::SynthesisConfig;

    #[test]
    fn object_is_deterministic_and_well_formed() {
        let schedule =
            parse_schedule("procs 4\nphase\n  0 -> 1\n  2 -> 3\nphase\n  0 -> 2\n").expect("valid");
        let pattern = AppPattern::from_schedule(&schedule);
        let config = SynthesisConfig::new().with_seed(5).with_restarts(2);
        let engine = Engine::new().with_workers(1);
        let a = engine.synthesize(&pattern, &config, None);
        let b = engine.synthesize(&pattern, &config, None);
        let ja = synth_json_object(&pattern, &a, config.seed());
        let jb = synth_json_object(&pattern, &b, config.seed());
        assert_eq!(ja, jb, "same inputs must render byte-identically");
        assert!(ja.starts_with(r#"{"command":"synth","status":"ok","seed":5,"#));
        let parsed = nocsyn_model::json::parse(&ja).expect("well-formed");
        assert_eq!(
            parsed.get("contention_free").and_then(|v| v.as_bool()),
            Some(true)
        );
    }
}
