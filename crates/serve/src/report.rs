//! The canonical synth-report JSON object — the one rendering shared by
//! `nocsyn synth --json`, the serve daemon's replies, and the cache.
//!
//! Byte-identity between a cache hit, the miss that populated it, and a
//! direct CLI run is a *construction* property, not a test-only
//! coincidence: all three paths call [`synth_json_object`] and store or
//! splice the returned string verbatim. The Pareto-front rendering
//! ([`pareto_point_object`], [`with_pareto_array`]) goes through the same
//! splice-don't-rerender discipline.

use nocsyn_engine::{JobOutcome, JobStatus};
use nocsyn_floorplan::place;
use nocsyn_model::json::JsonValue;
use nocsyn_synth::{ParetoPoint, SynthesisRequest};
use nocsyn_topo::verify_contention_free;

/// Renders the deterministic synth-report object for a completed (or
/// deadline-degraded) outcome, exactly as `nocsyn synth --json` prints
/// it (sans trailing newline). A flat outcome renders byte-identically
/// to the historical object; a decomposed outcome appends the
/// decomposition counters after the search counters.
///
/// The `contention_free` field re-runs the Theorem-1 check against the
/// pattern rather than trusting the report's own flag — the same
/// belt-and-braces the CLI has always done. For a decomposed outcome the
/// check runs on the *stitched* global network, so the flag certifies
/// the whole, not the parts.
///
/// # Panics
///
/// Panics if the outcome carries no result; callers dispatch on
/// `outcome.result` first (a failed job has nothing to render).
pub fn synth_json_object(request: &SynthesisRequest, outcome: &JobOutcome) -> String {
    let result = outcome
        .result
        .as_ref()
        .expect("synth_json_object requires an outcome with a result");
    let check = verify_contention_free(request.pattern().contention(), &result.routes);
    let status = if outcome.status == JobStatus::DeadlineExceeded {
        "deadline-exceeded"
    } else {
        "ok"
    };
    let r = &result.report;
    let mut fields = vec![
        ("command", JsonValue::from("synth")),
        ("status", JsonValue::from(status)),
        ("seed", JsonValue::from(request.seed())),
        ("switches", JsonValue::from(r.n_switches)),
        ("links", JsonValue::from(r.n_links)),
        ("max_degree", JsonValue::from(r.max_degree)),
        ("constraints_met", JsonValue::from(r.constraints_met)),
        (
            "contention_free",
            JsonValue::from(check.is_contention_free()),
        ),
        ("connectivity_links", JsonValue::from(r.connectivity_links)),
        ("rounds", JsonValue::from(r.rounds)),
        ("splits", JsonValue::from(r.splits)),
        ("moves_tried", JsonValue::from(r.moves_tried)),
        ("moves_accepted", JsonValue::from(r.moves_accepted)),
        ("reroutes_tried", JsonValue::from(r.reroutes_tried)),
        ("reroutes_accepted", JsonValue::from(r.reroutes_accepted)),
        ("reroutes_neutral", JsonValue::from(r.reroutes_neutral)),
    ];
    if let Some(d) = &outcome.decomposition {
        fields.push(("mode", JsonValue::from("decomposed")));
        fields.push(("clusters", JsonValue::from(d.clusters)));
        fields.push(("cut_flows", JsonValue::from(d.cut_flows)));
        fields.push(("stitch_links", JsonValue::from(d.stitch_links)));
        fields.push(("largest_cluster", JsonValue::from(d.largest_cluster)));
    }
    JsonValue::object(fields).to_string()
}

/// Renders one Pareto point as a JSON object: the objective coordinates,
/// the floorplan area model evaluated on the point's network (seeded
/// placement, so the bytes are seed-stable), and the point's full report
/// object spliced in verbatim.
pub fn pareto_point_object(point: &ParetoPoint, seed: u64, report: &str) -> String {
    let plan = place(&point.result.network, seed);
    let area = plan.area(&point.result.network);
    let obj = JsonValue::object([
        ("max_degree", JsonValue::from(point.max_degree)),
        ("switches", JsonValue::from(point.n_switches)),
        ("links", JsonValue::from(point.n_links)),
        ("feasible", JsonValue::from(point.feasible)),
        ("switch_area", JsonValue::from(area.switch_area)),
        ("link_area", JsonValue::from(area.link_area)),
        ("total_area", JsonValue::from(area.total())),
    ]);
    let mut s = obj.to_string();
    s.pop();
    s.push_str(",\"report\":");
    s.push_str(report);
    s.push('}');
    s
}

/// Splices a rendered `pareto` array into a base report object, keeping
/// every already-rendered byte intact: the base loses its closing brace,
/// gains `,"pareto":[...]}`. Every consumer of the combined object goes
/// through this one splice, so CLI and serve bytes agree.
pub fn with_pareto_array(base: &str, points: &[String]) -> String {
    let trunk = base
        .strip_suffix('}')
        .expect("base report is a JSON object");
    let mut s =
        String::with_capacity(trunk.len() + 16 + points.iter().map(String::len).sum::<usize>());
    s.push_str(trunk);
    s.push_str(",\"pareto\":[");
    s.push_str(&points.join(","));
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_engine::{Engine, Job};
    use nocsyn_model::parse_schedule;
    use nocsyn_synth::{AppPattern, SynthesisConfig, SynthesisMode};

    fn pattern() -> AppPattern {
        let schedule =
            parse_schedule("procs 4\nphase\n  0 -> 1\n  2 -> 3\nphase\n  0 -> 2\n").expect("valid");
        AppPattern::from_schedule(&schedule)
    }

    fn request(mode: SynthesisMode) -> SynthesisRequest {
        SynthesisRequest::builder(pattern())
            .config(SynthesisConfig::new().with_seed(5).with_restarts(2))
            .mode(mode)
            .build()
            .expect("request builds")
    }

    #[test]
    fn object_is_deterministic_and_well_formed() {
        let request = request(SynthesisMode::Flat);
        let engine = Engine::new().with_workers(1);
        let a = engine
            .run(vec![Job::new("synth", request.clone())])
            .pop()
            .expect("one outcome");
        let b = engine
            .run(vec![Job::new("synth", request.clone())])
            .pop()
            .expect("one outcome");
        let ja = synth_json_object(&request, &a);
        let jb = synth_json_object(&request, &b);
        assert_eq!(ja, jb, "same inputs must render byte-identically");
        assert!(ja.starts_with(r#"{"command":"synth","status":"ok","seed":5,"#));
        assert!(!ja.contains("\"mode\""), "flat bytes carry no mode field");
        let parsed = nocsyn_model::json::parse(&ja).expect("well-formed");
        assert_eq!(
            parsed.get("contention_free").and_then(|v| v.as_bool()),
            Some(true)
        );
    }

    #[test]
    fn decomposed_outcome_appends_decomposition_counters() {
        let request = request(SynthesisMode::Decomposed { clusters: Some(2) });
        let outcome = Engine::new()
            .with_workers(2)
            .run(vec![Job::new("synth", request.clone())])
            .pop()
            .expect("one outcome");
        let json = synth_json_object(&request, &outcome);
        let parsed = nocsyn_model::json::parse(&json).expect("well-formed");
        assert_eq!(
            parsed.get("mode").and_then(|v| v.as_str()),
            Some("decomposed")
        );
        assert_eq!(parsed.get("clusters").and_then(|v| v.as_u64()), Some(2));
        assert!(parsed.get("cut_flows").is_some());
        assert!(parsed.get("stitch_links").is_some());
        assert_eq!(
            parsed.get("contention_free").and_then(|v| v.as_bool()),
            Some(true),
            "the stitched whole passes the global Theorem-1 check"
        );
    }

    #[test]
    fn pareto_splice_preserves_base_bytes() {
        let request = request(SynthesisMode::Flat);
        let outcome = Engine::new()
            .with_workers(1)
            .run(vec![Job::new("synth", request.clone())])
            .pop()
            .expect("one outcome");
        let base = synth_json_object(&request, &outcome);
        let result = outcome.result.expect("completed");
        let point = ParetoPoint {
            max_degree: 5,
            n_switches: result.report.n_switches,
            n_links: result.report.n_links,
            feasible: result.report.constraints_met,
            result,
        };
        let rendered = pareto_point_object(&point, request.seed(), &base);
        let combined = with_pareto_array(&base, std::slice::from_ref(&rendered));
        assert!(combined.starts_with(base.strip_suffix('}').expect("object")));
        let parsed = nocsyn_model::json::parse(&combined).expect("well-formed");
        let front = parsed.get("pareto").expect("pareto array present");
        assert_eq!(
            nocsyn_model::json::parse(&rendered).expect("point is JSON"),
            front.as_array().expect("array")[0],
        );
        // Rendering is a pure function: same point, same bytes.
        assert_eq!(rendered, pareto_point_object(&point, request.seed(), &base));
    }
}
