//! Synthesis-as-a-service: the `nocsyn serve` daemon.
//!
//! The whole synthesis flow is a pure function of
//! `(pattern, config, seed)` — PRs 5/6 pinned that operationally with
//! byte-identical golden trajectories. This crate exploits the purity at
//! service scale: a long-running daemon accepts synthesis jobs over a
//! newline-delimited JSON line protocol, runs them through the existing
//! [`nocsyn_engine`] batch machinery (deadlines, panic isolation,
//! telemetry all reused), and fronts the engine with a
//! **content-addressed result cache** keyed on the canonical fingerprint
//! of the job ([`job_fingerprint`]): identical patterns from any number
//! of clients cost one anneal, and every cache hit is byte-verifiable
//! against a fresh run because the cached value *is* the deterministic
//! JSON report a fresh run would produce.
//!
//! # Protocol
//!
//! One JSON object per line in, one JSON object per line out
//! (DESIGN.md §13 has the grammar):
//!
//! ```text
//! -> {"op":"synth","pattern":"procs 4\nphase\n  0 -> 1\n","seed":1}
//! <- {"reply":"synth","status":"ok","fingerprint":"…","cache":"miss","report":{…}}
//! -> {"op":"stats"}
//! <- {"reply":"stats","requests":1,"hits":0,"misses":1,…}
//! ```
//!
//! Ingress is admission-controlled: request lines are length-capped,
//! pattern text goes through [`nocsyn_model::ParseOptions`] resource
//! limits, connections have a request cap, and a queue-depth bound
//! produces a structured `queue-full` backpressure reply instead of
//! unbounded buffering. Every failure mode answers with a well-formed
//! JSON error carrying a stable kebab-case fingerprint — the same
//! contract as the text ingestion layer, and the oracle the
//! `serve_request` fuzz target checks.
//!
//! # Example (in-process, no socket)
//!
//! ```
//! use nocsyn_serve::{ReplyKind, Server, ServeOptions};
//!
//! let server = Server::new(ServeOptions::default());
//! let req = r#"{"op":"synth","pattern":"procs 4\nphase\n  0 -> 1\n  2 -> 3\n","restarts":1}"#;
//! let miss = server.handle_line(req);
//! let hit = server.handle_line(req);
//! assert!(matches!(miss.kind, ReplyKind::Report(nocsyn_serve::CacheTier::Miss)));
//! assert!(matches!(hit.kind, ReplyKind::Report(nocsyn_serve::CacheTier::Hit)));
//! // Byte-identical up to the cache marker.
//! assert_eq!(
//!     miss.line.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
//!     hit.line
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod chaos;
mod client;
mod io;
mod proto;
mod report;
mod server;

pub use cache::{CacheStats, CacheTier, ResultCache};
pub use chaos::{
    run_chaos, ChaosConfig, ChaosDisk, ChaosReader, ChaosSummary, FaultPlan, FaultPoint,
    InjectedFault,
};
pub use client::{Client, ClientError, RetryPolicy};
pub use io::{DiskIo, MemDisk, RealDisk};
pub use proto::{parse_request, Request, RequestError, SynthRequest};
pub use report::{pareto_point_object, synth_json_object, with_pareto_array};
pub use server::{
    job_fingerprint, parse_pattern, ParsedPattern, PatternKind, Reply, ReplyKind, ServeOptions,
    Server,
};
