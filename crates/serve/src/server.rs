//! The daemon core: request handling, admission control, cache plumbing,
//! and the stream / listener loops.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nocsyn_certify::{check_certificate, CheckOptions};
use nocsyn_engine::{Engine, EngineEvent, EventSink, Job, JobStatus, NullSink};
use nocsyn_model::json::JsonValue;
use nocsyn_model::{
    canonical_schedule, canonical_trace, Digest, ParseLimits, ParseOptions, ParseScheduleError,
};
use nocsyn_synth::{AppPattern, SynthesisConfig, SynthesisMode, SynthesisRequest};

use crate::cache::{CacheStats, CacheTier, ResultCache};
use crate::chaos::{FaultPlan, FaultPoint, InjectedFault};
use crate::io::DiskIo;
use crate::proto::{parse_request, Request, SynthRequest};
use crate::report::synth_json_object;

/// Protocol version advertised in `status` replies.
pub const PROTOCOL_VERSION: u64 = 1;

/// Daemon tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Resource limits applied to embedded pattern text (the PR 4
    /// admission-control boundary, reused verbatim).
    pub limits: ParseLimits,
    /// In-memory cache entries kept (LRU beyond this).
    pub cache_capacity: usize,
    /// Optional on-disk cache directory.
    pub cache_dir: Option<PathBuf>,
    /// Requests one connection may issue before the server replies
    /// `too-many-requests` and closes it.
    pub max_requests_per_conn: usize,
    /// Synthesis jobs allowed in flight; beyond this the server answers
    /// `queue-full` instead of queueing unboundedly.
    pub max_queue_depth: usize,
    /// Hard cap on per-request `restarts` (admission control for the
    /// most expensive knob a client holds). `None` leaves requests
    /// unclamped.
    pub max_restarts: Option<u64>,
    /// Engine worker threads (affects wall time only, never results).
    pub workers: usize,
    /// Read/write deadline applied to accepted sockets (slowloris
    /// defense): a peer that stalls longer than this gets its connection
    /// dropped instead of wedging the accept loop. `None` blocks forever.
    pub io_timeout: Option<Duration>,
    /// Disk backend for the cache's on-disk tier. `None` uses the real
    /// filesystem; tests and the chaos harness install
    /// [`MemDisk`](crate::io::MemDisk) / [`ChaosDisk`](crate::ChaosDisk).
    pub disk_io: Option<Arc<dyn DiskIo>>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            limits: ParseLimits::default(),
            cache_capacity: 256,
            cache_dir: None,
            max_requests_per_conn: 1024,
            max_queue_depth: 64,
            max_restarts: None,
            workers: 1,
            io_timeout: None,
            disk_io: None,
        }
    }
}

/// How a reply line classifies, for callers that dispatch on outcome
/// (the CLI, tests, and the fuzz oracle) without re-parsing the JSON.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyKind {
    /// A synth reply carrying a report; says which cache tier answered.
    Report(CacheTier),
    /// A `stats` reply.
    Stats,
    /// A `status` reply.
    Status,
    /// An error reply; carries the stable error fingerprint.
    Error(&'static str),
}

/// One reply: the wire line (no trailing newline) plus its
/// classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// The JSON reply line exactly as written to the peer.
    pub line: String,
    /// Outcome classification.
    pub kind: ReplyKind,
}

impl Reply {
    fn error(fingerprint: &'static str, detail: &str) -> Reply {
        let obj = JsonValue::object([
            ("reply", JsonValue::from("error")),
            ("error", JsonValue::from(fingerprint)),
            ("detail", JsonValue::from(detail)),
        ]);
        Reply {
            line: obj.to_string(),
            kind: ReplyKind::Error(fingerprint),
        }
    }
}

/// Which parser accepted the pattern text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternKind {
    /// Phase-schedule text.
    Schedule,
    /// Timed-trace text.
    Trace,
}

impl PatternKind {
    /// Stable lowercase label, used inside the job fingerprint.
    pub fn label(&self) -> &'static str {
        match self {
            PatternKind::Schedule => "schedule",
            PatternKind::Trace => "trace",
        }
    }
}

/// A pattern accepted at the ingress boundary: the characterized
/// [`AppPattern`] plus the canonical text that identifies it.
#[derive(Debug, Clone)]
pub struct ParsedPattern {
    /// The synthesis input.
    pub pattern: AppPattern,
    /// Which format the text parsed as.
    pub kind: PatternKind,
    /// Canonical rendering of the parsed value — the `pattern` half of
    /// the cache key. Any two texts that parse to the same value have
    /// the same canonical rendering.
    pub canonical: String,
}

/// Parses pattern text under `opts`, autodetecting trace vs schedule by
/// the same rule as the CLI (any non-comment line starting with `msg `
/// makes it a trace).
///
/// # Errors
///
/// The bounded parser's [`ParseScheduleError`] on any syntactic,
/// semantic, or resource-limit problem. Never panics.
pub fn parse_pattern(text: &str, opts: &ParseOptions) -> Result<ParsedPattern, ParseScheduleError> {
    let is_trace = text
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .any(|l| l.starts_with("msg "));
    if is_trace {
        let trace = opts.parse_trace(text)?;
        Ok(ParsedPattern {
            pattern: AppPattern::from_trace(&trace),
            kind: PatternKind::Trace,
            canonical: canonical_trace(&trace),
        })
    } else {
        let schedule = opts.parse_schedule(text)?;
        Ok(ParsedPattern {
            pattern: AppPattern::from_schedule(&schedule),
            kind: PatternKind::Schedule,
            canonical: canonical_schedule(&schedule),
        })
    }
}

/// The content fingerprint of one synthesis job: the order-invariant
/// digest of the request's canonical form (config plus synthesis mode,
/// so a flat and a decomposed answer can never collide under one key)
/// plus the pattern's kind and canonical text.
///
/// The request's canonical form deliberately excludes the deadline — a
/// deadline bounds how long the search may run, never what a *completed*
/// search returns, and only completed results are cached under this key.
pub fn job_fingerprint(kind: PatternKind, canonical: &str, request: &SynthesisRequest) -> Digest {
    request
        .canonical_form()
        .field("pattern_kind", kind.label())
        .field("pattern", canonical)
        .digest()
}

/// The daemon: an engine, a cache, a telemetry sink, and the admission
/// counters. One instance serves any number of connections; request
/// handling is `&self` (the cache sits behind a mutex) so a server can
/// be shared across threads.
pub struct Server {
    opts: ServeOptions,
    engine: Engine,
    cache: Mutex<ResultCache>,
    sink: Arc<dyn EventSink>,
    sink_degraded: AtomicBool,
    in_flight: AtomicUsize,
    requests: AtomicU64,
    conn_errors: AtomicU64,
    shutdown: AtomicBool,
    fault_plan: Option<Arc<Mutex<FaultPlan>>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("opts", &self.opts)
            .finish_non_exhaustive()
    }
}

impl Server {
    /// Creates a server with telemetry discarded.
    pub fn new(opts: ServeOptions) -> Self {
        let mut cache = ResultCache::new(opts.cache_capacity);
        if let Some(io) = &opts.disk_io {
            cache = cache.with_io(io.clone());
        }
        if let Some(dir) = &opts.cache_dir {
            cache = cache.with_dir(dir.clone());
            // Startup scan: quarantine whatever a previous crash left
            // behind before the first lookup can trip over it.
            cache.recover();
        }
        let engine = Engine::new().with_workers(opts.workers);
        Server {
            opts,
            engine,
            cache: Mutex::new(cache),
            sink: Arc::new(NullSink),
            sink_degraded: AtomicBool::new(false),
            in_flight: AtomicUsize::new(0),
            requests: AtomicU64::new(0),
            conn_errors: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            fault_plan: None,
        }
    }

    /// Installs a chaos fault plan; the engine-panic fault point consults
    /// it on every cache-miss synthesis.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<Mutex<FaultPlan>>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Asks the server to stop: the connection being served drains
    /// normally (in-flight jobs complete, their replies flush), further
    /// synth requests are refused with `shutting-down`, and the accept
    /// loop exits after the current connection instead of blocking on
    /// another accept.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Whether [`Server::begin_shutdown`] has been called.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Snapshot of the cache counters (the chaos harness accumulates
    /// these across simulated process restarts).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
            .lock()
            .expect("cache lock never poisoned")
            .stats()
    }

    /// The stats reply line, for flushing final counters at shutdown
    /// without synthesizing a request.
    pub fn stats_line(&self) -> String {
        self.stats_reply().line
    }

    /// Installs a telemetry sink; `serve_request` events flow through it
    /// alongside the engine's own job events.
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.engine = self.engine.clone().with_sink(sink.clone());
        self.sink = sink;
        self
    }

    /// The configured options.
    pub fn options(&self) -> &ServeOptions {
        &self.opts
    }

    /// Handles one request line and produces one reply. Total: every
    /// input, hostile or not, yields a well-formed JSON reply line.
    pub fn handle_line(&self, line: &str) -> Reply {
        self.requests.fetch_add(1, Ordering::Relaxed);
        if line.len() > self.request_cap() {
            let reply = Reply::error("request-too-long", "request line exceeds the input budget");
            self.emit("unknown", &reply);
            return reply;
        }
        match parse_request(line) {
            Err(e) => {
                let reply = Reply::error(e.fingerprint, &e.detail);
                self.emit("unknown", &reply);
                reply
            }
            Ok(Request::Stats) => {
                let reply = self.stats_reply();
                self.emit("stats", &reply);
                reply
            }
            Ok(Request::Status) => {
                let reply = self.status_reply();
                self.emit("status", &reply);
                reply
            }
            Ok(Request::Synth(req)) => {
                let reply = self.synth(&req);
                self.emit("synth", &reply);
                reply
            }
        }
    }

    /// Longest accepted request line: the pattern input budget plus
    /// envelope headroom (JSON quoting roughly doubles newline-heavy
    /// text in the worst case).
    fn request_cap(&self) -> usize {
        self.opts
            .limits
            .max_input_bytes
            .saturating_mul(2)
            .saturating_add(1024)
    }

    fn synth(&self, req: &SynthRequest) -> Reply {
        if self.shutdown.load(Ordering::Relaxed) {
            return Reply::error(
                "shutting-down",
                "server is draining; no new synthesis accepted",
            );
        }
        if self.in_flight.load(Ordering::Relaxed) >= self.opts.max_queue_depth {
            return Reply::error("queue-full", "synthesis queue is at capacity; retry later");
        }
        let parse_opts = ParseOptions::new().with_limits(self.opts.limits.clone());
        let parsed = match parse_pattern(&req.pattern, &parse_opts) {
            Ok(p) => p,
            Err(e) => {
                return Reply::error(
                    "pattern-rejected",
                    &format!("{}: {e}", e.kind.fingerprint()),
                );
            }
        };

        let mut config = SynthesisConfig::new();
        if let Some(s) = req.seed {
            config = config.with_seed(s);
        }
        if let Some(d) = req.max_degree {
            config = config.with_max_degree(usize::try_from(d).unwrap_or(usize::MAX));
        }
        let mode = match req.mode.as_deref() {
            None | Some("flat") => SynthesisMode::Flat,
            Some("decomposed") => SynthesisMode::Decomposed {
                clusters: req
                    .clusters
                    .map(|c| usize::try_from(c).unwrap_or(usize::MAX)),
            },
            // The protocol layer admits only the two modes above.
            Some(other) => {
                return Reply::error("bad-field", &format!("unknown mode {other:?}"));
            }
        };
        let mut builder = SynthesisRequest::builder(parsed.pattern.clone())
            .config(config)
            .mode(mode);
        if let Some(r) = req.restarts {
            builder = builder.restarts(usize::try_from(r).unwrap_or(usize::MAX));
        }
        if let Some(ms) = req.deadline_ms {
            builder = builder.deadline_ms(ms);
        }
        // Wire-level zero restarts / zero clusters surface as typed
        // rejections with the builder's stable fingerprints, not silent
        // clamps.
        let mut request = match builder.build() {
            Ok(r) => r,
            Err(e) => return Reply::error(e.fingerprint(), &e.to_string()),
        };
        // The restart cap is admission control on the *effective* job, so
        // it also bounds the default-portfolio case, not just explicit
        // oversized requests.
        if let Some(cap) = self.opts.max_restarts {
            let cap = usize::try_from(cap).unwrap_or(usize::MAX).max(1);
            if request.config().restarts() > cap {
                let clamped = request.config().clone().with_restarts(cap);
                request = request.with_config(clamped);
            }
        }
        let fp = job_fingerprint(parsed.kind, &parsed.canonical, &request);

        if let Some((report, tier)) = self.cache_lookup(&fp, &parsed.canonical) {
            return self.report_reply(&fp, tier, "ok", &report);
        }

        // Cache miss: run the engine. The in-flight counter brackets
        // exactly the expensive section, so `queue-full` reflects actual
        // synthesis pressure rather than protocol chatter.
        self.in_flight.fetch_add(1, Ordering::Relaxed);
        // The engine-panic fault point: when a chaos plan says this
        // synthesis panics, run the job with an injected attempt-0 panic
        // and let the engine's isolation turn it into a Failed outcome.
        let inject_panic = self
            .fault_plan
            .as_ref()
            .map(|plan| {
                matches!(
                    plan.lock()
                        .expect("fault plan lock never poisoned")
                        .decide(FaultPoint::Engine, 0),
                    Some(InjectedFault::Panic)
                )
            })
            .unwrap_or(false);
        let mut job = Job::new("synth", request.clone());
        if inject_panic {
            job = job.with_injected_panic(0);
        }
        let outcome = self
            .engine
            .run(vec![job])
            .pop()
            .expect("one job in, one outcome out");
        self.in_flight.fetch_sub(1, Ordering::Relaxed);

        match (&outcome.status, &outcome.result) {
            (JobStatus::Failed(e), _) => {
                Reply::error("synthesis-failed", &format!("{}: {e}", e.fingerprint()))
            }
            (_, None) => Reply::error(
                "deadline-exceeded",
                "deadline expired before any restart completed",
            ),
            (status, Some(result)) => {
                let report = synth_json_object(&request, &outcome);
                if *status == JobStatus::Completed {
                    // Only fully completed portfolios are cached: a
                    // deadline-degraded best-so-far under the same key
                    // would poison future exact answers. Each cached
                    // result carries its contention-freedom certificate,
                    // bound to the cache key, so a later disk load can be
                    // independently re-validated before it is served.
                    let cert = result.certificate(&parsed.pattern, Some(fp)).to_json();
                    self.cache_insert(fp, report.clone(), Some(cert));
                    self.report_reply(&fp, CacheTier::Miss, "ok", &report)
                } else {
                    self.report_reply(&fp, CacheTier::Miss, "deadline-exceeded", &report)
                }
            }
        }
    }

    /// Assembles a synth reply. The report object string is spliced in
    /// verbatim — never re-rendered — so a hit is byte-identical to the
    /// miss that populated it; `report` is deliberately the last field
    /// so envelope metadata stays in a fixed-width prefix.
    fn report_reply(&self, fp: &Digest, tier: CacheTier, status: &str, report: &str) -> Reply {
        Reply {
            line: format!(
                "{{\"reply\":\"synth\",\"status\":\"{status}\",\"fingerprint\":\"{fp}\",\"cache\":\"{}\",\"report\":{report}}}",
                tier.label(),
            ),
            kind: ReplyKind::Report(tier),
        }
    }

    fn stats_reply(&self) -> Reply {
        let (stats, entries) = {
            let cache = self.cache.lock().expect("cache lock never poisoned");
            (cache.stats(), cache.len())
        };
        let obj = JsonValue::object([
            ("reply", JsonValue::from("stats")),
            (
                "requests",
                JsonValue::from(self.requests.load(Ordering::Relaxed)),
            ),
            ("hits", JsonValue::from(stats.hits)),
            ("misses", JsonValue::from(stats.misses)),
            ("disk_hits", JsonValue::from(stats.disk_hits)),
            ("insertions", JsonValue::from(stats.insertions)),
            ("evictions", JsonValue::from(stats.evictions)),
            ("disk_errors", JsonValue::from(stats.disk_errors)),
            ("cert_errors", JsonValue::from(stats.cert_errors)),
            ("recovered", JsonValue::from(stats.recovered)),
            ("quarantined", JsonValue::from(stats.quarantined)),
            (
                "conn_errors",
                JsonValue::from(self.conn_errors.load(Ordering::Relaxed)),
            ),
            ("entries", JsonValue::from(entries)),
        ]);
        Reply {
            line: obj.to_string(),
            kind: ReplyKind::Stats,
        }
    }

    fn status_reply(&self) -> Reply {
        let obj = JsonValue::object([
            ("reply", JsonValue::from("status")),
            ("ok", JsonValue::from(true)),
            ("protocol", JsonValue::from(PROTOCOL_VERSION)),
            (
                "in_flight",
                JsonValue::from(self.in_flight.load(Ordering::Relaxed)),
            ),
        ]);
        Reply {
            line: obj.to_string(),
            kind: ReplyKind::Status,
        }
    }

    /// Cache lookup with the certificate gate on the untrusted disk
    /// tier: a disk entry is served only if its companion certificate
    /// validates against the canonical pattern *and* is bound to exactly
    /// this cache key.
    fn cache_lookup(&self, fp: &Digest, canonical: &str) -> Option<(String, CacheTier)> {
        let check = CheckOptions::new().with_limits(self.opts.limits.clone());
        self.cache
            .lock()
            .expect("cache lock never poisoned")
            .lookup_certified(fp, |cert| {
                check_certificate(canonical, cert, Some(fp), &check).is_ok()
            })
    }

    fn cache_insert(&self, fp: Digest, report: String, cert: Option<String>) {
        self.cache
            .lock()
            .expect("cache lock never poisoned")
            .insert_with_cert(fp, report, cert);
    }

    /// Emits a `serve_request` telemetry event; a broken sink degrades
    /// loudly once (stderr notice) and is then ignored, mirroring the
    /// engine's `SinkGuard` behavior.
    fn emit(&self, op: &str, reply: &Reply) {
        if self.sink_degraded.load(Ordering::Relaxed) {
            return;
        }
        let (outcome, fingerprint) = match &reply.kind {
            ReplyKind::Report(tier) => (tier.label(), extract_fingerprint(&reply.line)),
            ReplyKind::Stats | ReplyKind::Status => ("ok", String::new()),
            ReplyKind::Error(fp) => (*fp, String::new()),
        };
        let event = EngineEvent::ServeRequest {
            op: op.to_string(),
            outcome: outcome.to_string(),
            fingerprint,
        };
        if let Err(e) = self.sink.emit(&event) {
            if !self.sink_degraded.swap(true, Ordering::Relaxed) {
                eprintln!("nocsyn-serve: telemetry sink failed ({e}); further events dropped");
            }
        }
    }

    /// Serves one already-framed byte stream: newline-delimited requests
    /// in, newline-delimited replies out, one reply per request, flushed
    /// per line. Returns at end of stream, after the per-connection
    /// request cap trips, or after an oversized line (both of which
    /// close the connection — the remaining bytes cannot be trusted to
    /// re-frame).
    ///
    /// This is also `nocsyn serve --once`'s stdio drain mode: pipe
    /// requests in, read replies, no daemon outlives the script.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying stream.
    pub fn serve_stream<R: BufRead, W: Write>(
        &self,
        mut reader: R,
        mut writer: W,
    ) -> io::Result<()> {
        let cap = self.request_cap();
        let mut served = 0usize;
        let mut buf: Vec<u8> = Vec::new();
        loop {
            buf.clear();
            let n = <&mut R as io::Read>::take(&mut reader, cap as u64 + 1)
                .read_until(b'\n', &mut buf)?;
            if n == 0 {
                return Ok(());
            }
            if buf.len() > cap {
                let reply =
                    Reply::error("request-too-long", "request line exceeds the input budget");
                writeln!(writer, "{}", reply.line)?;
                return writer.flush();
            }
            if !buf.ends_with(b"\n") {
                // The peer disconnected mid-line. The fragment was never
                // a committed request, so the clean-drop contract applies:
                // no reply is synthesized from half a line.
                return Ok(());
            }
            let text = String::from_utf8_lossy(&buf);
            let line = text.trim_end_matches(['\n', '\r']);
            if line.trim().is_empty() {
                continue;
            }
            served += 1;
            if served > self.opts.max_requests_per_conn {
                let reply = Reply::error(
                    "too-many-requests",
                    "per-connection request cap reached; reconnect to continue",
                );
                writeln!(writer, "{}", reply.line)?;
                return writer.flush();
            }
            let reply = self.handle_line(line);
            writeln!(writer, "{}", reply.line)?;
            writer.flush()?;
        }
    }

    /// Accept loop over a TCP listener (connections served serially —
    /// admission control, not parallelism, is the bottleneck this
    /// protects). With `once`, returns after the first connection closes,
    /// which is what the CI gate and tests use to keep daemons from
    /// outliving their scripts.
    ///
    /// One bad connection never takes the daemon down: per-connection
    /// I/O errors (including the `io_timeout` deadline tripping on a
    /// stalled peer) are counted in the `conn_errors` stat and the loop
    /// moves on to the next accept. The loop also exits after the
    /// current connection once [`Server::begin_shutdown`] is called.
    ///
    /// # Errors
    ///
    /// Propagates accept errors (the listener itself is broken).
    pub fn serve_listener(&self, listener: &TcpListener, once: bool) -> io::Result<()> {
        for conn in listener.incoming() {
            let stream = conn?;
            let served = stream
                .set_read_timeout(self.opts.io_timeout)
                .and_then(|()| stream.set_write_timeout(self.opts.io_timeout))
                .and_then(|()| {
                    let reader = BufReader::new(stream.try_clone()?);
                    self.serve_stream(reader, &stream)
                });
            if served.is_err() {
                self.conn_errors.fetch_add(1, Ordering::Relaxed);
            }
            if once || self.shutdown.load(Ordering::Relaxed) {
                return Ok(());
            }
        }
        Ok(())
    }
}

/// Pulls the fingerprint hex back out of an assembled reply line (it
/// sits at a fixed field in the envelope prefix).
fn extract_fingerprint(line: &str) -> String {
    line.split("\"fingerprint\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("")
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_engine::CollectSink;

    const PATTERN: &str = "procs 4\nphase\n  0 -> 1\n  2 -> 3\nphase\n  0 -> 2\n";

    fn synth_line(extra: &str) -> String {
        let quoted = PATTERN.replace('\n', "\\n");
        format!("{{\"op\":\"synth\",\"pattern\":\"{quoted}\",\"restarts\":1{extra}}}")
    }

    #[test]
    fn miss_then_hit_byte_identical_modulo_cache_marker() {
        let server = Server::new(ServeOptions::default());
        let req = synth_line("");
        let miss = server.handle_line(&req);
        let hit = server.handle_line(&req);
        assert_eq!(miss.kind, ReplyKind::Report(CacheTier::Miss));
        assert_eq!(hit.kind, ReplyKind::Report(CacheTier::Hit));
        assert_eq!(
            miss.line.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
            hit.line
        );
        // Both replies re-parse as JSON and agree on the report.
        let m = nocsyn_model::json::parse(&miss.line).expect("well-formed");
        let h = nocsyn_model::json::parse(&hit.line).expect("well-formed");
        assert_eq!(m.get("report"), h.get("report"));
        assert_eq!(m.get("fingerprint"), h.get("fingerprint"));
    }

    #[test]
    fn equivalent_pattern_texts_share_a_cache_entry() {
        let server = Server::new(ServeOptions::default());
        let a = server.handle_line(&synth_line(""));
        // Same pattern, different comments/whitespace/flow syntax.
        let noisy = "procs 4\n# c\n\nphase bytes=4096\n  0->1\n  2->3\nphase\n  0 -> 2\n";
        let quoted = noisy.replace('\n', "\\n");
        let b = server.handle_line(&format!(
            "{{\"op\":\"synth\",\"pattern\":\"{quoted}\",\"restarts\":1}}"
        ));
        assert_eq!(a.kind, ReplyKind::Report(CacheTier::Miss));
        assert_eq!(b.kind, ReplyKind::Report(CacheTier::Hit));
    }

    #[test]
    fn different_seed_is_a_different_key() {
        let server = Server::new(ServeOptions::default());
        let a = server.handle_line(&synth_line(",\"seed\":1"));
        let b = server.handle_line(&synth_line(",\"seed\":2"));
        assert_eq!(a.kind, ReplyKind::Report(CacheTier::Miss));
        assert_eq!(b.kind, ReplyKind::Report(CacheTier::Miss));
    }

    #[test]
    fn deadline_is_not_part_of_the_key() {
        let server = Server::new(ServeOptions::default());
        let a = server.handle_line(&synth_line(""));
        // Generous deadline: portfolio completes, so the key matches.
        let b = server.handle_line(&synth_line(",\"deadline_ms\":60000"));
        assert_eq!(a.kind, ReplyKind::Report(CacheTier::Miss));
        assert_eq!(b.kind, ReplyKind::Report(CacheTier::Hit));
    }

    #[test]
    fn zero_deadline_result_is_never_cached() {
        let server = Server::new(ServeOptions::default());
        let a = server.handle_line(&synth_line(",\"deadline_ms\":0"));
        assert_eq!(a.kind, ReplyKind::Error("deadline-exceeded"));
        // The full run afterwards is still a miss (nothing was poisoned).
        let b = server.handle_line(&synth_line(""));
        assert_eq!(b.kind, ReplyKind::Report(CacheTier::Miss));
    }

    #[test]
    fn rejected_patterns_and_frames_reply_with_fingerprints() {
        let server = Server::new(ServeOptions::default());
        let bad = server.handle_line("{\"op\":\"synth\",\"pattern\":\"wat\\n\"}");
        assert_eq!(bad.kind, ReplyKind::Error("pattern-rejected"));
        assert!(bad.line.contains("malformed"));
        let garbage = server.handle_line("not json at all");
        assert_eq!(garbage.kind, ReplyKind::Error("bad-json"));
        // Every reply is well-formed JSON.
        for r in [&bad, &garbage] {
            nocsyn_model::json::parse(&r.line).expect("error replies are JSON");
        }
    }

    #[test]
    fn queue_depth_zero_always_replies_queue_full() {
        let opts = ServeOptions {
            max_queue_depth: 0,
            ..ServeOptions::default()
        };
        let server = Server::new(opts);
        let r = server.handle_line(&synth_line(""));
        assert_eq!(r.kind, ReplyKind::Error("queue-full"));
    }

    #[test]
    fn restarts_are_clamped_by_admission_control() {
        let opts = ServeOptions {
            max_restarts: Some(1),
            ..ServeOptions::default()
        };
        let server = Server::new(opts);
        // restarts=999 is clamped to 1 -> same key as restarts=1.
        let a = server.handle_line(&synth_line(",\"seed\":3"));
        let b = server
            .handle_line(&synth_line(",\"seed\":3").replace("\"restarts\":1", "\"restarts\":999"));
        assert_eq!(a.kind, ReplyKind::Report(CacheTier::Miss));
        assert_eq!(b.kind, ReplyKind::Report(CacheTier::Hit));
    }

    #[test]
    fn stats_and_status_reflect_traffic() {
        let server = Server::new(ServeOptions::default());
        let _ = server.handle_line(&synth_line(""));
        let _ = server.handle_line(&synth_line(""));
        let stats = server.handle_line("{\"op\":\"stats\"}");
        assert_eq!(stats.kind, ReplyKind::Stats);
        let v = nocsyn_model::json::parse(&stats.line).expect("well-formed");
        assert_eq!(v.get("hits").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("misses").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("insertions").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("entries").and_then(|x| x.as_u64()), Some(1));
        assert_eq!(v.get("requests").and_then(|x| x.as_u64()), Some(3));
        let status = server.handle_line("{\"op\":\"status\"}");
        assert_eq!(status.kind, ReplyKind::Status);
        let v = nocsyn_model::json::parse(&status.line).expect("well-formed");
        assert_eq!(v.get("ok").and_then(|x| x.as_bool()), Some(true));
        assert_eq!(
            v.get("protocol").and_then(|x| x.as_u64()),
            Some(PROTOCOL_VERSION)
        );
    }

    #[test]
    fn serve_stream_drains_stdin_style_input() {
        let server = Server::new(ServeOptions::default());
        let input = format!(
            "{}\n\n{}\n{{\"op\":\"stats\"}}\n",
            synth_line(""),
            synth_line("")
        );
        let mut out: Vec<u8> = Vec::new();
        server
            .serve_stream(input.as_bytes(), &mut out)
            .expect("stream I/O");
        let text = String::from_utf8(out).expect("utf8 replies");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "blank line skipped, three replies");
        assert!(lines[0].contains("\"cache\":\"miss\""));
        assert!(lines[1].contains("\"cache\":\"hit\""));
        assert!(lines[2].starts_with("{\"reply\":\"stats\""));
    }

    #[test]
    fn per_connection_request_cap_closes_with_an_error() {
        let opts = ServeOptions {
            max_requests_per_conn: 2,
            ..ServeOptions::default()
        };
        let server = Server::new(opts);
        let input = "{\"op\":\"status\"}\n{\"op\":\"status\"}\n{\"op\":\"status\"}\n";
        let mut out: Vec<u8> = Vec::new();
        server
            .serve_stream(input.as_bytes(), &mut out)
            .expect("stream I/O");
        let text = String::from_utf8(out).expect("utf8 replies");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].contains("too-many-requests"));
    }

    #[test]
    fn oversized_request_line_is_rejected_and_closes() {
        let opts = ServeOptions {
            limits: ParseLimits::default().with_max_input_bytes(64),
            ..ServeOptions::default()
        };
        let server = Server::new(opts);
        let long = format!(
            "{{\"op\":\"synth\",\"pattern\":\"{}\"}}\n",
            "x".repeat(4096)
        );
        let mut out: Vec<u8> = Vec::new();
        server
            .serve_stream(long.as_bytes(), &mut out)
            .expect("stream I/O");
        let text = String::from_utf8(out).expect("utf8 replies");
        assert!(text.contains("request-too-long"));
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn serve_request_events_flow_through_the_sink() {
        let sink = Arc::new(CollectSink::new());
        let server = Server::new(ServeOptions::default()).with_sink(sink.clone());
        let _ = server.handle_line(&synth_line(""));
        let _ = server.handle_line(&synth_line(""));
        let _ = server.handle_line("garbage");
        let events: Vec<_> = sink
            .events()
            .into_iter()
            .filter(|e| e.kind() == "serve_request")
            .collect();
        assert_eq!(events.len(), 3);
        let outcomes: Vec<String> = events
            .iter()
            .map(|e| match e {
                EngineEvent::ServeRequest { outcome, .. } => outcome.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(outcomes, ["miss", "hit", "bad-json"]);
        // Cache-tier events carry the job fingerprint.
        if let EngineEvent::ServeRequest { fingerprint, .. } = &events[0] {
            assert_eq!(fingerprint.len(), 64);
        }
    }

    #[test]
    fn unterminated_final_line_is_dropped_without_a_reply() {
        let server = Server::new(ServeOptions::default());
        // A complete status request, then half a request with no newline.
        let input = "{\"op\":\"status\"}\n{\"op\":\"syn";
        let mut out: Vec<u8> = Vec::new();
        server
            .serve_stream(input.as_bytes(), &mut out)
            .expect("mid-line EOF is a clean drop, not an I/O error");
        let text = String::from_utf8(out).expect("utf8 replies");
        assert_eq!(text.lines().count(), 1, "only the framed request replies");
        assert!(text.starts_with("{\"reply\":\"status\""));
    }

    #[test]
    fn shutdown_drains_then_refuses_new_synthesis() {
        let server = Server::new(ServeOptions::default());
        let before = server.handle_line(&synth_line(""));
        assert_eq!(before.kind, ReplyKind::Report(CacheTier::Miss));
        assert!(!server.is_shutting_down());
        server.begin_shutdown();
        assert!(server.is_shutting_down());
        // Synthesis is refused with a stable fingerprint...
        let during = server.handle_line(&synth_line(",\"seed\":9"));
        assert_eq!(during.kind, ReplyKind::Error("shutting-down"));
        // ...but stats still flush, so operators see final counters.
        let stats = server.handle_line("{\"op\":\"stats\"}");
        assert_eq!(stats.kind, ReplyKind::Stats);
        assert_eq!(stats.line, server.stats_line());
    }

    #[test]
    fn fingerprint_helper_matches_served_fingerprint() {
        let server = Server::new(ServeOptions::default());
        let reply = server.handle_line(&synth_line(""));
        let parse_opts = ParseOptions::new();
        let parsed = parse_pattern(PATTERN, &parse_opts).expect("valid");
        let request = SynthesisRequest::builder(parsed.pattern.clone())
            .restarts(1)
            .build()
            .expect("request builds");
        let fp = job_fingerprint(parsed.kind, &parsed.canonical, &request);
        assert!(reply.line.contains(&fp.to_hex()));
    }

    #[test]
    fn zero_restarts_and_zero_clusters_are_typed_rejections() {
        let server = Server::new(ServeOptions::default());
        let r = server.handle_line(&synth_line("").replace("\"restarts\":1", "\"restarts\":0"));
        assert_eq!(r.kind, ReplyKind::Error("zero-restarts"));
        assert!(r.line.contains("restarts must be at least 1"));
        let z = server.handle_line(&synth_line(",\"mode\":\"decomposed\",\"clusters\":0"));
        assert_eq!(z.kind, ReplyKind::Error("zero-clusters"));
    }

    #[test]
    fn decomposed_mode_is_a_distinct_cache_key_and_caches() {
        let server = Server::new(ServeOptions::default());
        let flat = server.handle_line(&synth_line(""));
        let dec = server.handle_line(&synth_line(",\"mode\":\"decomposed\",\"clusters\":2"));
        assert_eq!(flat.kind, ReplyKind::Report(CacheTier::Miss));
        assert_eq!(
            dec.kind,
            ReplyKind::Report(CacheTier::Miss),
            "mode is part of the key, so this cannot hit the flat entry"
        );
        assert!(dec.line.contains("\"mode\":\"decomposed\""));
        assert!(dec.line.contains("\"contention_free\":true"));
        // A decomposed result is cache-worthy like any other: the stitched
        // network certifies, so the repeat is a verbatim hit.
        let hit = server.handle_line(&synth_line(",\"mode\":\"decomposed\",\"clusters\":2"));
        assert_eq!(hit.kind, ReplyKind::Report(CacheTier::Hit));
        assert_eq!(
            dec.line.replace("\"cache\":\"miss\"", "\"cache\":\"hit\""),
            hit.line
        );
    }
}
