//! Self-contained deterministic pseudo-random numbers for the whole
//! workspace.
//!
//! Every stochastic component of the methodology — switch splitting,
//! simulated annealing, floorplanning, synthetic workload generation, and
//! the `nocsyn-check` property-test harness — draws from this one
//! generator, so the workspace builds and tests fully offline and a seed
//! pins an entire run: same seed ⇒ same annealing trajectory ⇒ same
//! synthesized topology, byte for byte.
//!
//! The generator is xoshiro256\*\* (Blackman & Vigna), seeded by expanding
//! a single `u64` through SplitMix64 — the standard pairing, chosen here
//! for its tiny implementation, excellent statistical quality for
//! simulation workloads, and trivial reproducibility. This is **not** a
//! cryptographic generator and must never be used for secrets.
//!
//! ```
//! use nocsyn_rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let die = rng.gen_range(1..=6usize);
//! assert!((1..=6).contains(&die));
//!
//! // Identical seeds replay identical streams.
//! let (mut a, mut b) = (Rng::seed_from_u64(7), Rng::seed_from_u64(7));
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::ops::{Range, RangeInclusive};

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Exposed because seed-derivation schemes elsewhere in the workspace
/// (per-test seeds in `nocsyn-check`, per-phase skew offsets) want the
/// same finalizer without carrying a full generator.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic 64-bit hash of a string (FNV-1a), for deriving stable
/// per-name seeds (e.g. a property test seeded by its own name).
#[must_use]
pub fn hash_str(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A xoshiro256\*\* generator seeded from a single `u64` via SplitMix64.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose stream is fully determined by `seed`.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // xoshiro256** is ill-defined on the all-zero state; SplitMix64
        // cannot produce four consecutive zeros, but guard anyway.
        if s == [0; 4] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Rng { s }
    }

    /// The next 64 raw bits of the stream.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]: {p}");
        self.gen_f64() < p
    }

    /// A uniform value in `range` (half-open `a..b` or inclusive `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    pub fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    /// Uniform `u64` in `[0, span)` without modulo bias (rejection
    /// sampling on the top of the stream).
    #[inline]
    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            return self.next_u64() & (span - 1);
        }
        // Largest multiple of `span` that fits in u64; values at or above
        // it would bias the modulo and are re-drawn (expected < 2 draws).
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % span;
            }
        }
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// A uniformly chosen element of `slice`, or `None` when empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.below(slice.len() as u64) as usize])
        }
    }

    /// A child generator whose stream is independent of further draws from
    /// `self` — for handing out per-subtask randomness reproducibly.
    #[must_use]
    pub fn fork(&mut self) -> Rng {
        Rng::seed_from_u64(self.next_u64())
    }
}

/// Ranges [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    fn sample(self, rng: &mut Rng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample(self, rng: &mut Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(123);
        let mut b = Rng::seed_from_u64(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn reference_vector_xoshiro256starstar() {
        // First outputs for the state {1, 2, 3, 4} per the reference
        // implementation (Blackman & Vigna, prng.di.unimi.it).
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expected = [
            11520u64,
            0,
            1509978240,
            1215971899390074240,
            1216172134540287360,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn reference_vector_splitmix64() {
        // Test vector from the SplitMix64 reference: seed 1234567.
        let mut state = 1234567u64;
        assert_eq!(splitmix64(&mut state), 6457827717110365317);
        assert_eq!(splitmix64(&mut state), 3203168211198807973);
    }

    #[test]
    fn gen_range_half_open_stays_in_bounds() {
        let mut rng = Rng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
    }

    #[test]
    fn gen_range_inclusive_hits_both_ends() {
        let mut rng = Rng::seed_from_u64(10);
        let mut seen = [false; 4];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..=3)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..=3 should appear");
    }

    #[test]
    fn gen_range_single_value_range() {
        let mut rng = Rng::seed_from_u64(11);
        assert_eq!(rng.gen_range(5usize..6), 5);
        assert_eq!(rng.gen_range(5usize..=5), 5);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = Rng::seed_from_u64(0);
        let _ = rng.gen_range(3usize..3);
    }

    #[test]
    fn gen_f64_is_unit_interval() {
        let mut rng = Rng::seed_from_u64(12);
        for _ in 0..1_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Rng::seed_from_u64(13);
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn gen_bool_rate_is_plausible() {
        let mut rng = Rng::seed_from_u64(14);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "got {hits} of 10000");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..20).collect();
        let mut b = a.clone();
        Rng::seed_from_u64(15).shuffle(&mut a);
        Rng::seed_from_u64(15).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let items = [10, 20, 30];
        let mut rng = Rng::seed_from_u64(16);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..200 {
            seen.insert(*rng.choose(&items).unwrap());
        }
        assert_eq!(seen.len(), 3);
        assert_eq!(rng.choose::<usize>(&[]), None);
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut parent = Rng::seed_from_u64(17);
        let mut child = parent.fork();
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn hash_str_is_stable_and_distinguishes() {
        assert_eq!(hash_str("abc"), hash_str("abc"));
        assert_ne!(hash_str("abc"), hash_str("abd"));
        assert_ne!(hash_str(""), hash_str("a"));
    }

    #[test]
    fn unbiased_below_small_span() {
        // A span of 3 over u64 would show visible modulo bias only over
        // astronomically many draws, so instead verify uniformity roughly.
        let mut rng = Rng::seed_from_u64(18);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for c in counts {
            assert!((9_000..11_000).contains(&c), "skewed counts {counts:?}");
        }
    }
}
