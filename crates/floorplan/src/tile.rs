//! The tile grid and its corner lattice.

use std::fmt;

/// A corner of the tile lattice: `(row, col)` on the `(rows+1) x (cols+1)`
/// vertex grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Corner {
    /// Vertex row, `0..=rows`.
    pub row: usize,
    /// Vertex column, `0..=cols`.
    pub col: usize,
}

impl Corner {
    /// Manhattan distance to another corner, in tile units.
    pub fn distance(&self, other: Corner) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }
}

impl fmt::Display for Corner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// A `rows x cols` grid of processor tiles (one tile per processor, with
/// spare tiles allowed when the process count is not a perfect rectangle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TileGrid {
    rows: usize,
    cols: usize,
}

impl TileGrid {
    /// The near-square grid with at least `n_tiles` tiles.
    ///
    /// # Panics
    ///
    /// Panics if `n_tiles` is zero.
    pub fn for_tiles(n_tiles: usize) -> Self {
        assert!(n_tiles > 0, "a chip needs at least one tile");
        let rows = (n_tiles as f64).sqrt().floor() as usize;
        let rows = rows.max(1);
        let cols = n_tiles.div_ceil(rows);
        TileGrid { rows, cols }
    }

    /// An explicit grid shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be positive");
        TileGrid { rows, cols }
    }

    /// Rows of tiles.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Columns of tiles.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total tiles.
    pub fn n_tiles(&self) -> usize {
        self.rows * self.cols
    }

    /// Total corner vertices.
    pub fn n_corners(&self) -> usize {
        (self.rows + 1) * (self.cols + 1)
    }

    /// The `(row, col)` of tile index `t` (row-major).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn tile_coords(&self, t: usize) -> (usize, usize) {
        assert!(t < self.n_tiles(), "tile {t} outside grid");
        (t / self.cols, t % self.cols)
    }

    /// The four corners of tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn corners_of(&self, t: usize) -> [Corner; 4] {
        let (r, c) = self.tile_coords(t);
        [
            Corner { row: r, col: c },
            Corner { row: r, col: c + 1 },
            Corner { row: r + 1, col: c },
            Corner {
                row: r + 1,
                col: c + 1,
            },
        ]
    }

    /// All corner vertices in row-major order.
    pub fn corners(&self) -> impl Iterator<Item = Corner> + '_ {
        let cols = self.cols + 1;
        (0..self.n_corners()).map(move |i| Corner {
            row: i / cols,
            col: i % cols,
        })
    }

    /// Dense index of a corner.
    pub fn corner_index(&self, c: Corner) -> usize {
        c.row * (self.cols + 1) + c.col
    }

    /// Wiring distance from tile `t` to a switch at `corner`: zero when
    /// the switch sits on one of the tile's own corners, else the nearest
    /// manhattan distance (the tile's NI wire must cross that many tiles).
    pub fn attachment_distance(&self, t: usize, corner: Corner) -> usize {
        self.corners_of(t)
            .iter()
            .map(|c| c.distance(corner))
            .min()
            .expect("tiles have four corners")
    }
}

impl fmt::Display for TileGrid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{} tiles", self.rows, self.cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_shapes() {
        assert_eq!(TileGrid::for_tiles(16).n_tiles(), 16);
        assert_eq!(TileGrid::for_tiles(16).rows(), 4);
        let g9 = TileGrid::for_tiles(9);
        assert_eq!((g9.rows(), g9.cols()), (3, 3));
        let g8 = TileGrid::for_tiles(8);
        assert!(g8.n_tiles() >= 8);
        assert_eq!((g8.rows(), g8.cols()), (2, 4));
    }

    #[test]
    fn corners_and_indices_round_trip() {
        let g = TileGrid::new(2, 3);
        assert_eq!(g.n_corners(), 12);
        for c in g.corners() {
            assert!(g.corner_index(c) < g.n_corners());
        }
        let cs = g.corners_of(4); // tile (1, 1)
        assert!(cs.contains(&Corner { row: 1, col: 1 }));
        assert!(cs.contains(&Corner { row: 2, col: 2 }));
    }

    #[test]
    fn attachment_distance_zero_on_own_corner() {
        let g = TileGrid::new(2, 2);
        assert_eq!(g.attachment_distance(0, Corner { row: 0, col: 0 }), 0);
        assert_eq!(g.attachment_distance(0, Corner { row: 1, col: 1 }), 0);
        assert_eq!(g.attachment_distance(0, Corner { row: 2, col: 2 }), 2);
    }

    #[test]
    fn corner_distance_is_manhattan() {
        let a = Corner { row: 0, col: 0 };
        let b = Corner { row: 2, col: 3 };
        assert_eq!(a.distance(b), 5);
        assert_eq!(b.distance(a), 5);
        assert_eq!(a.distance(a), 0);
    }

    #[test]
    #[should_panic(expected = "at least one tile")]
    fn zero_tiles_rejected() {
        let _ = TileGrid::for_tiles(0);
    }
}
