//! Tile-based floorplanning and the paper's on-chip area model.
//!
//! Section 4.1 of Ho & Pinkston (HPCA 2003) compares generated networks to
//! meshes and tori by *chip area* rather than raw element counts, using a
//! RAW-style tile model:
//!
//! * the chip is a grid of processor tiles, one per processor, with the
//!   network interface at a tile corner;
//! * every switch has five ports and constant area, placed at a tile
//!   corner; rotated tiles may *share* a corner switch, which is how a
//!   generated network attaches several processors to one switch with no
//!   wiring cost;
//! * a link between switches at the same or adjacent corners costs zero or
//!   one units respectively; longer links cost their manhattan distance in
//!   tiles crossed.
//!
//! The paper draws its floorplans by hand; [`place`] automates the same
//! optimization with simulated annealing over processor-to-tile and
//! switch-to-corner assignments. [`mesh_baseline`] and [`torus_baseline`]
//! give the analytic baselines (a torus needs the same switch area as a
//! mesh but twice the link area). The resulting link lengths also feed the
//! simulator's per-link delays (delay = length in tiles, minimum one
//! cycle).
//!
//! # Example
//!
//! ```
//! use nocsyn_floorplan::{mesh_baseline, place};
//! use nocsyn_topo::regular;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (net, _) = regular::mesh(2, 2)?;
//! let plan = place(&net, 42);
//! let report = plan.area(&net);
//! // A mesh placed by the optimizer matches the analytic mesh baseline.
//! assert_eq!(report.switch_area, mesh_baseline(2, 2).switch_area);
//! assert!(report.link_area <= mesh_baseline(2, 2).link_area + 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod area;
mod placement;
mod power;
mod tile;

pub use area::{mesh_baseline, torus_baseline, AreaReport};
pub use placement::{place, place_with_iterations, Floorplan};
pub use power::{estimate_energy, EnergyReport, PowerParams};
pub use tile::{Corner, TileGrid};
