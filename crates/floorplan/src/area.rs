//! The area model and analytic baselines.

use std::fmt;

/// Switch and link area of a floorplanned network, in the paper's units:
/// one unit of switch area per (5-port) switch, one unit of link area per
/// tile a link crosses.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AreaReport {
    /// Total switch area (= number of switches).
    pub switch_area: f64,
    /// Total link area (= sum of link manhattan lengths in tiles,
    /// processor attachments included).
    pub link_area: f64,
}

impl AreaReport {
    /// Both areas normalized against a baseline (the paper's Figure 7
    /// plots everything relative to the mesh).
    ///
    /// A zero-area baseline component normalizes to zero (the quantity is
    /// "no worse than nothing").
    #[must_use]
    pub fn normalized_to(&self, baseline: &AreaReport) -> AreaReport {
        let ratio = |x: f64, b: f64| if b == 0.0 { 0.0 } else { x / b };
        AreaReport {
            switch_area: ratio(self.switch_area, baseline.switch_area),
            link_area: ratio(self.link_area, baseline.link_area),
        }
    }

    /// Sum of both components.
    pub fn total(&self) -> f64 {
        self.switch_area + self.link_area
    }
}

impl fmt::Display for AreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "switch area {:.2}, link area {:.2}",
            self.switch_area, self.link_area
        )
    }
}

/// The analytic area of a `rows x cols` mesh: one switch per tile, every
/// link exactly one tile long (Figure 6(a)).
pub fn mesh_baseline(rows: usize, cols: usize) -> AreaReport {
    let links = rows * cols.saturating_sub(1) + cols * rows.saturating_sub(1);
    AreaReport {
        switch_area: (rows * cols) as f64,
        link_area: links as f64,
    }
}

/// The analytic area of a `rows x cols` torus under the 2-D layout
/// constraint: "a torus requires two times the link resources compared to
/// a mesh network due to the wrap-around links and the 2-D constraint of a
/// chip" with the same switch area (Section 4.2).
pub fn torus_baseline(rows: usize, cols: usize) -> AreaReport {
    let mesh = mesh_baseline(rows, cols);
    AreaReport {
        switch_area: mesh.switch_area,
        link_area: 2.0 * mesh.link_area,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_closed_form() {
        let m = mesh_baseline(4, 4);
        assert_eq!(m.switch_area, 16.0);
        assert_eq!(m.link_area, 24.0);
        let m33 = mesh_baseline(3, 3);
        assert_eq!(m33.link_area, 12.0);
        let line = mesh_baseline(1, 5);
        assert_eq!(line.link_area, 4.0);
    }

    #[test]
    fn torus_doubles_link_area_only() {
        let t = torus_baseline(4, 4);
        let m = mesh_baseline(4, 4);
        assert_eq!(t.switch_area, m.switch_area);
        assert_eq!(t.link_area, 2.0 * m.link_area);
    }

    #[test]
    fn normalization() {
        let a = AreaReport {
            switch_area: 8.0,
            link_area: 10.0,
        };
        let b = AreaReport {
            switch_area: 16.0,
            link_area: 20.0,
        };
        let n = a.normalized_to(&b);
        assert!((n.switch_area - 0.5).abs() < 1e-12);
        assert!((n.link_area - 0.5).abs() < 1e-12);
        let z = a.normalized_to(&AreaReport::default());
        assert_eq!(z.switch_area, 0.0);
        assert_eq!(a.total(), 18.0);
    }
}
