//! A first-order energy model for generated networks.
//!
//! The paper's conclusion names power the next optimization target
//! ("this work can be extended to include other important optimization
//! criteria such as power"). This module provides the standard
//! activity-based estimate used by early NoC power models (à la Orion):
//!
//! * every flit traversing a switch costs `switch_energy_per_flit`;
//! * every flit traversing a link costs `link_energy_per_flit_per_tile ×
//!   length` (wire capacitance grows with length, and length comes from
//!   the floorplan);
//! * idle switches and wires leak per cycle.
//!
//! Units are arbitrary ("energy units"); only ratios between candidate
//! networks are meaningful, exactly like the paper's area units.

use nocsyn_model::Trace;
use nocsyn_topo::{Network, RouteTable};

use crate::Floorplan;

/// Energy coefficients for [`estimate_energy`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerParams {
    /// Energy per flit per switch traversal.
    pub switch_energy_per_flit: f64,
    /// Energy per flit per tile of link length (zero-length shared-corner
    /// hops cost a minimum of one tile's worth of drive energy).
    pub link_energy_per_flit_per_tile: f64,
    /// Leakage energy per switch per cycle.
    pub switch_leakage_per_cycle: f64,
    /// Leakage energy per link per cycle (independent of length in this
    /// first-order model).
    pub link_leakage_per_cycle: f64,
    /// Flit payload in bytes (4 = the paper's 32-bit flits).
    pub flit_bytes: u32,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            switch_energy_per_flit: 1.0,
            link_energy_per_flit_per_tile: 0.5,
            switch_leakage_per_cycle: 0.01,
            link_leakage_per_cycle: 0.002,
            flit_bytes: 4,
        }
    }
}

/// An energy estimate broken down by source.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyReport {
    /// Dynamic energy spent in switch traversals.
    pub switch_dynamic: f64,
    /// Dynamic energy spent driving links.
    pub link_dynamic: f64,
    /// Leakage over the accounted duration.
    pub leakage: f64,
}

impl EnergyReport {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.switch_dynamic + self.link_dynamic + self.leakage
    }
}

/// Estimates the energy a network spends carrying `trace`, with link
/// lengths from `plan` and routes from `routes`, over the trace's
/// makespan (for leakage).
///
/// Flows in the trace without a route are skipped (they carry no energy
/// on this network); synthesis routes every application flow, so this
/// only matters for hand-built tables.
pub fn estimate_energy(
    net: &Network,
    plan: &Floorplan,
    routes: &RouteTable,
    trace: &Trace,
    params: &PowerParams,
) -> EnergyReport {
    let mut switch_dynamic = 0.0;
    let mut link_dynamic = 0.0;

    for message in trace.messages() {
        let Some(route) = routes.route(message.flow()) else {
            continue;
        };
        let flits = f64::from(message.bytes().div_ceil(params.flit_bytes).max(1)) + 1.0;
        // Each hop crosses one link and enters one node (switch or NI);
        // count switch traversals as hops - 1 (the final hop lands in the
        // destination NI, not a switch).
        let hops = route.len() as f64;
        switch_dynamic += flits * (hops - 1.0).max(0.0) * params.switch_energy_per_flit;
        for ch in route.iter() {
            let tiles = plan.link_length(net, ch.link).max(1) as f64;
            link_dynamic += flits * tiles * params.link_energy_per_flit_per_tile;
        }
    }

    let cycles = trace.makespan().ticks() as f64;
    let leakage = cycles
        * (net.n_switches() as f64 * params.switch_leakage_per_cycle
            + net.n_links() as f64 * params.link_leakage_per_cycle);

    EnergyReport {
        switch_dynamic,
        link_dynamic,
        leakage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::place;
    use nocsyn_model::{Message, ProcId};
    use nocsyn_topo::regular;

    fn one_message_trace(bytes: u32) -> Trace {
        let mut t = Trace::new(4);
        t.push(
            Message::new(ProcId(0), ProcId(3), 0, 100)
                .unwrap()
                .with_bytes(bytes),
        )
        .unwrap();
        t
    }

    #[test]
    fn energy_scales_with_payload() {
        let (net, routes) = regular::mesh(2, 2).unwrap();
        let plan = place(&net, 1);
        let params = PowerParams::default();
        let small = estimate_energy(&net, &plan, &routes, &one_message_trace(64), &params);
        let large = estimate_energy(&net, &plan, &routes, &one_message_trace(4096), &params);
        assert!(large.switch_dynamic > small.switch_dynamic * 10.0);
        assert!(large.link_dynamic > small.link_dynamic * 10.0);
        // Same makespan -> same leakage.
        assert!((large.leakage - small.leakage).abs() < 1e-9);
    }

    #[test]
    fn lean_network_leaks_less() {
        let (mesh, mesh_routes) = regular::mesh(2, 2).unwrap();
        let (xbar, xbar_routes) = regular::crossbar(4).unwrap();
        let params = PowerParams::default();
        let trace = one_message_trace(256);
        let m = estimate_energy(&mesh, &place(&mesh, 1), &mesh_routes, &trace, &params);
        let x = estimate_energy(&xbar, &place(&xbar, 1), &xbar_routes, &trace, &params);
        assert!(x.leakage < m.leakage, "1 switch must leak less than 4");
        // And the crossbar's shorter route spends less dynamic energy.
        assert!(x.total() < m.total());
    }

    #[test]
    fn unrouted_flows_cost_nothing() {
        let (net, _) = regular::mesh(2, 2).unwrap();
        let plan = place(&net, 1);
        let report = estimate_energy(
            &net,
            &plan,
            &nocsyn_topo::RouteTable::new(),
            &one_message_trace(64),
            &PowerParams::default(),
        );
        assert_eq!(report.switch_dynamic, 0.0);
        assert_eq!(report.link_dynamic, 0.0);
        assert!(report.leakage > 0.0);
    }

    #[test]
    fn total_sums_components() {
        let r = EnergyReport {
            switch_dynamic: 1.0,
            link_dynamic: 2.0,
            leakage: 3.0,
        };
        assert!((r.total() - 6.0).abs() < 1e-12);
    }
}
