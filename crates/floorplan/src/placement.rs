//! Simulated-annealing placement of a network onto the tile grid.

use std::fmt;

use nocsyn_rng::Rng;
use nocsyn_topo::{LinkId, Network, NodeRef};

use crate::{AreaReport, Corner, TileGrid};

/// A concrete placement: which tile hosts each processor and which corner
/// vertex hosts each switch.
///
/// Multiple tiles sharing a corner switch is the paper's rotated-tile
/// trick; up to four tiles meet at a corner, so up to four processors can
/// attach to one switch at zero wiring cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Floorplan {
    grid: TileGrid,
    proc_tile: Vec<usize>,
    switch_corner: Vec<Corner>,
}

impl Floorplan {
    /// The tile grid this floorplan lives on.
    pub fn grid(&self) -> &TileGrid {
        &self.grid
    }

    /// The tile hosting each processor (indexed by `ProcId`).
    pub fn proc_tiles(&self) -> &[usize] {
        &self.proc_tile
    }

    /// The corner hosting each switch (indexed by `SwitchId`).
    pub fn switch_corners(&self) -> &[Corner] {
        &self.switch_corner
    }

    /// Physical length of a link in tiles: manhattan corner distance for
    /// switch–switch links, nearest-corner distance for processor
    /// attachments.
    ///
    /// # Panics
    ///
    /// Panics if `link` is not in `net`.
    pub fn link_length(&self, net: &Network, link: LinkId) -> usize {
        let l = net
            .link(link)
            .expect("link belongs to the floorplanned network");
        match (l.a(), l.b()) {
            (NodeRef::Switch(a), NodeRef::Switch(b)) => {
                self.switch_corner[a.index()].distance(self.switch_corner[b.index()])
            }
            (NodeRef::Proc(p), NodeRef::Switch(s)) | (NodeRef::Switch(s), NodeRef::Proc(p)) => self
                .grid
                .attachment_distance(self.proc_tile[p.index()], self.switch_corner[s.index()]),
            (NodeRef::Proc(_), NodeRef::Proc(_)) => {
                unreachable!("networks never link two processors directly")
            }
        }
    }

    /// Per-link lengths in tiles (indexable by `LinkId`), ready to feed
    /// [`SimConfig::with_link_delays`] (the simulator clamps to ≥ 1 cycle).
    ///
    /// [`SimConfig::with_link_delays`]: ../nocsyn_sim/struct.SimConfig.html#method.with_link_delays
    pub fn link_lengths(&self, net: &Network) -> Vec<u32> {
        net.link_ids()
            .map(|l| self.link_length(net, l) as u32)
            .collect()
    }

    /// The paper's area accounting for this placement: one unit of switch
    /// area per switch, link area equal to total tiles crossed.
    pub fn area(&self, net: &Network) -> AreaReport {
        let link_area: usize = net.link_ids().map(|l| self.link_length(net, l)).sum();
        AreaReport {
            switch_area: net.n_switches() as f64,
            link_area: link_area as f64,
        }
    }

    /// Total wiring cost (the annealing objective).
    fn cost(&self, net: &Network) -> usize {
        net.link_ids().map(|l| self.link_length(net, l)).sum()
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "floorplan on {}", self.grid)?;
        for (s, c) in self.switch_corner.iter().enumerate() {
            writeln!(f, "  S{s} at corner {c}")?;
        }
        for (p, t) in self.proc_tile.iter().enumerate() {
            let (r, c) = self.grid.tile_coords(*t);
            writeln!(f, "  P{p} on tile ({r}, {c})")?;
        }
        Ok(())
    }
}

/// Default annealing effort.
const DEFAULT_ITERATIONS: usize = 20_000;

/// Floorplans `net` with the default annealing effort (deterministic per
/// seed).
pub fn place(net: &Network, seed: u64) -> Floorplan {
    place_with_iterations(net, seed, DEFAULT_ITERATIONS)
}

/// Floorplans `net` with an explicit annealing-iteration budget.
///
/// Starts from processors laid out in id order and each switch at the
/// corner nearest its attached processors' centroid, then anneals over two
/// move kinds: swap two processors' tiles, or move a switch to a random
/// corner.
///
/// # Panics
///
/// Panics if the network has no processors or no switches.
pub fn place_with_iterations(net: &Network, seed: u64, iterations: usize) -> Floorplan {
    assert!(
        net.n_procs() > 0,
        "cannot floorplan a network with no processors"
    );
    assert!(
        net.n_switches() > 0,
        "cannot floorplan a network with no switches"
    );
    let grid = TileGrid::for_tiles(net.n_procs());
    let mut rng = Rng::seed_from_u64(seed);

    // Initial state: processors in id order; switches at the centroid
    // corner of their attached processors.
    let proc_tile: Vec<usize> = (0..net.n_procs()).collect();
    let mut switch_corner = Vec::with_capacity(net.n_switches());
    for s in net.switch_ids() {
        let attached = net.switch(s).expect("iterating ids").attached();
        let corner = if attached.is_empty() {
            Corner { row: 0, col: 0 }
        } else {
            let (mut sum_r, mut sum_c) = (0usize, 0usize);
            for p in attached {
                let (r, c) = grid.tile_coords(proc_tile[p.index()]);
                sum_r += r;
                sum_c += c;
            }
            Corner {
                row: (sum_r as f64 / attached.len() as f64).round() as usize,
                col: (sum_c as f64 / attached.len() as f64).round() as usize,
            }
        };
        switch_corner.push(corner);
    }
    let mut plan = Floorplan {
        grid,
        proc_tile,
        switch_corner,
    };

    let mut cost = plan.cost(net);
    let mut best = plan.clone();
    let mut best_cost = cost;
    let mut temperature = 2.0_f64.max(cost as f64 / 8.0);
    let cooling = 0.999_f64;

    for _ in 0..iterations {
        // Propose a move.
        enum Move {
            SwapProcs(usize, usize, usize, usize),
            MoveSwitch(usize, Corner, Corner),
        }
        let mv = if rng.gen_bool(0.5) && net.n_procs() >= 2 {
            let a = rng.gen_range(0..net.n_procs());
            let b = rng.gen_range(0..net.n_procs());
            Move::SwapProcs(a, b, plan.proc_tile[a], plan.proc_tile[b])
        } else {
            let s = rng.gen_range(0..net.n_switches());
            let old = plan.switch_corner[s];
            let new = Corner {
                row: rng.gen_range(0..=grid.rows()),
                col: rng.gen_range(0..=grid.cols()),
            };
            Move::MoveSwitch(s, old, new)
        };

        match &mv {
            Move::SwapProcs(a, b, ta, tb) => {
                plan.proc_tile[*a] = *tb;
                plan.proc_tile[*b] = *ta;
            }
            Move::MoveSwitch(s, _, new) => plan.switch_corner[*s] = *new,
        }

        let new_cost = plan.cost(net);
        let accept =
            new_cost <= cost || rng.gen_f64() < (-((new_cost - cost) as f64) / temperature).exp();
        if accept {
            cost = new_cost;
            if cost < best_cost {
                best_cost = cost;
                best = plan.clone();
            }
        } else {
            // Undo.
            match mv {
                Move::SwapProcs(a, b, ta, tb) => {
                    plan.proc_tile[a] = ta;
                    plan.proc_tile[b] = tb;
                }
                Move::MoveSwitch(s, old, _) => plan.switch_corner[s] = old,
            }
        }
        temperature = (temperature * cooling).max(1e-3);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_topo::regular;

    #[test]
    fn crossbar_places_at_zero_wire_cost_for_four_procs() {
        // Four tiles meet at the center corner: a 4-proc crossbar can be
        // wired entirely for free.
        let (net, _) = regular::crossbar(4).unwrap();
        let plan = place(&net, 1);
        assert_eq!(plan.cost(&net), 0);
        let area = plan.area(&net);
        assert_eq!(area.switch_area, 1.0);
        assert_eq!(area.link_area, 0.0);
    }

    #[test]
    fn crossbar_of_16_needs_wire() {
        // Only four tiles share any corner: a 16-proc crossbar must pay
        // attachment wiring — the megaswitch does not scale, which is why
        // the methodology partitions it.
        let (net, _) = regular::crossbar(16).unwrap();
        let plan = place(&net, 1);
        assert!(plan.cost(&net) > 0);
    }

    #[test]
    fn mesh_matches_analytic_baseline() {
        for (r, c) in [(2, 2), (3, 3)] {
            let (net, _) = regular::mesh(r, c).unwrap();
            let plan = place_with_iterations(&net, 7, 60_000);
            let area = plan.area(&net);
            let baseline = crate::mesh_baseline(r, c);
            assert_eq!(area.switch_area, baseline.switch_area);
            assert!(
                area.link_area <= baseline.link_area,
                "{r}x{c}: placed {} vs analytic {}",
                area.link_area,
                baseline.link_area
            );
        }
    }

    #[test]
    fn placement_is_deterministic_per_seed() {
        let (net, _) = regular::mesh(2, 3).unwrap();
        let a = place(&net, 9);
        let b = place(&net, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn link_lengths_match_area() {
        let (net, _) = regular::mesh(2, 2).unwrap();
        let plan = place(&net, 3);
        let total: u32 = plan.link_lengths(&net).iter().sum();
        assert_eq!(total as f64, plan.area(&net).link_area);
        assert_eq!(plan.link_lengths(&net).len(), net.n_links());
    }

    #[test]
    fn more_iterations_never_hurt() {
        let (net, _) = regular::mesh(3, 3).unwrap();
        let quick = place_with_iterations(&net, 5, 500);
        let long = place_with_iterations(&net, 5, 50_000);
        assert!(long.cost(&net) <= quick.cost(&net));
    }

    #[test]
    #[should_panic(expected = "no processors")]
    fn empty_network_rejected() {
        let mut net = nocsyn_topo::Network::new(0);
        net.add_switch();
        let _ = place(&net, 0);
    }
}
