//! Adversarial corpus for the text ingestion boundary (DESIGN.md §10):
//! hand-written hostile inputs assert a typed `Err` with the right line
//! (or a valid value) and never a panic, and `nocsyn-check` properties
//! pin the render/parse round trip as a fixpoint.

use nocsyn_check::{check_n, string_of, CaseError};
use nocsyn_model::{
    format_schedule, format_trace, parse_schedule, parse_trace, ParseErrorKind, ParseLimits,
    ParseOptions,
};

// --- hand-written corpus -------------------------------------------------

#[test]
fn empty_and_comment_only_inputs_are_missing_procs() {
    for input in ["", "\n\n", "# only a comment\n", "  \t \n# x\n\n"] {
        let e = parse_schedule(input).unwrap_err();
        assert!(
            matches!(e.kind, ParseErrorKind::MissingProcs),
            "{input:?}: {e:?}"
        );
        let e = parse_trace(input).unwrap_err();
        assert!(
            matches!(e.kind, ParseErrorKind::MissingProcs),
            "{input:?}: {e:?}"
        );
    }
}

#[test]
fn bom_and_crlf_parse_to_the_same_value_as_plain_text() {
    let plain = "procs 4\nphase bytes=64\n 0 -> 1\n";
    let bom_crlf = "\u{FEFF}procs 4\r\nphase bytes=64\r\n 0 -> 1\r\n";
    let a = parse_schedule(plain).expect("plain parses");
    let b = parse_schedule(bom_crlf).expect("BOM + CRLF parses");
    assert_eq!(format_schedule(&a), format_schedule(&b));
}

#[test]
fn duplicate_and_zero_procs_report_the_offending_line() {
    let e = parse_schedule("procs 4\nprocs 8\n").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::DuplicateProcs));
    assert_eq!(e.line, 2);

    let e = parse_schedule("# header\nprocs 0\n").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::ZeroProcs));
    assert_eq!(e.line, 2);

    let e = parse_trace("procs 2\nmsg 0 -> 1 start=0 finish=1\nprocs 2\n").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    assert_eq!(e.line, 3);
}

#[test]
fn usize_max_numbers_hit_limits_or_malformed_never_the_allocator() {
    // usize::MAX procs: limit, reported on the `procs` line.
    let e = parse_schedule("procs 18446744073709551615\n").unwrap_err();
    assert!(matches!(
        e.kind,
        ParseErrorKind::LimitExceeded { what: "procs", .. }
    ));
    assert_eq!(e.line, 1);

    // Beyond u64: not a number at all.
    let e = parse_schedule("procs 99999999999999999999\n").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));

    // Inverted interval at the u64 boundary: model error carried with
    // the line, no overflow on the way there.
    let e = parse_trace("procs 2\nmsg 0 -> 1 start=18446744073709551615 finish=0\n").unwrap_err();
    assert!(matches!(
        e.kind,
        ParseErrorKind::Model(nocsyn_model::ModelError::InvertedInterval { .. })
    ));
    assert_eq!(e.line, 2);

    // Interval touching the horizon is valid, and survives a round trip.
    let t =
        parse_trace("procs 2\nmsg 0 -> 1 start=18446744073709551614 finish=18446744073709551615\n")
            .expect("horizon interval is valid");
    assert_eq!(
        format_trace(&t),
        format_trace(&parse_trace(&format_trace(&t)).unwrap())
    );
}

#[test]
fn truncated_last_line_is_rejected_with_its_line_number() {
    let e = parse_schedule("procs 4\nphase\n 0 ->").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    assert_eq!(e.line, 3);

    let e = parse_trace("procs 4\nmsg 0 -> 1 start=0").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    assert_eq!(e.line, 2);
}

#[test]
fn interleaved_garbage_is_rejected_at_the_first_bad_line() {
    let e = parse_schedule("procs 4\nphase\n 0 -> 1\n\u{0}\u{1}garbage\n 2 -> 3\n").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    assert_eq!(e.line, 4);

    let e = parse_trace("procs 4\nmsg 0 -> 1 start=0 finish=1\n<<<>>>\n").unwrap_err();
    assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    assert_eq!(e.line, 3);
}

#[test]
fn hostile_sizes_are_rejected_before_allocation() {
    // Tight limits so the test is fast; the point is *which* check fires.
    let opts = ParseOptions::new().with_limits(
        ParseLimits::default()
            .with_max_procs(64)
            .with_max_phases(4)
            .with_max_messages(4),
    );

    let e = opts.parse_schedule("procs 65\n").unwrap_err();
    assert!(matches!(
        e.kind,
        ParseErrorKind::LimitExceeded { what: "procs", .. }
    ));

    let e = opts
        .parse_schedule("procs 4\nphase\n 0 -> 1\nphase\n 0 -> 1\nrepeat 3\n")
        .unwrap_err();
    assert!(matches!(
        e.kind,
        ParseErrorKind::LimitExceeded { what: "phases", .. }
    ));

    let e = opts
        .parse_trace(
            "procs 4\nmsg 0 -> 1 start=0 finish=1\nmsg 0 -> 1 start=0 finish=1\nmsg 0 -> 1 start=0 finish=1\nmsg 0 -> 1 start=0 finish=1\nmsg 0 -> 1 start=0 finish=1\n",
        )
        .unwrap_err();
    assert!(matches!(
        e.kind,
        ParseErrorKind::LimitExceeded {
            what: "messages",
            ..
        }
    ));
}

// --- properties ----------------------------------------------------------

/// Arbitrary UTF-8 (biased toward grammar tokens) never panics either
/// parser; it either parses or yields a typed error with a line number.
#[test]
fn parsers_never_panic_on_arbitrary_text() {
    check_n(
        "parsers_never_panic_on_arbitrary_text",
        400,
        string_of(0..2048),
        |s| {
            match parse_schedule(s) {
                Ok(_) => {}
                Err(e) => {
                    if e.line == 0 || e.kind.fingerprint().is_empty() {
                        return Err(CaseError::Fail(format!("degenerate schedule error: {e:?}")));
                    }
                }
            }
            match parse_trace(s) {
                Ok(_) => {}
                Err(e) => {
                    if e.line == 0 || e.kind.fingerprint().is_empty() {
                        return Err(CaseError::Fail(format!("degenerate trace error: {e:?}")));
                    }
                }
            }
            Ok(())
        },
    );
}

/// Whatever parses renders to a *fixpoint*: render -> parse -> render is
/// identity on the rendered text, for schedules and traces alike.
#[test]
fn render_parse_render_is_a_fixpoint() {
    check_n(
        "render_parse_render_is_a_fixpoint",
        400,
        string_of(0..2048),
        |s| {
            if let Ok(schedule) = parse_schedule(s) {
                let rendered = format_schedule(&schedule);
                let reparsed = parse_schedule(&rendered).map_err(|e| {
                    CaseError::Fail(format!("rendered schedule failed to re-parse: {e}"))
                })?;
                if format_schedule(&reparsed) != rendered {
                    return Err(CaseError::Fail(
                        "schedule render/parse is not a fixpoint".into(),
                    ));
                }
            }
            if let Ok(trace) = parse_trace(s) {
                let rendered = format_trace(&trace);
                let reparsed = parse_trace(&rendered).map_err(|e| {
                    CaseError::Fail(format!("rendered trace failed to re-parse: {e}"))
                })?;
                if format_trace(&reparsed) != rendered {
                    return Err(CaseError::Fail(
                        "trace render/parse is not a fixpoint".into(),
                    ));
                }
            }
            Ok(())
        },
    );
}
