//! Property tests for the RouteSet resource-bitset kernel (DESIGN.md
//! §12): the growable bitset algebra must agree with the reference
//! `BTreeSet` semantics, the resource interner must be a first-seen
//! bijection, and toggling must be an involution down to the empty set —
//! the facts that make the incremental Theorem-1 delta check exact.

use std::collections::BTreeSet;

use nocsyn_check::{check, check_assert, check_assert_eq, u64_in, usize_in, vec_of};
use nocsyn_model::{ResourceInterner, RouteSet};

fn model_of(set: &RouteSet) -> BTreeSet<usize> {
    set.iter().collect()
}

/// Union, intersection, xor, difference, popcounts and intersection
/// tests all agree with the `BTreeSet` reference across mixed widths,
/// and iteration is ascending.
#[test]
fn routeset_algebra_matches_btreeset() {
    // Ids up to 400 span multiple words and force width mismatches
    // between operands (RouteSet grows on demand; there is no universe).
    let gen = (
        vec_of(usize_in(0..400), 0..40),
        vec_of(usize_in(0..400), 0..40),
    );
    check(
        "routeset_algebra_matches_btreeset",
        gen,
        |(a_ids, b_ids)| {
            let a = RouteSet::from_ids(a_ids.iter().copied());
            let b = RouteSet::from_ids(b_ids.iter().copied());
            let ma: BTreeSet<usize> = a_ids.iter().copied().collect();
            let mb: BTreeSet<usize> = b_ids.iter().copied().collect();

            check_assert_eq!(a.len(), ma.len());
            check_assert_eq!(a.is_empty(), ma.is_empty());
            check_assert_eq!(a.intersection_len(&b), ma.intersection(&mb).count());
            check_assert_eq!(a.intersects(&b), ma.intersection(&mb).next().is_some());

            // Iteration order is ascending — the determinism keystone.
            let order: Vec<usize> = a.iter().collect();
            check_assert!(order.windows(2).all(|w| w[0] < w[1]));
            check_assert_eq!(model_of(&a), ma.clone());

            let mut u = a.clone();
            u.union_with(&b);
            check_assert_eq!(
                model_of(&u),
                ma.union(&mb).copied().collect::<BTreeSet<_>>()
            );

            let mut i = a.clone();
            i.intersect_with(&b);
            check_assert_eq!(
                model_of(&i),
                ma.intersection(&mb).copied().collect::<BTreeSet<_>>()
            );

            let mut x = a.clone();
            x.xor_with(&b);
            check_assert_eq!(
                model_of(&x),
                ma.symmetric_difference(&mb)
                    .copied()
                    .collect::<BTreeSet<_>>()
            );

            let mut d = a.clone();
            d.difference_with(&b);
            check_assert_eq!(
                model_of(&d),
                ma.difference(&mb).copied().collect::<BTreeSet<_>>()
            );
            Ok(())
        },
    );
}

/// Mutation sequences (insert / remove / toggle / clear) track the
/// reference model exactly, including the "did anything change"
/// returns, with equality ignoring how wide the backing storage grew.
#[test]
fn routeset_mutation_matches_btreeset() {
    let gen = vec_of((usize_in(0..4), usize_in(0..400)), 1..60);
    check("routeset_mutation_matches_btreeset", gen, |ops| {
        let mut set = RouteSet::new();
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for &(op, id) in ops {
            match op {
                0 => check_assert_eq!(set.insert(id), model.insert(id)),
                1 => check_assert_eq!(set.remove(id), model.remove(&id)),
                2 => {
                    let now_present = set.toggle(id);
                    let model_present = if model.contains(&id) {
                        model.remove(&id);
                        false
                    } else {
                        model.insert(id);
                        true
                    };
                    check_assert_eq!(now_present, model_present);
                }
                _ => {
                    set.clear();
                    model.clear();
                }
            }
            check_assert_eq!(set.len(), model.len());
            check_assert_eq!(set.contains(id), model.contains(&id));
        }
        check_assert_eq!(model_of(&set), model.clone());
        // Equality must see through trailing zero words: a set that
        // grew and emptied again equals a set that never grew.
        check_assert_eq!(
            set == RouteSet::new(),
            model.is_empty(),
            "grown-then-emptied set must equal a fresh one (model: {model:?})"
        );
        check_assert_eq!(set.clone(), RouteSet::from_ids(model.iter().copied()));
        Ok(())
    });
}

/// Toggling a multiset of ids an even number of times each lands back
/// on the empty set — the involution the reroute footprint-toggle
/// discipline relies on (apply route, revert route, nothing sticks).
#[test]
fn routeset_double_toggle_is_identity() {
    let gen = vec_of(usize_in(0..400), 0..50);
    check("routeset_double_toggle_is_identity", gen, |ids| {
        let mut set = RouteSet::new();
        for &id in ids {
            set.toggle(id);
        }
        let after_one_pass = set.clone();
        for &id in ids {
            set.toggle(id);
        }
        check_assert!(set.is_empty(), "double toggle left residue: {set:?}");
        check_assert_eq!(set.clone(), RouteSet::new());
        // One pass leaves exactly the odd-multiplicity ids.
        let mut odd: BTreeSet<usize> = BTreeSet::new();
        for &id in ids {
            if !odd.insert(id) {
                odd.remove(&id);
            }
        }
        check_assert_eq!(model_of(&after_one_pass), odd.clone());
        Ok(())
    });
}

/// The interner is a first-seen-order bijection: `intern` is idempotent
/// per key, `id` / `key` invert each other, and `keys()` lists every
/// distinct key in the order it first appeared.
#[test]
fn resource_interner_round_trip() {
    let gen = vec_of(u64_in(0..60), 0..80);
    check("resource_interner_round_trip", gen, |raw| {
        let mut interner = ResourceInterner::new();
        let mut first_seen: Vec<u64> = Vec::new();
        for &key in raw {
            let id = interner.intern(key);
            if !first_seen.contains(&key) {
                check_assert_eq!(id, first_seen.len(), "fresh key got a non-dense id");
                first_seen.push(key);
            }
            check_assert_eq!(interner.id(key), Some(id));
            check_assert_eq!(interner.key(id), key);
        }
        check_assert_eq!(interner.len(), first_seen.len());
        check_assert_eq!(interner.is_empty(), first_seen.is_empty());
        check_assert_eq!(interner.keys().to_vec(), first_seen.clone());
        // id and key are inverse bijections over the interned set.
        for (id, &key) in first_seen.iter().enumerate() {
            check_assert_eq!(interner.id(key), Some(id));
            check_assert_eq!(interner.key(id), key);
        }
        // Never-interned keys have no id.
        check_assert_eq!(interner.id(u64::MAX), None);
        Ok(())
    });
}
