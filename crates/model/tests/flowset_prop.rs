//! Property tests for the FlowSet bitset kernel (DESIGN.md §11): the
//! bitset algebra must agree with the reference `BTreeSet` semantics the
//! synthesis search was originally written against, and the interner must
//! be an order-preserving bijection — these two facts are what make the
//! kernel swap bit-identical.

use std::collections::BTreeSet;

use nocsyn_check::{check, check_assert, check_assert_eq, usize_in, vec_of};
use nocsyn_model::{Flow, FlowInterner, FlowSet};

/// Generator material: a universe size and raw ids to be reduced mod the
/// universe (so every id is in range whatever the size drawn).
fn ids_in_universe(universe: usize, raw: &[usize]) -> Vec<usize> {
    raw.iter().map(|&x| x % universe).collect()
}

fn model_of(set: &FlowSet) -> BTreeSet<usize> {
    set.iter().collect()
}

/// Union, intersection, xor, difference and popcounts all agree with the
/// `BTreeSet` reference, and iteration is ascending.
#[test]
fn flowset_algebra_matches_btreeset() {
    let gen = (
        usize_in(1..300),
        vec_of(usize_in(0..300), 0..40),
        vec_of(usize_in(0..300), 0..40),
    );
    check(
        "flowset_algebra_matches_btreeset",
        gen,
        |(n, raw_a, raw_b)| {
            let (a_ids, b_ids) = (ids_in_universe(*n, raw_a), ids_in_universe(*n, raw_b));
            let a = FlowSet::from_ids(*n, a_ids.iter().copied());
            let b = FlowSet::from_ids(*n, b_ids.iter().copied());
            let ma: BTreeSet<usize> = a_ids.iter().copied().collect();
            let mb: BTreeSet<usize> = b_ids.iter().copied().collect();

            check_assert_eq!(a.len(), ma.len());
            check_assert_eq!(a.is_empty(), ma.is_empty());
            check_assert_eq!(a.intersection_len(&b), ma.intersection(&mb).count());

            // Iteration order is ascending — the keystone determinism fact.
            let order: Vec<usize> = a.iter().collect();
            check_assert!(order.windows(2).all(|w| w[0] < w[1]));
            check_assert_eq!(model_of(&a), ma.clone());

            let mut u = a.clone();
            u.union_with(&b);
            check_assert_eq!(
                model_of(&u),
                ma.union(&mb).copied().collect::<BTreeSet<_>>()
            );

            let mut i = a.clone();
            i.intersect_with(&b);
            check_assert_eq!(
                model_of(&i),
                ma.intersection(&mb).copied().collect::<BTreeSet<_>>()
            );

            let mut x = a.clone();
            x.xor_with(&b);
            check_assert_eq!(
                model_of(&x),
                ma.symmetric_difference(&mb)
                    .copied()
                    .collect::<BTreeSet<_>>()
            );

            let mut d = a.clone();
            d.difference_with(&b);
            check_assert_eq!(
                model_of(&d),
                ma.difference(&mb).copied().collect::<BTreeSet<_>>()
            );
            Ok(())
        },
    );
}

/// Mutation sequences (insert / remove / toggle / clear) track the
/// reference model exactly, including the "did anything change" returns.
#[test]
fn flowset_mutation_matches_btreeset() {
    let gen = (
        usize_in(1..200),
        vec_of((usize_in(0..4), usize_in(0..200)), 1..60),
    );
    check("flowset_mutation_matches_btreeset", gen, |(n, ops)| {
        let mut set = FlowSet::new(*n);
        let mut model: BTreeSet<usize> = BTreeSet::new();
        for &(op, raw_id) in ops {
            let id = raw_id % *n;
            match op {
                0 => check_assert_eq!(set.insert(id), model.insert(id)),
                1 => check_assert_eq!(set.remove(id), model.remove(&id)),
                2 => {
                    let now_present = set.toggle(id);
                    let model_present = if model.contains(&id) {
                        model.remove(&id);
                        false
                    } else {
                        model.insert(id);
                        true
                    };
                    check_assert_eq!(now_present, model_present);
                }
                _ => {
                    set.clear();
                    model.clear();
                }
            }
            check_assert_eq!(set.len(), model.len());
            check_assert_eq!(set.contains(id), model.contains(&id));
        }
        check_assert_eq!(model_of(&set), model.clone());
        Ok(())
    });
}

/// The interner is an order-preserving bijection: ids are sorted-flow
/// ranks, `id` / `flow` invert each other, and `set_of` / `flows_of`
/// round-trip any member subset in lexicographic order.
#[test]
fn interner_round_trip() {
    let gen = vec_of((usize_in(0..12), usize_in(0..12)), 1..50);
    check("interner_round_trip", gen, |raw| {
        let flows: Vec<Flow> = raw
            .iter()
            .filter(|(s, d)| s != d)
            .map(|&(s, d)| Flow::from_indices(s, d))
            .collect();
        let interner = FlowInterner::from_flows(flows.iter().copied());

        // Sorted + deduplicated member list.
        let expected: BTreeSet<Flow> = flows.iter().copied().collect();
        check_assert_eq!(
            interner.flows().to_vec(),
            expected.iter().copied().collect::<Vec<_>>()
        );

        // id and flow are inverse bijections.
        for (i, &f) in interner.flows().iter().enumerate() {
            check_assert_eq!(interner.id(f), Some(i));
            check_assert_eq!(interner.flow(i), f);
        }

        // set_of / flows_of round-trip an arbitrary member subset: take
        // every other member.
        let subset: Vec<Flow> = interner.flows().iter().copied().step_by(2).collect();
        let set = interner.set_of(subset.iter().copied());
        check_assert_eq!(set.universe(), interner.len());
        let back: Vec<Flow> = interner.flows_of(&set).collect();
        check_assert_eq!(back, subset.clone());
        Ok(())
    });
}
