//! Property-based tests of the contention model's invariants
//! (DESIGN.md §6), on the in-repo `nocsyn-check` harness.

use nocsyn_check::{check, check_assert, check_assert_eq, u64_in, usize_in, vec_of, Gen, VecGen};

use nocsyn_model::{overlaps, CliqueSet, Message, OverlapRelation, ProcId, Trace};

/// Raw material for a trace of up to `max` messages over `n` procs with
/// bounded times: `(src, dst, start, duration)` tuples. Self-messages are
/// dropped during construction, mirroring the old proptest strategy.
type RawTrace = Vec<(usize, usize, u64, u64)>;

fn trace_gen(n: usize, max: usize) -> VecGen<impl Gen<Value = (usize, usize, u64, u64)>> {
    vec_of(
        (
            usize_in(0..n),
            usize_in(0..n),
            u64_in(0..500),
            u64_in(0..200),
        ),
        1..max,
    )
}

fn build_trace(n: usize, raw: &RawTrace) -> Trace {
    let mut t = Trace::new(n);
    for &(s, d, start, dur) in raw {
        if s != d {
            t.push(Message::new(ProcId(s), ProcId(d), start, start + dur).unwrap())
                .unwrap();
        }
    }
    t
}

/// The overlap relation matches the paper's Definition 3 formula, pair by
/// pair, and is symmetric.
#[test]
fn overlap_matches_definition() {
    check("overlap_matches_definition", trace_gen(8, 30), |raw| {
        let trace = build_trace(8, raw);
        let o = OverlapRelation::from_trace(&trace);
        let ids: Vec<_> = trace.message_ids().collect();
        for &a in &ids {
            for &b in &ids {
                if a == b {
                    continue;
                }
                let (m1, m2) = (&trace[a], &trace[b]);
                // Definition 3's four disjuncts.
                let def3 = (m2.start() <= m1.start() && m1.start() <= m2.finish())
                    || (m2.start() <= m1.finish() && m1.finish() <= m2.finish())
                    || (m1.start() <= m2.start() && m2.start() <= m1.finish())
                    || (m1.start() <= m2.finish() && m2.finish() <= m1.finish());
                check_assert_eq!(o.contains(a, b), def3);
                check_assert_eq!(o.contains(a, b), o.contains(b, a));
                check_assert_eq!(o.contains(a, b), overlaps(m1, m2));
            }
        }
        Ok(())
    });
}

/// Every contention pair comes from two overlapping messages and vice
/// versa (Definition 4 compression is lossless on flow pairs).
#[test]
fn contention_set_is_exact_flow_projection() {
    check(
        "contention_set_is_exact_flow_projection",
        trace_gen(6, 24),
        |raw| {
            let trace = build_trace(6, raw);
            let c = trace.contention_set();
            let msgs: Vec<_> = trace.messages().collect();
            for i in 0..msgs.len() {
                for j in i + 1..msgs.len() {
                    if msgs[i].overlaps(&msgs[j]) {
                        check_assert!(c.conflicts(msgs[i].flow(), msgs[j].flow()));
                    }
                }
            }
            for pair in c.iter() {
                let witnessed = msgs.iter().enumerate().any(|(i, a)| {
                    msgs.iter().enumerate().any(|(j, b)| {
                        i != j
                            && a.flow() == pair.first()
                            && b.flow() == pair.second()
                            && a.overlaps(b)
                    })
                });
                check_assert!(witnessed, "unwitnessed contention pair {}", pair);
            }
            Ok(())
        },
    );
}

/// Clique-set invariants: members of a clique pairwise overlap at a
/// common instant; the maximal set contains no dominated member; the
/// largest clique size equals the peak number of concurrently-live
/// distinct flows.
#[test]
fn clique_set_invariants() {
    check("clique_set_invariants", trace_gen(8, 24), |raw| {
        let trace = build_trace(8, raw);
        let k = CliqueSet::from_trace(&trace);
        let maximal = k.clone().into_maximal();

        // No dominated members.
        let cliques: Vec<_> = maximal.iter().collect();
        for (i, a) in cliques.iter().enumerate() {
            for (j, b) in cliques.iter().enumerate() {
                if i != j {
                    check_assert!(!a.is_subset(b), "dominated clique survived");
                }
            }
        }

        // Peak concurrency: sample the live set at every message start.
        let mut peak = 0usize;
        for m in trace.messages() {
            let live: std::collections::BTreeSet<_> = trace
                .messages()
                .filter(|x| x.interval().contains(m.start()))
                .map(|x| x.flow())
                .collect();
            peak = peak.max(live.len());
        }
        check_assert_eq!(maximal.max_clique_size(), peak);

        // max_overlap_with over a universal predicate is the max size.
        check_assert_eq!(maximal.max_overlap_with(|_| true), peak);
        Ok(())
    });
}

/// The maximum clique set covers the contention set: every contention
/// pair appears together in at least one clique.
#[test]
fn cliques_cover_contention() {
    check("cliques_cover_contention", trace_gen(6, 20), |raw| {
        let trace = build_trace(6, raw);
        let c = trace.contention_set();
        let k = trace.maximum_clique_set();
        for pair in c.iter() {
            let covered = k
                .iter()
                .any(|cl| cl.contains(pair.first()) && cl.contains(pair.second()));
            check_assert!(covered, "pair {} not covered by any clique", pair);
        }
        Ok(())
    });
}

/// Shifting a whole trace in time changes nothing structural.
#[test]
fn time_shift_invariance() {
    check(
        "time_shift_invariance",
        (trace_gen(6, 20), u64_in(0..10_000)),
        |(raw, shift)| {
            let trace = build_trace(6, raw);
            let mut shifted = Trace::new(trace.n_procs());
            for m in trace.messages() {
                shifted.push(m.shifted(*shift)).unwrap();
            }
            check_assert_eq!(trace.contention_set(), shifted.contention_set());
            check_assert_eq!(
                trace.maximum_clique_set().len(),
                shifted.maximum_clique_set().len()
            );
            Ok(())
        },
    );
}
