//! Deterministic, fast hashing for hot-path lookup tables.
//!
//! The synthesis inner loops key memo tables by small integers and by
//! bitset words ([`FlowSet`](crate::FlowSet) crossing sets, interned
//! resource keys). The standard library's default SipHash is designed to
//! resist hash-flooding from untrusted keys; these tables only ever hold
//! keys the search itself generated, so that robustness buys nothing and
//! costs a large fraction of every probe. [`FxBuildHasher`] swaps in the
//! rustc-hash ("Fx") word-at-a-time multiply-xor hash: a couple of ALU
//! ops per `u64`, and — unlike `RandomState` — with no per-process seed,
//! so table behavior is identical across runs by construction.
//!
//! Never use this state for maps keyed by attacker-controlled input; the
//! ingestion boundary (`nocsyn_model::text`) stays on SipHash.

use std::hash::{BuildHasher, Hasher};

/// The Fx multiply constant (golden-ratio derived, as in rustc-hash).
const K: u64 = 0x517c_c1b7_2722_0a95;

/// A [`BuildHasher`] producing [`FxHasher`]s with a fixed (zero) seed.
///
/// Drop-in third type parameter for `HashMap`/`HashSet` on trusted keys:
///
/// ```
/// use std::collections::HashMap;
/// use nocsyn_model::FxBuildHasher;
///
/// let mut memo: HashMap<u64, usize, FxBuildHasher> = HashMap::default();
/// memo.insert(42, 1);
/// assert_eq!(memo.get(&42), Some(&1));
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher { hash: 0 }
    }
}

/// Word-at-a-time multiply-xor hasher (the rustc-hash algorithm).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            // Mix the length so "ab" and "ab\0" stay distinct.
            self.add(u64::from_le_bytes(buf) ^ (rem.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.add(n as u64);
        self.add((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        FxBuildHasher.hash_one(value)
    }

    #[test]
    fn same_input_same_hash() {
        assert_eq!(hash_of(&0xDEAD_BEEFu64), hash_of(&0xDEAD_BEEFu64));
        assert_eq!(hash_of(&vec![1u64, 2, 3]), hash_of(&vec![1u64, 2, 3]));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&vec![1u64, 2]), hash_of(&vec![2u64, 1]));
        assert_ne!(hash_of(&"ab"), hash_of(&"ab\0"));
    }

    #[test]
    fn map_with_fx_state_behaves() {
        let mut map: std::collections::HashMap<Vec<u64>, usize, FxBuildHasher> =
            std::collections::HashMap::default();
        for i in 0..100u64 {
            map.insert(vec![i, i * i], i as usize);
        }
        for i in 0..100u64 {
            assert_eq!(map.get(&vec![i, i * i]), Some(&(i as usize)));
        }
        assert!(!map.contains_key(&vec![7]));
    }
}
