//! Content-addressed fingerprints: canonical serialization plus an
//! in-repo cryptographic-quality hash.
//!
//! The whole synthesis flow is a pure function of
//! `(pattern, config, seed)` — the same purity that makes same-seed runs
//! byte-identical also makes results *content-addressable*: a canonical
//! serialization of the inputs, hashed, is a key under which the
//! deterministic output can be cached and later byte-verified against a
//! fresh run. This module provides the two halves of that key:
//!
//! * [`Sha256`] / [`sha256`] — a hand-rolled FIPS 180-4 SHA-256, keeping
//!   the workspace hermetic (no external crates, same policy as the
//!   in-repo PRNG and property-test harness). Collision resistance is
//!   what lets a 32-byte [`Digest`] stand in for the full request.
//! * [`CanonicalForm`] — a named-field builder whose digest is invariant
//!   under field *ordering*: fields are sorted by `(name, value)` and
//!   length-framed before hashing, so two callers assembling the same
//!   logical request in different orders produce the same key, while
//!   `("ab", "c")` and `("a", "bc")` stay distinct.
//!
//! The canonical serialization of a schedule or trace is its rendered
//! text form ([`canonical_schedule`] / [`canonical_trace`]): the
//! renderers emit one fixed layout per parsed value, so any two input
//! texts that parse to the same pattern — different comments,
//! whitespace, `repeat` folding — canonicalize to identical bytes.
//!
//! ```
//! use nocsyn_model::{CanonicalForm, sha256};
//!
//! let a = CanonicalForm::new().field("seed", 7u64).field("restarts", 8u64);
//! let b = CanonicalForm::new().field("restarts", 8u64).field("seed", 7u64);
//! assert_eq!(a.digest(), b.digest());
//! assert_ne!(a.digest(), sha256(b"something else"));
//! ```

use std::fmt;

use crate::{PhaseSchedule, Trace};

/// Initial hash state: the first 32 bits of the fractional parts of the
/// square roots of the first 8 primes (FIPS 180-4 §5.3.3).
const H0: [u32; 8] = [
    0x6a09_e667,
    0xbb67_ae85,
    0x3c6e_f372,
    0xa54f_f53a,
    0x510e_527f,
    0x9b05_688c,
    0x1f83_d9ab,
    0x5be0_cd19,
];

/// Round constants: the first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes (FIPS 180-4 §4.2.2).
const K: [u32; 64] = [
    0x428a_2f98,
    0x7137_4491,
    0xb5c0_fbcf,
    0xe9b5_dba5,
    0x3956_c25b,
    0x59f1_11f1,
    0x923f_82a4,
    0xab1c_5ed5,
    0xd807_aa98,
    0x1283_5b01,
    0x2431_85be,
    0x550c_7dc3,
    0x72be_5d74,
    0x80de_b1fe,
    0x9bdc_06a7,
    0xc19b_f174,
    0xe49b_69c1,
    0xefbe_4786,
    0x0fc1_9dc6,
    0x240c_a1cc,
    0x2de9_2c6f,
    0x4a74_84aa,
    0x5cb0_a9dc,
    0x76f9_88da,
    0x983e_5152,
    0xa831_c66d,
    0xb003_27c8,
    0xbf59_7fc7,
    0xc6e0_0bf3,
    0xd5a7_9147,
    0x06ca_6351,
    0x1429_2967,
    0x27b7_0a85,
    0x2e1b_2138,
    0x4d2c_6dfc,
    0x5338_0d13,
    0x650a_7354,
    0x766a_0abb,
    0x81c2_c92e,
    0x9272_2c85,
    0xa2bf_e8a1,
    0xa81a_664b,
    0xc24b_8b70,
    0xc76c_51a3,
    0xd192_e819,
    0xd699_0624,
    0xf40e_3585,
    0x106a_a070,
    0x19a4_c116,
    0x1e37_6c08,
    0x2748_774c,
    0x34b0_bcb5,
    0x391c_0cb3,
    0x4ed8_aa4a,
    0x5b9c_ca4f,
    0x682e_6ff3,
    0x748f_82ee,
    0x78a5_636f,
    0x84c8_7814,
    0x8cc7_0208,
    0x90be_fffa,
    0xa450_6ceb,
    0xbef9_a3f7,
    0xc671_78f2,
];

/// A 256-bit digest, displayed as 64 lowercase hex characters.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest([u8; 32]);

impl Digest {
    /// The raw digest bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Lowercase hex rendering (64 characters).
    pub fn to_hex(&self) -> String {
        let mut out = String::with_capacity(64);
        for b in self.0 {
            let _ = fmt::Write::write_fmt(&mut out, format_args!("{b:02x}"));
        }
        out
    }

    /// Parses a 64-character hex string back into a digest. Returns
    /// `None` on any length or character problem — never panics, so it
    /// is safe on untrusted input (e.g. cache file names).
    pub fn from_hex(hex: &str) -> Option<Digest> {
        if hex.len() != 64 || !hex.is_ascii() {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in hex.as_bytes().chunks_exact(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Some(Digest(out))
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({self})")
    }
}

/// Streaming SHA-256 (FIPS 180-4).
///
/// ```
/// use nocsyn_model::Sha256;
/// let mut h = Sha256::new();
/// h.update(b"abc");
/// assert_eq!(
///     h.finalize().to_hex(),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Sha256::new()
    }
}

impl Sha256 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut rest = data;
        if self.buf_len > 0 {
            let take = rest.len().min(64 - self.buf_len);
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&rest[..take]);
            self.buf_len += take;
            rest = &rest[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                compress(&mut self.state, &block);
                self.buf_len = 0;
            }
            // Fully absorbed into the partial buffer: stop here, or the
            // tail copy below would clobber `buf_len`.
            if rest.is_empty() {
                return;
            }
        }
        let mut chunks = rest.chunks_exact(64);
        for chunk in &mut chunks {
            let mut block = [0u8; 64];
            block.copy_from_slice(chunk);
            compress(&mut self.state, &block);
        }
        let tail = chunks.remainder();
        self.buf[..tail.len()].copy_from_slice(tail);
        self.buf_len = tail.len();
    }

    /// Pads, finishes, and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0x00]);
        }
        // Manual final block: the 8 length bytes complete exactly one
        // block, which update() compresses for us.
        self.update(&bit_len.to_be_bytes());
        debug_assert_eq!(self.buf_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

/// One SHA-256 compression round over a 64-byte block.
fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, chunk) in block.chunks_exact(4).enumerate() {
        w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let t1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let t2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(t1);
        d = c;
        c = b;
        b = a;
        a = t1.wrapping_add(t2);
    }

    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Domain-separation tag hashed ahead of every [`CanonicalForm`], so
/// canonical-form digests can never collide with plain [`sha256`] calls
/// over the same bytes (and a future v2 framing can coexist).
const CANONICAL_TAG: &[u8] = b"nocsyn-canonical-v1";

/// A named-field canonical form whose digest is order-invariant.
///
/// Fields are `(name, value)` string pairs. [`CanonicalForm::digest`]
/// sorts them by `(name, value)` and hashes each with a length frame
/// (`len(name) ‖ name ‖ len(value) ‖ value`, lengths as 8-byte
/// little-endian), which makes the digest:
///
/// * **order-invariant** — any permutation of the same fields hashes
///   identically (the cache-key property: builders may assemble fields
///   in any order);
/// * **unambiguous** — the length framing separates
///   `("ab", "c")` from `("a", "bc")`, and values containing `=` or
///   newlines cannot smuggle extra fields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CanonicalForm {
    fields: Vec<(String, String)>,
}

impl CanonicalForm {
    /// An empty form.
    pub fn new() -> Self {
        CanonicalForm::default()
    }

    /// Adds a field (builder style). The value is captured via its
    /// `Display` rendering.
    #[must_use]
    pub fn field(mut self, name: impl Into<String>, value: impl fmt::Display) -> Self {
        self.push_field(name, value);
        self
    }

    /// Adds a field in place (loop style).
    pub fn push_field(&mut self, name: impl Into<String>, value: impl fmt::Display) {
        self.fields.push((name.into(), value.to_string()));
    }

    /// Number of fields added so far.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether no fields were added.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The order-invariant digest of the form (see the type docs for the
    /// framing).
    pub fn digest(&self) -> Digest {
        let mut sorted: Vec<&(String, String)> = self.fields.iter().collect();
        sorted.sort();
        let mut h = Sha256::new();
        h.update(CANONICAL_TAG);
        h.update(&(sorted.len() as u64).to_le_bytes());
        for (name, value) in sorted {
            h.update(&(name.len() as u64).to_le_bytes());
            h.update(name.as_bytes());
            h.update(&(value.len() as u64).to_le_bytes());
            h.update(value.as_bytes());
        }
        h.finalize()
    }

    /// Sorted human-readable rendering (`name=value` lines, with
    /// backslash and newline escaped) — for diagnostics only; the digest
    /// hashes the length-framed fields, not this text.
    pub fn render(&self) -> String {
        let mut sorted: Vec<&(String, String)> = self.fields.iter().collect();
        sorted.sort();
        let mut out = String::new();
        for (name, value) in sorted {
            out.push_str(name);
            out.push('=');
            for c in value.chars() {
                match c {
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c => out.push(c),
                }
            }
            out.push('\n');
        }
        out
    }
}

/// The canonical text form of a schedule: its rendered layout
/// ([`crate::format_schedule`]), one fixed byte sequence per parsed
/// value. Comments, blank lines, flow ordering quirks and `repeat`
/// folding in the original input all normalize away.
pub fn canonical_schedule(schedule: &PhaseSchedule) -> String {
    crate::text::format_schedule(schedule)
}

/// The canonical text form of a trace ([`crate::format_trace`]); the
/// trace keeps its messages sorted, so the rendering is canonical for
/// the same reason as [`canonical_schedule`].
pub fn canonical_trace(trace: &Trace) -> String {
    crate::text::format_trace(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 / NIST CAVP known-answer vectors.
    #[test]
    fn sha256_known_answers() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
        // One million 'a's — exercises many blocks and the length wrap.
        let mut h = Sha256::new();
        for _ in 0..1000 {
            h.update(&[b'a'; 1000]);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn streaming_matches_one_shot_at_every_split() {
        let data: Vec<u8> = (0..200u8).collect();
        let whole = sha256(&data);
        for split in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 199, 200] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), whole, "split at {split}");
        }
    }

    #[test]
    fn digest_hex_round_trips() {
        let d = sha256(b"round trip");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(d.to_hex().len(), 64);
        assert_eq!(d.to_string(), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest("));
        assert_eq!(Digest::from_hex("xyz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
        // Non-ASCII of the right byte length must not panic.
        assert_eq!(Digest::from_hex(&"é".repeat(32)), None);
    }

    #[test]
    fn canonical_form_is_order_invariant() {
        let a = CanonicalForm::new()
            .field("pattern", "procs 4\nphase\n  0 -> 1\n")
            .field("seed", 7u64)
            .field("restarts", 8u64);
        let b = CanonicalForm::new()
            .field("restarts", 8u64)
            .field("pattern", "procs 4\nphase\n  0 -> 1\n")
            .field("seed", 7u64);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.render(), b.render());
    }

    #[test]
    fn canonical_form_framing_is_unambiguous() {
        // Same concatenated bytes, different field boundaries.
        let ab_c = CanonicalForm::new().field("ab", "c");
        let a_bc = CanonicalForm::new().field("a", "bc");
        assert_ne!(ab_c.digest(), a_bc.digest());
        // A value containing separators cannot smuggle a field.
        let smuggle = CanonicalForm::new().field("k", "v\nseed=9");
        let two = CanonicalForm::new().field("k", "v").field("seed", 9u64);
        assert_ne!(smuggle.digest(), two.digest());
        // Field count is framed: one empty field != zero fields.
        assert_ne!(
            CanonicalForm::new().field("", "").digest(),
            CanonicalForm::new().digest()
        );
        // Domain separation from plain sha256.
        assert_ne!(CanonicalForm::new().digest(), sha256(b""));
    }

    #[test]
    fn canonical_form_tracks_len_and_renders_escapes() {
        let mut form = CanonicalForm::new();
        assert!(form.is_empty());
        form.push_field("z", "line1\nline2\\end");
        form.push_field("a", 1u64);
        assert_eq!(form.len(), 2);
        assert_eq!(form.render(), "a=1\nz=line1\\nline2\\\\end\n");
    }

    #[test]
    fn canonical_schedule_normalizes_equivalent_inputs() {
        let a = crate::parse_schedule("procs 4\nphase\n  0 -> 1\n# comment\n  2 -> 3\n")
            .expect("valid");
        let b = crate::parse_schedule("procs 4\n\n\nphase bytes=4096\n  0->1\n  2->3\n")
            .expect("valid");
        assert_eq!(canonical_schedule(&a), canonical_schedule(&b));
        let t = crate::parse_trace("procs 2\nmsg 0 -> 1 start=0 finish=5\n").expect("valid");
        assert!(canonical_trace(&t).starts_with("procs 2\n"));
    }
}
