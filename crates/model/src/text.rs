//! A small plain-text format for phase schedules.
//!
//! Lets patterns be written by hand, checked into repositories, and fed
//! to the `nocsyn` command-line tool without a serialization dependency:
//!
//! ```text
//! # streaming pipeline, 4 cores
//! procs 4
//!
//! phase bytes=4096 compute=500
//!   0 -> 1
//!   2 -> 3
//!
//! phase                      # defaults: 4096 bytes, no compute gap
//!   1 -> 2
//! repeat 3                   # repeat everything above, 3 times total
//! ```
//!
//! Grammar (line oriented; `#` starts a comment anywhere):
//!
//! * `procs <n>` — required before the first phase.
//! * `phase [bytes=<n>] [compute=<n>]` — opens a phase.
//! * `<src> -> <dst>` — adds a flow to the open phase.
//! * `repeat <k>` — repeats the schedule parsed so far `k` times total
//!   (may appear once, last).

use std::error::Error;
use std::fmt;

use crate::{Flow, ModelError, Phase, PhaseSchedule};

/// A parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The `procs` header is missing or appears after phases.
    MissingProcs,
    /// A directive or flow line could not be parsed.
    Malformed(String),
    /// A flow line appeared before any `phase` directive.
    FlowOutsidePhase,
    /// A semantic error from the model layer (self-loop, out of range,
    /// duplicate source...).
    Model(ModelError),
    /// `repeat` count must be at least 1.
    BadRepeat,
}

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MissingProcs => write!(f, "expected a `procs <n>` header first"),
            ParseErrorKind::Malformed(what) => write!(f, "cannot parse `{what}`"),
            ParseErrorKind::FlowOutsidePhase => {
                write!(f, "flow line outside any `phase` block")
            }
            ParseErrorKind::Model(e) => write!(f, "{e}"),
            ParseErrorKind::BadRepeat => write!(f, "repeat count must be at least 1"),
        }
    }
}

impl Error for ParseScheduleError {}

/// Parses the text format described at the [module level](self).
///
/// # Errors
///
/// [`ParseScheduleError`] with the offending line on any syntactic or
/// semantic problem.
pub fn parse_schedule(input: &str) -> Result<PhaseSchedule, ParseScheduleError> {
    let mut n_procs: Option<usize> = None;
    let mut schedule: Option<PhaseSchedule> = None;
    let mut open: Option<Phase> = None;
    let mut repeat: Option<usize> = None;

    let err = |line: usize, kind: ParseErrorKind| ParseScheduleError { line, kind };

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if repeat.is_some() {
            return Err(err(
                line_no,
                ParseErrorKind::Malformed("content after `repeat`".into()),
            ));
        }

        let mut tokens = line.split_whitespace();
        // Invariant: `line` is non-empty after trim (checked above), so
        // split_whitespace yields at least one token.
        let head = tokens.next().expect("non-empty line has a token");
        match head {
            "procs" => {
                if schedule.is_some() {
                    return Err(err(
                        line_no,
                        ParseErrorKind::Malformed("`procs` after phases began".into()),
                    ));
                }
                let n: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, ParseErrorKind::Malformed(line.into())))?;
                n_procs = Some(n);
            }
            "phase" => {
                let Some(n) = n_procs else {
                    return Err(err(line_no, ParseErrorKind::MissingProcs));
                };
                let schedule = schedule.get_or_insert_with(|| PhaseSchedule::new(n));
                if let Some(done) = open.take() {
                    schedule
                        .push(done)
                        .map_err(|e| err(line_no, ParseErrorKind::Model(e)))?;
                }
                let mut phase = Phase::new();
                for opt in tokens {
                    match opt.split_once('=') {
                        Some(("bytes", v)) => {
                            let bytes = v
                                .parse()
                                .map_err(|_| err(line_no, ParseErrorKind::Malformed(opt.into())))?;
                            phase = phase.with_bytes(bytes);
                        }
                        Some(("compute", v)) => {
                            let ticks = v
                                .parse()
                                .map_err(|_| err(line_no, ParseErrorKind::Malformed(opt.into())))?;
                            phase = phase.with_compute(ticks);
                        }
                        _ => {
                            return Err(err(line_no, ParseErrorKind::Malformed(opt.into())));
                        }
                    }
                }
                open = Some(phase);
            }
            "repeat" => {
                let k: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, ParseErrorKind::Malformed(line.into())))?;
                if k == 0 {
                    return Err(err(line_no, ParseErrorKind::BadRepeat));
                }
                repeat = Some(k);
            }
            _ => {
                // A flow line: `<src> -> <dst>` (whitespace optional
                // around the arrow).
                let joined: String = line.split_whitespace().collect();
                let Some((s, d)) = joined.split_once("->") else {
                    return Err(err(line_no, ParseErrorKind::Malformed(line.into())));
                };
                let (Ok(src), Ok(dst)) = (s.parse::<usize>(), d.parse::<usize>()) else {
                    return Err(err(line_no, ParseErrorKind::Malformed(line.into())));
                };
                let Some(phase) = open.as_mut() else {
                    return Err(err(line_no, ParseErrorKind::FlowOutsidePhase));
                };
                phase
                    .add(Flow::from_indices(src, dst))
                    .map_err(|e| err(line_no, ParseErrorKind::Model(e)))?;
            }
        }
    }

    let n =
        n_procs.ok_or_else(|| err(input.lines().count().max(1), ParseErrorKind::MissingProcs))?;
    let mut schedule = schedule.unwrap_or_else(|| PhaseSchedule::new(n));
    if let Some(done) = open.take() {
        let last = input.lines().count();
        schedule
            .push(done)
            .map_err(|e| err(last, ParseErrorKind::Model(e)))?;
    }
    Ok(match repeat {
        Some(k) => schedule.repeated(k),
        None => schedule,
    })
}

/// Parses a timed trace in the companion format: a `procs <n>` header
/// followed by one `msg <src> -> <dst> start=<t> finish=<t> [bytes=<n>]`
/// line per message.
///
/// ```
/// use nocsyn_model::text::parse_trace;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("procs 2\nmsg 0 -> 1 start=0 finish=100 bytes=64\n")?;
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.makespan().ticks(), 100);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`ParseScheduleError`] with the offending line on any problem.
pub fn parse_trace(input: &str) -> Result<crate::Trace, ParseScheduleError> {
    use crate::Message;

    let err = |line: usize, kind: ParseErrorKind| ParseScheduleError { line, kind };
    let mut trace: Option<crate::Trace> = None;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        // Invariant: `line` is non-empty after trim (checked above), so
        // split_whitespace yields at least one token.
        match tokens.next().expect("non-empty line has a token") {
            "procs" => {
                if trace.is_some() {
                    return Err(err(
                        line_no,
                        ParseErrorKind::Malformed("`procs` after messages began".into()),
                    ));
                }
                let n: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, ParseErrorKind::Malformed(line.into())))?;
                trace = Some(crate::Trace::new(n));
            }
            "msg" => {
                let Some(trace) = trace.as_mut() else {
                    return Err(err(line_no, ParseErrorKind::MissingProcs));
                };
                let rest: Vec<&str> = tokens.collect();
                // Expected shape: <src> -> <dst> start=.. finish=.. [bytes=..]
                let joined = rest.join(" ");
                let (endpoints, opts): (Vec<&str>, Vec<&str>) =
                    rest.iter().partition(|t| !t.contains('='));
                let ep = endpoints.join("");
                let Some((src, dst)) = ep.split_once("->") else {
                    return Err(err(line_no, ParseErrorKind::Malformed(joined)));
                };
                let (Ok(src), Ok(dst)) = (src.parse::<usize>(), dst.parse::<usize>()) else {
                    return Err(err(line_no, ParseErrorKind::Malformed(joined)));
                };
                let (mut start, mut finish, mut bytes) = (None, None, None);
                for opt in opts {
                    match opt.split_once('=') {
                        Some(("start", v)) => start = v.parse::<u64>().ok(),
                        Some(("finish", v)) => finish = v.parse::<u64>().ok(),
                        Some(("bytes", v)) => bytes = v.parse::<u32>().ok(),
                        _ => {
                            return Err(err(line_no, ParseErrorKind::Malformed(opt.into())));
                        }
                    }
                }
                let (Some(start), Some(finish)) = (start, finish) else {
                    return Err(err(
                        line_no,
                        ParseErrorKind::Malformed("msg needs start= and finish=".into()),
                    ));
                };
                let mut message =
                    Message::new(crate::ProcId(src), crate::ProcId(dst), start, finish)
                        .map_err(|e| err(line_no, ParseErrorKind::Model(e)))?;
                if let Some(b) = bytes {
                    message = message.with_bytes(b);
                }
                trace
                    .push(message)
                    .map_err(|e| err(line_no, ParseErrorKind::Model(e)))?;
            }
            other => {
                return Err(err(line_no, ParseErrorKind::Malformed(other.into())));
            }
        }
    }
    trace.ok_or_else(|| err(input.lines().count().max(1), ParseErrorKind::MissingProcs))
}

/// Renders a trace in the [`parse_trace`] format.
pub fn format_trace(trace: &crate::Trace) -> String {
    use std::fmt::Write as _;
    let mut out = format!("procs {}\n", trace.n_procs());
    for m in trace.messages() {
        let _ = writeln!(
            out,
            "msg {} -> {} start={} finish={} bytes={}",
            m.src().index(),
            m.dst().index(),
            m.start().ticks(),
            m.finish().ticks(),
            m.bytes()
        );
    }
    out
}

/// Renders a schedule back into the text format ([`parse_schedule`]'s
/// inverse up to comments and `repeat` folding).
pub fn format_schedule(schedule: &PhaseSchedule) -> String {
    use std::fmt::Write as _;
    let mut out = format!("procs {}\n", schedule.n_procs());
    for phase in schedule.iter() {
        let _ = write!(out, "\nphase bytes={}", phase.bytes());
        if phase.compute_ticks() > 0 {
            let _ = write!(out, " compute={}", phase.compute_ticks());
        }
        out.push('\n');
        for flow in phase.iter() {
            let _ = writeln!(out, "  {} -> {}", flow.src.index(), flow.dst.index());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a sample pattern
procs 4

phase bytes=128 compute=50
  0 -> 1    # with a trailing comment
  2 -> 3

phase
  1->0
repeat 2
";

    #[test]
    fn parses_the_sample() {
        let s = parse_schedule(SAMPLE).unwrap();
        assert_eq!(s.n_procs(), 4);
        assert_eq!(s.len(), 4); // 2 phases x repeat 2
        let phases: Vec<_> = s.iter().collect();
        assert_eq!(phases[0].bytes(), 128);
        assert_eq!(phases[0].compute_ticks(), 50);
        assert_eq!(phases[0].len(), 2);
        assert_eq!(phases[1].len(), 1);
        assert_eq!(phases[1].bytes(), 4096); // default
    }

    #[test]
    fn round_trips_through_format() {
        let s = parse_schedule(SAMPLE).unwrap();
        let text = format_schedule(&s);
        let reparsed = parse_schedule(&text).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let e = parse_schedule("procs 4\nphase\n  0 -> 0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(matches!(
            e.kind,
            ParseErrorKind::Model(ModelError::SelfLoop { .. })
        ));

        let e = parse_schedule("phase\n  0 -> 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, ParseErrorKind::MissingProcs));

        let e = parse_schedule("procs 4\n  0 -> 1\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::FlowOutsidePhase));

        let e = parse_schedule("procs 4\nphase\n  0 -> 1\nrepeat 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::BadRepeat));

        let e = parse_schedule("procs 4\nphase\n  zero -> 1\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));

        let e = parse_schedule("procs 4\nphase speed=9\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    }

    #[test]
    fn procs_after_phase_rejected() {
        let e = parse_schedule("procs 4\nphase\n 0 -> 1\nprocs 8\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    }

    #[test]
    fn out_of_range_flow_reports_model_error() {
        let e = parse_schedule("procs 2\nphase\n  0 -> 5\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::Model(ModelError::ProcOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_schedule_is_fine() {
        let s = parse_schedule("procs 3\n").unwrap();
        assert_eq!(s.n_procs(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn trace_round_trip() {
        let input =
            "procs 4\nmsg 0 -> 1 start=0 finish=100 bytes=64\nmsg 2 -> 3 start=50 finish=150\n";
        let trace = parse_trace(input).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.contention_set().len(), 1);
        let reparsed = parse_trace(&format_trace(&trace)).unwrap();
        assert_eq!(trace, reparsed);
    }

    #[test]
    fn trace_error_paths() {
        assert!(matches!(
            parse_trace("msg 0 -> 1 start=0 finish=1\n")
                .unwrap_err()
                .kind,
            ParseErrorKind::MissingProcs
        ));
        assert!(parse_trace("procs 2\nmsg 0 -> 1 start=5 finish=1\n").is_err());
        assert!(parse_trace("procs 2\nmsg 0 -> 1 finish=1\n").is_err());
        assert!(parse_trace("procs 2\nmsg 0 -> 1 start=0 finish=1 wat=2\n").is_err());
        assert!(parse_trace("procs 2\nblah\n").is_err());
        assert!(parse_trace("").is_err());
        // Out-of-range proc surfaces the model error.
        assert!(matches!(
            parse_trace("procs 2\nmsg 0 -> 9 start=0 finish=1\n")
                .unwrap_err()
                .kind,
            ParseErrorKind::Model(_)
        ));
    }

    #[test]
    fn display_of_errors() {
        let e = parse_schedule("phase\n").unwrap_err();
        assert!(e.to_string().contains("line 1"));
    }
}
