//! A small plain-text format for phase schedules.
//!
//! Lets patterns be written by hand, checked into repositories, and fed
//! to the `nocsyn` command-line tool without a serialization dependency:
//!
//! ```text
//! # streaming pipeline, 4 cores
//! procs 4
//!
//! phase bytes=4096 compute=500
//!   0 -> 1
//!   2 -> 3
//!
//! phase                      # defaults: 4096 bytes, no compute gap
//!   1 -> 2
//! repeat 3                   # repeat everything above, 3 times total
//! ```
//!
//! Grammar (line oriented; `#` starts a comment anywhere):
//!
//! * `procs <n>` — required before the first phase, exactly once.
//! * `phase [bytes=<n>] [compute=<n>]` — opens a phase.
//! * `<src> -> <dst>` — adds a flow to the open phase.
//! * `repeat <k>` — repeats the schedule parsed so far `k` times total
//!   (may appear once, last).
//!
//! # Ingestion guarantee
//!
//! These parsers sit on the trust boundary: schedule and trace files are
//! *untrusted input*, and the contention model downstream is only as
//! sound as what crosses this boundary. The crate therefore guarantees:
//!
//! **No input byte-sequence causes [`parse_schedule`] or [`parse_trace`]
//! to panic, allocate unboundedly, or loop forever.** Every failure is a
//! typed [`ParseScheduleError`] carrying the 1-based offending line.
//!
//! Resource consumption is bounded by [`ParseLimits`] (serving-grade
//! defaults; override through the [`ParseOptions`] builder): input
//! size, line length, process count, phase
//! count (after `repeat` expansion), and message/flow count are all
//! capped *before* the corresponding allocation happens, so a hostile
//! `procs 99999999999` or a `repeat`-bomb is rejected with
//! [`ParseErrorKind::LimitExceeded`] instead of exhausting memory.
//! Windows line endings and a leading UTF-8 BOM are accepted; all other
//! malformed bytes are rejected, never mis-ingested.

use std::error::Error;
use std::fmt;

use crate::{Flow, ModelError, Phase, PhaseSchedule};

/// Resource limits enforced while parsing untrusted schedule/trace text.
///
/// Defaults are serving-grade: generous enough for every workload in this
/// repository (the largest generated benchmark is a few thousand
/// messages), tight enough that a single request cannot exhaust the
/// memory of a shared synthesis service. All limits are checked *before*
/// the guarded allocation or expansion is performed.
///
/// ```
/// use nocsyn_model::{ParseErrorKind, ParseLimits, ParseOptions};
/// let tight = ParseOptions::new().with_limits(ParseLimits::default().with_max_procs(8));
/// let err = tight.parse_schedule("procs 9\n").unwrap_err();
/// assert!(matches!(err.kind, ParseErrorKind::LimitExceeded { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLimits {
    /// Largest accepted `procs <n>` value.
    pub max_procs: usize,
    /// Largest accepted phase count, *after* `repeat` expansion.
    pub max_phases: usize,
    /// Largest accepted message count (trace) or total flow count across
    /// all phases after `repeat` expansion (schedule).
    pub max_messages: usize,
    /// Longest accepted raw line, in bytes (comments included).
    pub max_line_len: usize,
    /// Largest accepted input, in bytes.
    pub max_input_bytes: usize,
}

impl Default for ParseLimits {
    fn default() -> Self {
        ParseLimits {
            max_procs: 1 << 20,        // 1 Mi end-nodes
            max_phases: 1 << 16,       // 64 Ki phases incl. repeats
            max_messages: 1 << 20,     // 1 Mi messages / flows
            max_line_len: 4096,        // bytes
            max_input_bytes: 16 << 20, // 16 MiB
        }
    }
}

impl ParseLimits {
    /// Replaces the `procs` cap.
    #[must_use]
    pub fn with_max_procs(mut self, n: usize) -> Self {
        self.max_procs = n;
        self
    }

    /// Replaces the phase-count cap (post-`repeat`).
    #[must_use]
    pub fn with_max_phases(mut self, n: usize) -> Self {
        self.max_phases = n;
        self
    }

    /// Replaces the message/flow-count cap.
    #[must_use]
    pub fn with_max_messages(mut self, n: usize) -> Self {
        self.max_messages = n;
        self
    }

    /// Replaces the line-length cap (bytes).
    #[must_use]
    pub fn with_max_line_len(mut self, n: usize) -> Self {
        self.max_line_len = n;
        self
    }

    /// Replaces the input-size cap (bytes).
    #[must_use]
    pub fn with_max_input_bytes(mut self, n: usize) -> Self {
        self.max_input_bytes = n;
        self
    }
}

/// Configured entry point for parsing untrusted schedule and trace
/// text — the single builder that replaces the old
/// `parse_*` / `parse_*_with` function pairs.
///
/// The zero-configuration calls stay as the free functions
/// [`parse_schedule`] and [`parse_trace`]; anything beyond the default
/// [`ParseLimits`] goes through here:
///
/// ```
/// use nocsyn_model::{ParseLimits, ParseOptions};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let opts = ParseOptions::new().with_limits(ParseLimits::default().with_max_procs(64));
/// let schedule = opts.parse_schedule("procs 4\nphase\n  0 -> 1\n")?;
/// let trace = opts.parse_trace("procs 2\nmsg 0 -> 1 start=0 finish=9\n")?;
/// assert_eq!(schedule.len(), 1);
/// assert_eq!(trace.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParseOptions {
    limits: ParseLimits,
}

impl ParseOptions {
    /// Options with the default [`ParseLimits`].
    pub fn new() -> Self {
        ParseOptions::default()
    }

    /// Replaces the resource limits enforced while parsing.
    #[must_use]
    pub fn with_limits(mut self, limits: ParseLimits) -> Self {
        self.limits = limits;
        self
    }

    /// The limits these options enforce.
    pub fn limits(&self) -> &ParseLimits {
        &self.limits
    }

    /// Parses a phase schedule (the format described at the
    /// [module level](self)) under these options.
    ///
    /// # Errors
    ///
    /// [`ParseScheduleError`] with the offending line on any syntactic,
    /// semantic or resource-limit problem. Never panics.
    pub fn parse_schedule(&self, input: &str) -> Result<PhaseSchedule, ParseScheduleError> {
        parse_schedule_impl(input, &self.limits)
    }

    /// Parses a timed trace (the companion `msg` format, see
    /// [`parse_trace`]) under these options.
    ///
    /// # Errors
    ///
    /// [`ParseScheduleError`] with the offending line on any problem.
    /// Never panics.
    pub fn parse_trace(&self, input: &str) -> Result<crate::Trace, ParseScheduleError> {
        parse_trace_impl(input, &self.limits)
    }
}

/// A parse failure, with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseScheduleError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// What went wrong.
    pub kind: ParseErrorKind,
}

/// The kinds of parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseErrorKind {
    /// The `procs` header is missing or appears after phases.
    MissingProcs,
    /// A second `procs` header appeared (the process count must be stated
    /// exactly once; silently re-binding it would re-scope every flow
    /// parsed since).
    DuplicateProcs,
    /// `procs 0` — a pattern needs at least one process.
    ZeroProcs,
    /// A directive or flow line could not be parsed.
    Malformed(String),
    /// A flow line appeared before any `phase` directive.
    FlowOutsidePhase,
    /// A semantic error from the model layer (self-loop, out of range,
    /// duplicate source...).
    Model(ModelError),
    /// `repeat` count must be at least 1.
    BadRepeat,
    /// A [`ParseLimits`] resource bound was exceeded; the offending
    /// quantity is named and both the requested and permitted values are
    /// carried for the caller's diagnostics.
    LimitExceeded {
        /// The limited quantity ("procs", "phases", "messages",
        /// "line bytes", "input bytes").
        what: &'static str,
        /// The value the input asked for.
        requested: u64,
        /// The configured bound it exceeded.
        limit: u64,
    },
}

impl fmt::Display for ParseScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MissingProcs => write!(f, "expected a `procs <n>` header first"),
            ParseErrorKind::DuplicateProcs => write!(f, "duplicate `procs` header"),
            ParseErrorKind::ZeroProcs => write!(f, "`procs` must be at least 1"),
            ParseErrorKind::Malformed(what) => write!(f, "cannot parse `{what}`"),
            ParseErrorKind::FlowOutsidePhase => {
                write!(f, "flow line outside any `phase` block")
            }
            ParseErrorKind::Model(e) => write!(f, "{e}"),
            ParseErrorKind::BadRepeat => write!(f, "repeat count must be at least 1"),
            ParseErrorKind::LimitExceeded {
                what,
                requested,
                limit,
            } => write!(f, "{what} {requested} exceeds the limit of {limit}"),
        }
    }
}

impl Error for ParseScheduleError {}

impl ParseScheduleError {
    /// The [`ParseErrorKind::fingerprint`] of this error's kind — the
    /// stable, value-free class id shared by every public error type in
    /// the workspace.
    pub fn fingerprint(&self) -> &'static str {
        self.kind.fingerprint()
    }
}

impl ParseErrorKind {
    /// A short, stable identifier for the error class — the fingerprint
    /// the fuzzing subsystem and telemetry deduplicate by. Unlike
    /// [`fmt::Display`], it never embeds input-derived values.
    pub fn fingerprint(&self) -> &'static str {
        match self {
            ParseErrorKind::MissingProcs => "missing-procs",
            ParseErrorKind::DuplicateProcs => "duplicate-procs",
            ParseErrorKind::ZeroProcs => "zero-procs",
            ParseErrorKind::Malformed(_) => "malformed",
            ParseErrorKind::FlowOutsidePhase => "flow-outside-phase",
            ParseErrorKind::Model(ModelError::InvertedInterval { .. }) => "model-inverted-interval",
            ParseErrorKind::Model(ModelError::SelfLoop { .. }) => "model-self-loop",
            ParseErrorKind::Model(ModelError::ProcOutOfRange { .. }) => "model-proc-out-of-range",
            ParseErrorKind::Model(ModelError::DuplicateSourceInPhase { .. }) => {
                "model-duplicate-source"
            }
            ParseErrorKind::Model(ModelError::DuplicateDestinationInPhase { .. }) => {
                "model-duplicate-destination"
            }
            ParseErrorKind::BadRepeat => "bad-repeat",
            ParseErrorKind::LimitExceeded { .. } => "limit-exceeded",
        }
    }
}

/// Strips a leading UTF-8 byte-order mark, which text editors on some
/// platforms prepend; it is presentation, not content.
fn strip_bom(input: &str) -> &str {
    input.strip_prefix('\u{feff}').unwrap_or(input)
}

/// Checks the whole-input and per-line byte budgets shared by both
/// parsers, returning the error for the first offending line.
fn check_input_budget(input: &str, limits: &ParseLimits) -> Result<(), ParseScheduleError> {
    if input.len() > limits.max_input_bytes {
        return Err(ParseScheduleError {
            line: 1,
            kind: ParseErrorKind::LimitExceeded {
                what: "input bytes",
                requested: input.len() as u64,
                limit: limits.max_input_bytes as u64,
            },
        });
    }
    for (idx, raw) in input.lines().enumerate() {
        if raw.len() > limits.max_line_len {
            return Err(ParseScheduleError {
                line: idx + 1,
                kind: ParseErrorKind::LimitExceeded {
                    what: "line bytes",
                    requested: raw.len() as u64,
                    limit: limits.max_line_len as u64,
                },
            });
        }
    }
    Ok(())
}

/// Parses a `procs` header value against the limits.
fn parse_procs_value(
    token: Option<&str>,
    line: &str,
    line_no: usize,
    limits: &ParseLimits,
) -> Result<usize, ParseScheduleError> {
    let err = |kind| ParseScheduleError {
        line: line_no,
        kind,
    };
    let n: usize = token
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| err(ParseErrorKind::Malformed(line.into())))?;
    if n == 0 {
        return Err(err(ParseErrorKind::ZeroProcs));
    }
    if n > limits.max_procs {
        return Err(err(ParseErrorKind::LimitExceeded {
            what: "procs",
            requested: n as u64,
            limit: limits.max_procs as u64,
        }));
    }
    Ok(n)
}

/// Parses the text format described at the [module level](self) under the
/// default [`ParseLimits`].
///
/// # Errors
///
/// [`ParseScheduleError`] with the offending line on any syntactic,
/// semantic or resource-limit problem. Never panics.
pub fn parse_schedule(input: &str) -> Result<PhaseSchedule, ParseScheduleError> {
    parse_schedule_impl(input, &ParseLimits::default())
}

fn parse_schedule_impl(
    input: &str,
    limits: &ParseLimits,
) -> Result<PhaseSchedule, ParseScheduleError> {
    let input = strip_bom(input);
    check_input_budget(input, limits)?;

    let mut n_procs: Option<usize> = None;
    let mut schedule: Option<PhaseSchedule> = None;
    let mut open: Option<Phase> = None;
    let mut repeat: Option<usize> = None;
    // Flows committed to closed phases plus the open phase, tracked so the
    // message cap is enforced incrementally, before `repeat` multiplies it.
    let mut n_flows: usize = 0;

    let err = |line: usize, kind: ParseErrorKind| ParseScheduleError { line, kind };

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if repeat.is_some() {
            return Err(err(
                line_no,
                ParseErrorKind::Malformed("content after `repeat`".into()),
            ));
        }

        let mut tokens = line.split_whitespace();
        // Invariant: `line` is non-empty after trim (checked above), so
        // split_whitespace yields at least one token. Destructure anyway —
        // defense in depth on the trust boundary beats an `expect`.
        let Some(head) = tokens.next() else {
            continue;
        };
        match head {
            "procs" => {
                if schedule.is_some() {
                    return Err(err(
                        line_no,
                        ParseErrorKind::Malformed("`procs` after phases began".into()),
                    ));
                }
                if n_procs.is_some() {
                    return Err(err(line_no, ParseErrorKind::DuplicateProcs));
                }
                n_procs = Some(parse_procs_value(tokens.next(), line, line_no, limits)?);
            }
            "phase" => {
                let Some(n) = n_procs else {
                    return Err(err(line_no, ParseErrorKind::MissingProcs));
                };
                let schedule = schedule.get_or_insert_with(|| PhaseSchedule::new(n));
                if let Some(done) = open.take() {
                    schedule
                        .push(done)
                        .map_err(|e| err(line_no, ParseErrorKind::Model(e)))?;
                }
                if schedule.len() + 1 > limits.max_phases {
                    return Err(err(
                        line_no,
                        ParseErrorKind::LimitExceeded {
                            what: "phases",
                            requested: schedule.len() as u64 + 1,
                            limit: limits.max_phases as u64,
                        },
                    ));
                }
                let mut phase = Phase::new();
                for opt in tokens {
                    match opt.split_once('=') {
                        Some(("bytes", v)) => {
                            let bytes = v
                                .parse()
                                .map_err(|_| err(line_no, ParseErrorKind::Malformed(opt.into())))?;
                            phase = phase.with_bytes(bytes);
                        }
                        Some(("compute", v)) => {
                            let ticks = v
                                .parse()
                                .map_err(|_| err(line_no, ParseErrorKind::Malformed(opt.into())))?;
                            phase = phase.with_compute(ticks);
                        }
                        _ => {
                            return Err(err(line_no, ParseErrorKind::Malformed(opt.into())));
                        }
                    }
                }
                open = Some(phase);
            }
            "repeat" => {
                let k: usize = tokens
                    .next()
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(line_no, ParseErrorKind::Malformed(line.into())))?;
                if k == 0 {
                    return Err(err(line_no, ParseErrorKind::BadRepeat));
                }
                // Bound the post-expansion size *before* `repeated` clones
                // anything: both the phase count and the total flow count
                // are multiplied by k.
                let phases_now =
                    schedule.as_ref().map_or(0, PhaseSchedule::len) + usize::from(open.is_some());
                if phases_now.saturating_mul(k) > limits.max_phases {
                    return Err(err(
                        line_no,
                        ParseErrorKind::LimitExceeded {
                            what: "phases",
                            requested: phases_now.saturating_mul(k) as u64,
                            limit: limits.max_phases as u64,
                        },
                    ));
                }
                if n_flows.saturating_mul(k) > limits.max_messages {
                    return Err(err(
                        line_no,
                        ParseErrorKind::LimitExceeded {
                            what: "messages",
                            requested: n_flows.saturating_mul(k) as u64,
                            limit: limits.max_messages as u64,
                        },
                    ));
                }
                repeat = Some(k);
            }
            _ => {
                // A flow line: `<src> -> <dst>` (whitespace optional
                // around the arrow).
                let joined: String = line.split_whitespace().collect();
                let Some((s, d)) = joined.split_once("->") else {
                    return Err(err(line_no, ParseErrorKind::Malformed(line.into())));
                };
                let (Ok(src), Ok(dst)) = (s.parse::<usize>(), d.parse::<usize>()) else {
                    return Err(err(line_no, ParseErrorKind::Malformed(line.into())));
                };
                let Some(phase) = open.as_mut() else {
                    return Err(err(line_no, ParseErrorKind::FlowOutsidePhase));
                };
                if n_flows + 1 > limits.max_messages {
                    return Err(err(
                        line_no,
                        ParseErrorKind::LimitExceeded {
                            what: "messages",
                            requested: n_flows as u64 + 1,
                            limit: limits.max_messages as u64,
                        },
                    ));
                }
                phase
                    .add(Flow::from_indices(src, dst))
                    .map_err(|e| err(line_no, ParseErrorKind::Model(e)))?;
                n_flows += 1;
            }
        }
    }

    let n =
        n_procs.ok_or_else(|| err(input.lines().count().max(1), ParseErrorKind::MissingProcs))?;
    let mut schedule = schedule.unwrap_or_else(|| PhaseSchedule::new(n));
    if let Some(done) = open.take() {
        let last = input.lines().count();
        schedule
            .push(done)
            .map_err(|e| err(last, ParseErrorKind::Model(e)))?;
    }
    Ok(match repeat {
        Some(k) => schedule.repeated(k),
        None => schedule,
    })
}

/// Parses a timed trace in the companion format under the default
/// [`ParseLimits`]: a `procs <n>` header followed by one
/// `msg <src> -> <dst> start=<t> finish=<t> [bytes=<n>]` line per
/// message.
///
/// ```
/// use nocsyn_model::text::parse_trace;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let trace = parse_trace("procs 2\nmsg 0 -> 1 start=0 finish=100 bytes=64\n")?;
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.makespan().ticks(), 100);
/// # Ok(())
/// # }
/// ```
///
/// # Errors
///
/// [`ParseScheduleError`] with the offending line on any problem. Never
/// panics.
pub fn parse_trace(input: &str) -> Result<crate::Trace, ParseScheduleError> {
    parse_trace_impl(input, &ParseLimits::default())
}

fn parse_trace_impl(input: &str, limits: &ParseLimits) -> Result<crate::Trace, ParseScheduleError> {
    use crate::Message;

    let input = strip_bom(input);
    check_input_budget(input, limits)?;

    let err = |line: usize, kind: ParseErrorKind| ParseScheduleError { line, kind };
    let mut trace: Option<crate::Trace> = None;

    for (idx, raw) in input.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        // Invariant: `line` is non-empty after trim (checked above), so
        // split_whitespace yields at least one token. Destructure anyway —
        // defense in depth on the trust boundary beats an `expect`.
        let Some(head) = tokens.next() else {
            continue;
        };
        match head {
            "procs" => {
                if let Some(t) = &trace {
                    let kind = if t.is_empty() {
                        ParseErrorKind::DuplicateProcs
                    } else {
                        ParseErrorKind::Malformed("`procs` after messages began".into())
                    };
                    return Err(err(line_no, kind));
                }
                let n = parse_procs_value(tokens.next(), line, line_no, limits)?;
                trace = Some(crate::Trace::new(n));
            }
            "msg" => {
                let Some(trace) = trace.as_mut() else {
                    return Err(err(line_no, ParseErrorKind::MissingProcs));
                };
                if trace.len() + 1 > limits.max_messages {
                    return Err(err(
                        line_no,
                        ParseErrorKind::LimitExceeded {
                            what: "messages",
                            requested: trace.len() as u64 + 1,
                            limit: limits.max_messages as u64,
                        },
                    ));
                }
                let rest: Vec<&str> = tokens.collect();
                // Expected shape: <src> -> <dst> start=.. finish=.. [bytes=..]
                let joined = rest.join(" ");
                let (endpoints, opts): (Vec<&str>, Vec<&str>) =
                    rest.iter().partition(|t| !t.contains('='));
                let ep = endpoints.join("");
                let Some((src, dst)) = ep.split_once("->") else {
                    return Err(err(line_no, ParseErrorKind::Malformed(joined)));
                };
                let (Ok(src), Ok(dst)) = (src.parse::<usize>(), dst.parse::<usize>()) else {
                    return Err(err(line_no, ParseErrorKind::Malformed(joined)));
                };
                let (mut start, mut finish, mut bytes) = (None, None, None);
                for opt in opts {
                    match opt.split_once('=') {
                        Some(("start", v)) => start = v.parse::<u64>().ok(),
                        Some(("finish", v)) => finish = v.parse::<u64>().ok(),
                        Some(("bytes", v)) => bytes = v.parse::<u32>().ok(),
                        _ => {
                            return Err(err(line_no, ParseErrorKind::Malformed(opt.into())));
                        }
                    }
                }
                let (Some(start), Some(finish)) = (start, finish) else {
                    return Err(err(
                        line_no,
                        ParseErrorKind::Malformed("msg needs start= and finish=".into()),
                    ));
                };
                let mut message =
                    Message::new(crate::ProcId(src), crate::ProcId(dst), start, finish)
                        .map_err(|e| err(line_no, ParseErrorKind::Model(e)))?;
                if let Some(b) = bytes {
                    message = message.with_bytes(b);
                }
                trace
                    .push(message)
                    .map_err(|e| err(line_no, ParseErrorKind::Model(e)))?;
            }
            other => {
                return Err(err(line_no, ParseErrorKind::Malformed(other.into())));
            }
        }
    }
    trace.ok_or_else(|| err(input.lines().count().max(1), ParseErrorKind::MissingProcs))
}

/// Renders a trace in the [`parse_trace`] format.
pub fn format_trace(trace: &crate::Trace) -> String {
    use std::fmt::Write as _;
    let mut out = format!("procs {}\n", trace.n_procs());
    for m in trace.messages() {
        let _ = writeln!(
            out,
            "msg {} -> {} start={} finish={} bytes={}",
            m.src().index(),
            m.dst().index(),
            m.start().ticks(),
            m.finish().ticks(),
            m.bytes()
        );
    }
    out
}

/// Renders a schedule back into the text format ([`parse_schedule`]'s
/// inverse up to comments and `repeat` folding).
pub fn format_schedule(schedule: &PhaseSchedule) -> String {
    use std::fmt::Write as _;
    let mut out = format!("procs {}\n", schedule.n_procs());
    for phase in schedule.iter() {
        let _ = write!(out, "\nphase bytes={}", phase.bytes());
        if phase.compute_ticks() > 0 {
            let _ = write!(out, " compute={}", phase.compute_ticks());
        }
        out.push('\n');
        for flow in phase.iter() {
            let _ = writeln!(out, "  {} -> {}", flow.src.index(), flow.dst.index());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a sample pattern
procs 4

phase bytes=128 compute=50
  0 -> 1    # with a trailing comment
  2 -> 3

phase
  1->0
repeat 2
";

    #[test]
    fn parses_the_sample() {
        let s = parse_schedule(SAMPLE).unwrap();
        assert_eq!(s.n_procs(), 4);
        assert_eq!(s.len(), 4); // 2 phases x repeat 2
        let phases: Vec<_> = s.iter().collect();
        assert_eq!(phases[0].bytes(), 128);
        assert_eq!(phases[0].compute_ticks(), 50);
        assert_eq!(phases[0].len(), 2);
        assert_eq!(phases[1].len(), 1);
        assert_eq!(phases[1].bytes(), 4096); // default
    }

    #[test]
    fn round_trips_through_format() {
        let s = parse_schedule(SAMPLE).unwrap();
        let text = format_schedule(&s);
        let reparsed = parse_schedule(&text).unwrap();
        assert_eq!(s, reparsed);
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let e = parse_schedule("procs 4\nphase\n  0 -> 0\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(matches!(
            e.kind,
            ParseErrorKind::Model(ModelError::SelfLoop { .. })
        ));

        let e = parse_schedule("phase\n  0 -> 1\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(e.kind, ParseErrorKind::MissingProcs));

        let e = parse_schedule("procs 4\n  0 -> 1\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::FlowOutsidePhase));

        let e = parse_schedule("procs 4\nphase\n  0 -> 1\nrepeat 0\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::BadRepeat));

        let e = parse_schedule("procs 4\nphase\n  zero -> 1\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));

        let e = parse_schedule("procs 4\nphase speed=9\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    }

    #[test]
    fn procs_after_phase_rejected() {
        let e = parse_schedule("procs 4\nphase\n 0 -> 1\nprocs 8\n").unwrap_err();
        assert!(matches!(e.kind, ParseErrorKind::Malformed(_)));
    }

    #[test]
    fn duplicate_procs_rejected_before_phases() {
        let e = parse_schedule("procs 4\nprocs 8\nphase\n 0 -> 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(matches!(e.kind, ParseErrorKind::DuplicateProcs));
        let e = parse_trace("procs 4\nprocs 8\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::Malformed(_) | ParseErrorKind::DuplicateProcs
        ));
    }

    #[test]
    fn zero_procs_rejected() {
        assert!(matches!(
            parse_schedule("procs 0\n").unwrap_err().kind,
            ParseErrorKind::ZeroProcs
        ));
        assert!(matches!(
            parse_trace("procs 0\n").unwrap_err().kind,
            ParseErrorKind::ZeroProcs
        ));
    }

    #[test]
    fn huge_procs_hits_the_limit_not_the_allocator() {
        let e = parse_schedule("procs 99999999999\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded { what: "procs", .. }
        ));
        let e = parse_trace("procs 99999999999\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded { what: "procs", .. }
        ));
    }

    #[test]
    fn repeat_bomb_is_rejected_before_expansion() {
        let input = "procs 4\nphase\n  0 -> 1\nrepeat 18446744073709551615\n";
        // usize::MAX repeats of one phase: must fail on the phase budget,
        // not attempt the clone.
        let e = parse_schedule(input).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded { what: "phases", .. }
        ));
        // A small phase count but huge flow amplification trips the
        // message budget instead.
        let opts = ParseOptions::new().with_limits(
            ParseLimits::default()
                .with_max_phases(usize::MAX)
                .with_max_messages(10),
        );
        let e = opts
            .parse_schedule("procs 4\nphase\n 0 -> 1\n 2 -> 3\nrepeat 6\n")
            .unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "messages",
                ..
            }
        ));
    }

    #[test]
    fn huge_repeat_of_an_empty_schedule_returns_immediately() {
        // Found by `nocsyn fuzz`: zero phases times any k passes the
        // size pre-checks (0 * k == 0), so `repeated` itself must not
        // loop k times over nothing.
        let s = parse_schedule("procs 4\nrepeat 99999999999\n").expect("valid, empty");
        assert!(s.is_empty());
        assert_eq!(s.n_procs(), 4);
    }

    #[test]
    fn per_line_and_whole_input_budgets() {
        let opts = ParseOptions::new().with_limits(ParseLimits::default().with_max_line_len(16));
        let long = format!("procs 4 {}\n", "#".repeat(64));
        let e = opts.parse_schedule(&long).unwrap_err();
        assert_eq!(e.line, 1);
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "line bytes",
                ..
            }
        ));

        let opts = ParseOptions::new().with_limits(ParseLimits::default().with_max_input_bytes(8));
        let e = opts
            .parse_trace("procs 2\nmsg 0 -> 1 start=0 finish=1\n")
            .unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "input bytes",
                ..
            }
        ));
    }

    #[test]
    fn message_budget_applies_per_msg_line() {
        let opts = ParseOptions::new().with_limits(ParseLimits::default().with_max_messages(1));
        let input = "procs 4\nmsg 0 -> 1 start=0 finish=1\nmsg 2 -> 3 start=0 finish=1\n";
        let e = opts.parse_trace(input).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(matches!(
            e.kind,
            ParseErrorKind::LimitExceeded {
                what: "messages",
                ..
            }
        ));
    }

    #[test]
    fn bom_and_crlf_are_tolerated() {
        let s = parse_schedule("\u{feff}procs 4\r\nphase\r\n  0 -> 1\r\n").unwrap();
        assert_eq!(s.n_procs(), 4);
        assert_eq!(s.len(), 1);
        let t = parse_trace("\u{feff}procs 2\r\nmsg 0 -> 1 start=0 finish=5\r\n").unwrap();
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn out_of_range_flow_reports_model_error() {
        let e = parse_schedule("procs 2\nphase\n  0 -> 5\n").unwrap_err();
        assert!(matches!(
            e.kind,
            ParseErrorKind::Model(ModelError::ProcOutOfRange { .. })
        ));
    }

    #[test]
    fn empty_schedule_is_fine() {
        let s = parse_schedule("procs 3\n").unwrap();
        assert_eq!(s.n_procs(), 3);
        assert!(s.is_empty());
    }

    #[test]
    fn trace_round_trip() {
        let input =
            "procs 4\nmsg 0 -> 1 start=0 finish=100 bytes=64\nmsg 2 -> 3 start=50 finish=150\n";
        let trace = parse_trace(input).unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.contention_set().len(), 1);
        let reparsed = parse_trace(&format_trace(&trace)).unwrap();
        assert_eq!(trace, reparsed);
    }

    #[test]
    fn trace_error_paths() {
        assert!(matches!(
            parse_trace("msg 0 -> 1 start=0 finish=1\n")
                .unwrap_err()
                .kind,
            ParseErrorKind::MissingProcs
        ));
        assert!(parse_trace("procs 2\nmsg 0 -> 1 start=5 finish=1\n").is_err());
        assert!(parse_trace("procs 2\nmsg 0 -> 1 finish=1\n").is_err());
        assert!(parse_trace("procs 2\nmsg 0 -> 1 start=0 finish=1 wat=2\n").is_err());
        assert!(parse_trace("procs 2\nblah\n").is_err());
        assert!(parse_trace("").is_err());
        // Out-of-range proc surfaces the model error.
        assert!(matches!(
            parse_trace("procs 2\nmsg 0 -> 9 start=0 finish=1\n")
                .unwrap_err()
                .kind,
            ParseErrorKind::Model(_)
        ));
    }

    #[test]
    fn fingerprints_are_stable_and_value_free() {
        let e = parse_schedule("procs 99999999999\n").unwrap_err();
        assert_eq!(e.kind.fingerprint(), "limit-exceeded");
        let e = parse_schedule("procs 4\nphase\n 0 -> 0\n").unwrap_err();
        assert_eq!(e.kind.fingerprint(), "model-self-loop");
        let e = parse_schedule("wat\n").unwrap_err();
        assert_eq!(e.kind.fingerprint(), "malformed");
    }

    #[test]
    fn options_expose_their_limits() {
        let opts = ParseOptions::new().with_limits(ParseLimits::default().with_max_procs(7));
        assert_eq!(opts.limits().max_procs, 7);
        assert_eq!(ParseOptions::default(), ParseOptions::new());
    }

    #[test]
    fn display_of_errors() {
        let e = parse_schedule("phase\n").unwrap_err();
        assert!(e.to_string().contains("line 1"));
        let e = parse_schedule("procs 99999999999\n").unwrap_err();
        assert!(e.to_string().contains("exceeds the limit"), "{e}");
    }
}
