//! Contention-freedom certificates: the machine-checkable evidence object
//! behind Theorem 1 verdicts.
//!
//! A [`Certificate`] packages everything an *independent* checker needs to
//! re-derive `C ∩ R = ∅` by set arithmetic alone: the maximum clique set
//! `K`, the explicit contention obligations (pairs of `C` whose routes
//! must be link-disjoint), the per-route resource sets (channel labels),
//! the per-channel crossing flow sets, and — when verification failed — a
//! concrete [`CertWitness`] per violated obligation. The whole payload is
//! self-bound by a [`CanonicalForm`] digest (the `binding` field), so any
//! tamper that does not recompute the digest is detected before any
//! semantic check runs, and optionally bound to a synthesis job by the
//! job-fingerprint digest of the serve cache.
//!
//! The schema is versioned (`nocsyn-cert-v1`), rendered deterministically
//! (same certificate value ⇒ same bytes), and parsed under the same
//! [`ParseLimits`] resource budget as pattern text — certificates cross
//! trust boundaries (disk caches, remote replies), so parsing is total
//! and bounded.

use std::collections::BTreeMap;
use std::fmt;

use crate::json::{self, JsonValue};
use crate::text::ParseLimits;
use crate::{CanonicalForm, Digest, Flow, FlowPair};

/// Schema tag accepted by this version of the certificate format.
pub const CERT_SCHEMA: &str = "nocsyn-cert-v1";

/// One violated obligation: a contention pair whose routes share channels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertWitness {
    /// The contention pair that collides.
    pub pair: FlowPair,
    /// The shared channel labels (sorted, deduplicated).
    pub shared: Vec<String>,
}

/// A deterministic, self-bound contention-freedom certificate.
///
/// Field order in memory is irrelevant: rendering and the binding digest
/// both normalize (sort) every collection, so two equal certificate
/// values always produce identical bytes and identical digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Process count of the pattern the certificate speaks about.
    pub n_procs: usize,
    /// The verdict the certificate claims to prove.
    pub contention_free: bool,
    /// The maximum clique set `K` (each clique a set of flows).
    pub cliques: Vec<Vec<Flow>>,
    /// The `C ∩ R = ∅` obligations: contention pairs with both ends routed.
    pub obligations: Vec<FlowPair>,
    /// Per-route resource sets: sorted channel labels each flow crosses.
    pub routes: BTreeMap<Flow, Vec<String>>,
    /// Per-channel crossing flow sets (the inverse of `routes`).
    pub crossings: BTreeMap<String, Vec<Flow>>,
    /// Concrete collisions, non-empty iff `contention_free` is false.
    pub witnesses: Vec<CertWitness>,
    /// Hex digest of the synthesis job this certificate is bound to, if
    /// it was emitted for a cacheable job.
    pub job: Option<String>,
    /// The binding digest claimed by the parsed text (`None` on freshly
    /// built certificates; rendering always recomputes).
    pub claimed_binding: Option<String>,
}

fn flow_key(f: Flow) -> String {
    format!("{}>{}", f.src.index(), f.dst.index())
}

fn pair_key(p: FlowPair) -> String {
    format!("{}|{}", flow_key(p.first()), flow_key(p.second()))
}

impl Certificate {
    /// The payload digest binding every semantic field together.
    ///
    /// Computed over a [`CanonicalForm`] whose fields are normalized
    /// renderings of each collection, so it is independent of in-memory
    /// ordering and of JSON whitespace.
    pub fn binding(&self) -> Digest {
        let mut cliques: Vec<String> = self
            .cliques
            .iter()
            .map(|c| {
                let mut flows: Vec<String> = c.iter().map(|f| flow_key(*f)).collect();
                flows.sort();
                flows.join(",")
            })
            .collect();
        cliques.sort();
        let mut obligations: Vec<String> = self.obligations.iter().map(|p| pair_key(*p)).collect();
        obligations.sort();
        let routes: Vec<String> = self
            .routes
            .iter()
            .map(|(f, chans)| format!("{}:{}", flow_key(*f), chans.join(",")))
            .collect();
        let crossings: Vec<String> = self
            .crossings
            .iter()
            .map(|(ch, flows)| {
                let keys: Vec<String> = flows.iter().map(|f| flow_key(*f)).collect();
                format!("{}:{}", ch, keys.join(","))
            })
            .collect();
        let mut witnesses: Vec<String> = self
            .witnesses
            .iter()
            .map(|w| format!("{}:{}", pair_key(w.pair), w.shared.join(",")))
            .collect();
        witnesses.sort();
        CanonicalForm::new()
            .field("schema", CERT_SCHEMA)
            .field("n_procs", self.n_procs)
            .field("contention_free", self.contention_free)
            .field("cliques", cliques.join(";"))
            .field("obligations", obligations.join(";"))
            .field("routes", routes.join(";"))
            .field("crossings", crossings.join(";"))
            .field("witnesses", witnesses.join(";"))
            .field("job", self.job.as_deref().unwrap_or("none"))
            .digest()
    }

    /// Renders the certificate as a deterministic single-line JSON object
    /// with a freshly computed `binding` digest.
    pub fn to_json(&self) -> String {
        let flow_json = |f: &Flow| {
            JsonValue::array([
                JsonValue::from(f.src.index()),
                JsonValue::from(f.dst.index()),
            ])
        };
        let mut cliques: Vec<Vec<Flow>> = self
            .cliques
            .iter()
            .map(|c| {
                let mut c = c.clone();
                c.sort();
                c
            })
            .collect();
        cliques.sort();
        let mut obligations = self.obligations.clone();
        obligations.sort();
        let mut witnesses = self.witnesses.clone();
        witnesses.sort_by_key(|w| w.pair);
        let mut fields = vec![
            ("schema", JsonValue::from(CERT_SCHEMA)),
            ("n_procs", JsonValue::from(self.n_procs)),
            ("contention_free", JsonValue::from(self.contention_free)),
            (
                "cliques",
                JsonValue::array(
                    cliques
                        .iter()
                        .map(|c| JsonValue::array(c.iter().map(flow_json))),
                ),
            ),
            (
                "obligations",
                JsonValue::array(
                    obligations
                        .iter()
                        .map(|p| JsonValue::array([flow_json(&p.first()), flow_json(&p.second())])),
                ),
            ),
            (
                "routes",
                JsonValue::array(self.routes.iter().map(|(f, chans)| {
                    JsonValue::object([
                        ("flow", flow_json(f)),
                        (
                            "channels",
                            JsonValue::array(chans.iter().map(|c| JsonValue::from(c.as_str()))),
                        ),
                    ])
                })),
            ),
            (
                "crossings",
                JsonValue::array(self.crossings.iter().map(|(ch, flows)| {
                    JsonValue::object([
                        ("channel", JsonValue::from(ch.as_str())),
                        ("flows", JsonValue::array(flows.iter().map(flow_json))),
                    ])
                })),
            ),
            (
                "witnesses",
                JsonValue::array(witnesses.iter().map(|w| {
                    JsonValue::object([
                        ("flow_a", flow_json(&w.pair.first())),
                        ("flow_b", flow_json(&w.pair.second())),
                        (
                            "shared",
                            JsonValue::array(w.shared.iter().map(|c| JsonValue::from(c.as_str()))),
                        ),
                    ])
                })),
            ),
        ];
        if let Some(job) = &self.job {
            fields.push(("job", JsonValue::from(job.as_str())));
        }
        fields.push(("binding", JsonValue::from(self.binding().to_hex())));
        JsonValue::object(fields).to_string()
    }

    /// Whether the binding digest claimed by the parsed text matches a
    /// recomputation over the parsed payload. Freshly built certificates
    /// (no claimed binding) verify trivially.
    pub fn verify_binding(&self) -> bool {
        match &self.claimed_binding {
            None => true,
            Some(claimed) => *claimed == self.binding().to_hex(),
        }
    }

    /// Parses certificate text under the given resource limits.
    ///
    /// Total and bounded: any input — hostile, truncated, or garbage —
    /// yields a typed [`CertError`] with a stable fingerprint, never a
    /// panic. Semantic validation (binding, obligations, disjointness)
    /// is the checker's job; this only enforces shape and budgets.
    ///
    /// # Errors
    ///
    /// [`CertError`] on oversized input, malformed JSON, an unsupported
    /// schema tag, or a missing/ill-typed field.
    pub fn parse(text: &str, limits: &ParseLimits) -> Result<Certificate, CertError> {
        if text.len() > limits.max_input_bytes {
            return Err(CertError::LimitExceeded("input bytes"));
        }
        let value = json::parse(text).map_err(|e| CertError::Json {
            fingerprint: e.fingerprint(),
            detail: e.to_string(),
        })?;
        if value.as_object().is_none() {
            return Err(CertError::BadField("certificate"));
        }
        let schema = str_field(&value, "schema")?;
        if schema != CERT_SCHEMA {
            return Err(CertError::SchemaUnsupported);
        }
        let n_procs = usize_field(&value, "n_procs")?;
        if n_procs == 0 || n_procs > limits.max_procs {
            return Err(CertError::LimitExceeded("n_procs"));
        }
        let contention_free = value
            .get("contention_free")
            .ok_or(CertError::MissingField("contention_free"))?
            .as_bool()
            .ok_or(CertError::BadField("contention_free"))?;
        // Every flow or channel mention costs input bytes, so the input
        // budget already bounds memory; the message budget additionally
        // bounds element counts the way pattern parsing does.
        let mut mentions = Budget {
            left: limits.max_messages,
        };

        let mut cliques = Vec::new();
        for c in array_field(&value, "cliques")? {
            let members = c.as_array().ok_or(CertError::BadField("cliques"))?;
            let mut clique = Vec::new();
            for m in members {
                clique.push(parse_flow(m, n_procs, &mut mentions)?);
            }
            cliques.push(clique);
        }

        let mut obligations = Vec::new();
        for o in array_field(&value, "obligations")? {
            let ends = o.as_array().ok_or(CertError::BadField("obligations"))?;
            if ends.len() != 2 {
                return Err(CertError::BadField("obligations"));
            }
            let a = parse_flow(&ends[0], n_procs, &mut mentions)?;
            let b = parse_flow(&ends[1], n_procs, &mut mentions)?;
            obligations.push(FlowPair::new(a, b));
        }

        let mut routes = BTreeMap::new();
        for r in array_field(&value, "routes")? {
            let flow = parse_flow(
                r.get("flow").ok_or(CertError::MissingField("flow"))?,
                n_procs,
                &mut mentions,
            )?;
            let chans = parse_channels(r.get("channels"), "channels", &mut mentions)?;
            if routes.insert(flow, chans).is_some() {
                return Err(CertError::BadField("routes"));
            }
        }

        let mut crossings = BTreeMap::new();
        for x in array_field(&value, "crossings")? {
            let ch = x
                .get("channel")
                .and_then(|v| v.as_str())
                .ok_or(CertError::BadField("crossings"))?;
            check_channel(ch)?;
            let mut flows = Vec::new();
            for f in x
                .get("flows")
                .and_then(|v| v.as_array())
                .ok_or(CertError::BadField("crossings"))?
            {
                flows.push(parse_flow(f, n_procs, &mut mentions)?);
            }
            if crossings.insert(ch.to_string(), flows).is_some() {
                return Err(CertError::BadField("crossings"));
            }
        }

        let mut witnesses = Vec::new();
        for w in array_field(&value, "witnesses")? {
            let a = parse_flow(
                w.get("flow_a").ok_or(CertError::MissingField("flow_a"))?,
                n_procs,
                &mut mentions,
            )?;
            let b = parse_flow(
                w.get("flow_b").ok_or(CertError::MissingField("flow_b"))?,
                n_procs,
                &mut mentions,
            )?;
            let shared = parse_channels(w.get("shared"), "shared", &mut mentions)?;
            witnesses.push(CertWitness {
                pair: FlowPair::new(a, b),
                shared,
            });
        }

        let job = match value.get("job") {
            None => None,
            Some(v) => {
                let hex = v.as_str().ok_or(CertError::BadField("job"))?;
                if Digest::from_hex(hex).is_none() {
                    return Err(CertError::BadField("job"));
                }
                Some(hex.to_string())
            }
        };
        let binding = str_field(&value, "binding")?;
        if Digest::from_hex(binding).is_none() {
            return Err(CertError::BadField("binding"));
        }

        Ok(Certificate {
            n_procs,
            contention_free,
            cliques,
            obligations,
            routes,
            crossings,
            witnesses,
            job,
            claimed_binding: Some(binding.to_string()),
        })
    }
}

/// Remaining element-mention budget during parsing.
struct Budget {
    left: usize,
}

impl Budget {
    fn spend(&mut self) -> Result<(), CertError> {
        if self.left == 0 {
            return Err(CertError::LimitExceeded("elements"));
        }
        self.left -= 1;
        Ok(())
    }
}

fn str_field<'a>(value: &'a JsonValue, name: &'static str) -> Result<&'a str, CertError> {
    value
        .get(name)
        .ok_or(CertError::MissingField(name))?
        .as_str()
        .ok_or(CertError::BadField(name))
}

fn usize_field(value: &JsonValue, name: &'static str) -> Result<usize, CertError> {
    let raw = value
        .get(name)
        .ok_or(CertError::MissingField(name))?
        .as_u64()
        .ok_or(CertError::BadField(name))?;
    usize::try_from(raw).map_err(|_| CertError::BadField(name))
}

fn array_field<'a>(value: &'a JsonValue, name: &'static str) -> Result<&'a [JsonValue], CertError> {
    value
        .get(name)
        .ok_or(CertError::MissingField(name))?
        .as_array()
        .ok_or(CertError::BadField(name))
}

fn parse_flow(v: &JsonValue, n_procs: usize, budget: &mut Budget) -> Result<Flow, CertError> {
    budget.spend()?;
    let ends = v.as_array().ok_or(CertError::BadField("flow"))?;
    if ends.len() != 2 {
        return Err(CertError::BadField("flow"));
    }
    let src = ends[0]
        .as_u64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or(CertError::BadField("flow"))?;
    let dst = ends[1]
        .as_u64()
        .and_then(|n| usize::try_from(n).ok())
        .ok_or(CertError::BadField("flow"))?;
    if src >= n_procs || dst >= n_procs {
        return Err(CertError::BadField("flow"));
    }
    Ok(Flow::from_indices(src, dst))
}

fn check_channel(label: &str) -> Result<(), CertError> {
    if label.is_empty() || label.len() > 64 || label.contains([',', ';', ':']) {
        return Err(CertError::BadField("channel"));
    }
    Ok(())
}

fn parse_channels(
    v: Option<&JsonValue>,
    name: &'static str,
    budget: &mut Budget,
) -> Result<Vec<String>, CertError> {
    let items = v
        .and_then(|v| v.as_array())
        .ok_or(CertError::BadField(name))?;
    let mut chans = Vec::new();
    for item in items {
        budget.spend()?;
        let label = item.as_str().ok_or(CertError::BadField(name))?;
        check_channel(label)?;
        chans.push(label.to_string());
    }
    Ok(chans)
}

/// Why certificate text was rejected at the parsing boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertError {
    /// The text is not well-formed JSON; carries the JSON parser's own
    /// stable fingerprint.
    Json {
        /// The JSON parser's stable error class.
        fingerprint: &'static str,
        /// Human-readable position/cause.
        detail: String,
    },
    /// A required field is absent.
    MissingField(&'static str),
    /// A field is present but ill-typed or out of range.
    BadField(&'static str),
    /// The schema tag is not `nocsyn-cert-v1`.
    SchemaUnsupported,
    /// A resource budget from [`ParseLimits`] was exceeded.
    LimitExceeded(&'static str),
}

impl CertError {
    /// Stable kebab-case class id (shared namespace with every other
    /// public error type; fuzzing dedups crashes by this).
    pub fn fingerprint(&self) -> &'static str {
        match self {
            CertError::Json { fingerprint, .. } => fingerprint,
            CertError::MissingField(_) => "cert-missing-field",
            CertError::BadField(_) => "cert-bad-field",
            CertError::SchemaUnsupported => "cert-schema-unsupported",
            CertError::LimitExceeded(_) => "limit-exceeded",
        }
    }
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Json { detail, .. } => write!(f, "certificate is not JSON: {detail}"),
            CertError::MissingField(name) => write!(f, "certificate field `{name}` is missing"),
            CertError::BadField(name) => write!(f, "certificate field `{name}` is invalid"),
            CertError::SchemaUnsupported => {
                write!(f, "certificate schema is not `{CERT_SCHEMA}`")
            }
            CertError::LimitExceeded(what) => {
                write!(f, "certificate exceeds the `{what}` budget")
            }
        }
    }
}

impl std::error::Error for CertError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Certificate {
        let f01 = Flow::from_indices(0, 1);
        let f23 = Flow::from_indices(2, 3);
        let mut routes = BTreeMap::new();
        routes.insert(f01, vec!["L0+".to_string()]);
        routes.insert(f23, vec!["L1-".to_string()]);
        let mut crossings = BTreeMap::new();
        crossings.insert("L0+".to_string(), vec![f01]);
        crossings.insert("L1-".to_string(), vec![f23]);
        Certificate {
            n_procs: 4,
            contention_free: true,
            cliques: vec![vec![f01, f23]],
            obligations: vec![FlowPair::new(f01, f23)],
            routes,
            crossings,
            witnesses: Vec::new(),
            job: None,
            claimed_binding: None,
        }
    }

    #[test]
    fn round_trip_preserves_value_and_binding() {
        let cert = sample();
        let text = cert.to_json();
        let parsed = Certificate::parse(&text, &ParseLimits::default()).expect("round trip");
        assert!(parsed.verify_binding());
        assert_eq!(parsed.binding(), cert.binding());
        assert_eq!(parsed.to_json(), text, "render is a fixed point");
    }

    #[test]
    fn rendering_is_order_invariant() {
        let mut shuffled = sample();
        shuffled.cliques[0].reverse();
        shuffled.obligations.reverse();
        assert_eq!(shuffled.to_json(), sample().to_json());
        assert_eq!(shuffled.binding(), sample().binding());
    }

    #[test]
    fn any_payload_tamper_changes_the_binding() {
        let base = sample().binding();
        let mut a = sample();
        a.contention_free = false;
        let mut b = sample();
        b.obligations.clear();
        let mut c = sample();
        c.routes
            .insert(Flow::from_indices(1, 2), vec!["L9+".to_string()]);
        let mut d = sample();
        d.job = Some(crate::sha256(b"job").to_hex());
        for (i, cert) in [a, b, c, d].iter().enumerate() {
            assert_ne!(cert.binding(), base, "tamper {i} not caught");
        }
    }

    #[test]
    fn textual_tamper_fails_binding_verification() {
        let text = sample().to_json();
        let tampered = text.replace("\"contention_free\":true", "\"contention_free\":false");
        assert_ne!(text, tampered);
        let parsed = Certificate::parse(&tampered, &ParseLimits::default()).expect("parses");
        assert!(!parsed.verify_binding());
    }

    #[test]
    fn parse_rejections_have_stable_fingerprints() {
        let limits = ParseLimits::default();
        let cases: Vec<(String, &str)> = vec![
            ("{".to_string(), "json-unexpected-end"),
            ("[]".to_string(), "cert-bad-field"),
            ("{}".to_string(), "cert-missing-field"),
            (
                "{\"schema\":\"nocsyn-cert-v0\"}".to_string(),
                "cert-schema-unsupported",
            ),
            (
                sample().to_json().replace("nocsyn-cert-v1", "other-v9"),
                "cert-schema-unsupported",
            ),
            (
                sample().to_json().replace("[2,3]", "[2,99]"),
                "cert-bad-field",
            ),
            (
                sample().to_json().replace("\"n_procs\":4", "\"n_procs\":0"),
                "limit-exceeded",
            ),
        ];
        for (text, want) in cases {
            let err = Certificate::parse(&text, &limits).expect_err("must reject");
            assert_eq!(err.fingerprint(), want, "input {text:?} -> {err}");
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn input_and_element_budgets_are_enforced() {
        let limits = ParseLimits::default().with_max_input_bytes(16);
        let err = Certificate::parse(&sample().to_json(), &limits).expect_err("too big");
        assert_eq!(err.fingerprint(), "limit-exceeded");
        let limits = ParseLimits::default().with_max_messages(1);
        let err = Certificate::parse(&sample().to_json(), &limits).expect_err("too many");
        assert_eq!(err.fingerprint(), "limit-exceeded");
    }

    #[test]
    fn parse_never_accepts_bad_digest_fields() {
        let text = sample().to_json();
        let hex = sample().binding().to_hex();
        let bad = text.replace(&hex, "zz");
        let err = Certificate::parse(&bad, &ParseLimits::default()).expect_err("bad binding");
        assert_eq!(err.fingerprint(), "cert-bad-field");
    }
}
