//! Dense bitset kernel over interned flows.
//!
//! The synthesis inner loop spends nearly all of its time asking one
//! question: *how many members of a clique cross this pipe?* Answering it
//! over `BTreeSet<Flow>` costs a tree probe per clique member. This module
//! provides the flat representation that turns the question into machine
//! words: a [`FlowInterner`] assigns every distinct flow of a pattern a
//! contiguous id (its rank in the sorted flow list), and a [`FlowSet`] is
//! a dense `Vec<u64>` bitset over those ids, so clique-overlap becomes
//! word-wise AND + popcount.
//!
//! Iteration over a `FlowSet` yields ids in ascending order; because ids
//! are sorted-flow ranks, that is exactly the lexicographic flow order a
//! `BTreeSet<Flow>` iterates in. Every algorithm that swaps one for the
//! other therefore visits elements in the identical order — the keystone
//! of the bit-identical-results guarantee (DESIGN.md §11).

use std::fmt;

use crate::Flow;

/// Word size of the backing storage.
const BITS: usize = u64::BITS as usize;

/// Interns the distinct flows of a pattern to contiguous ids `0..len`.
///
/// Ids are assigned by lexicographic flow order, so `id` / `flow` are
/// order-preserving bijections between ids and member flows.
///
/// ```
/// use nocsyn_model::{Flow, FlowInterner};
///
/// let interner = FlowInterner::from_flows([
///     Flow::from_indices(2, 3),
///     Flow::from_indices(0, 1),
///     Flow::from_indices(2, 3), // duplicates collapse
/// ]);
/// assert_eq!(interner.len(), 2);
/// assert_eq!(interner.id(Flow::from_indices(0, 1)), Some(0));
/// assert_eq!(interner.flow(1), Flow::from_indices(2, 3));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlowInterner {
    /// Sorted, deduplicated member flows; a flow's index is its id.
    flows: Vec<Flow>,
}

impl FlowInterner {
    /// Interns the given flows (sorted and deduplicated internally).
    pub fn from_flows<I: IntoIterator<Item = Flow>>(flows: I) -> Self {
        let mut flows: Vec<Flow> = flows.into_iter().collect();
        flows.sort_unstable();
        flows.dedup();
        FlowInterner { flows }
    }

    /// Wraps an already strictly sorted flow list without re-sorting.
    ///
    /// # Panics
    ///
    /// Debug builds panic if `flows` is not strictly ascending.
    pub fn from_sorted_flows(flows: Vec<Flow>) -> Self {
        debug_assert!(
            flows.windows(2).all(|w| w[0] < w[1]),
            "flows must be strictly sorted"
        );
        FlowInterner { flows }
    }

    /// Number of interned flows — the universe size of compatible
    /// [`FlowSet`]s.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow is interned.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The id of `flow`, if it is a member.
    pub fn id(&self, flow: Flow) -> Option<usize> {
        self.flows.binary_search(&flow).ok()
    }

    /// The flow with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub fn flow(&self, id: usize) -> Flow {
        self.flows[id]
    }

    /// The member flows in id (= lexicographic) order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// An empty [`FlowSet`] sized to this interner's universe.
    pub fn empty_set(&self) -> FlowSet {
        FlowSet::new(self.flows.len())
    }

    /// Builds the [`FlowSet`] of the given member flows.
    ///
    /// # Panics
    ///
    /// Panics if a flow is not interned — sets only make sense over the
    /// universe they were interned against.
    pub fn set_of<I: IntoIterator<Item = Flow>>(&self, flows: I) -> FlowSet {
        let mut set = self.empty_set();
        for f in flows {
            let id = self.id(f).expect("flow not interned in this universe");
            set.insert(id);
        }
        set
    }

    /// Iterates the flows named by `set`'s ids, in lexicographic order.
    pub fn flows_of<'a>(&'a self, set: &'a FlowSet) -> impl Iterator<Item = Flow> + 'a {
        set.iter().map(|id| self.flows[id])
    }
}

/// A dense bitset over interned flow ids: `Vec<u64>` words, one bit per
/// id of a fixed universe.
///
/// All binary operations require both operands to share a universe size
/// (debug-asserted). Iteration yields set ids in ascending order.
///
/// ```
/// use nocsyn_model::FlowSet;
///
/// let mut a = FlowSet::new(130);
/// a.insert(0);
/// a.insert(65);
/// a.insert(129);
/// let mut b = FlowSet::new(130);
/// b.insert(65);
/// assert_eq!(a.len(), 3);
/// assert_eq!(a.intersection_len(&b), 1);
/// a.xor_with(&b);
/// assert_eq!(a.iter().collect::<Vec<_>>(), [0, 129]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowSet {
    words: Vec<u64>,
    universe: usize,
}

impl FlowSet {
    /// An empty set over ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        FlowSet {
            words: vec![0; universe.div_ceil(BITS)],
            universe,
        }
    }

    /// Builds a set from ids.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of the universe.
    pub fn from_ids<I: IntoIterator<Item = usize>>(universe: usize, ids: I) -> Self {
        let mut set = FlowSet::new(universe);
        for id in ids {
            set.insert(id);
        }
        set
    }

    /// The universe size fixed at construction.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of set ids (population count).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no id is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every id.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether `id` is set.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of the universe.
    pub fn contains(&self, id: usize) -> bool {
        assert!(
            id < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        self.words[id / BITS] & (1 << (id % BITS)) != 0
    }

    /// Sets `id`; returns whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of the universe.
    pub fn insert(&mut self, id: usize) -> bool {
        assert!(
            id < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        let word = &mut self.words[id / BITS];
        let mask = 1 << (id % BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clears `id`; returns whether it was present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of the universe.
    pub fn remove(&mut self, id: usize) -> bool {
        assert!(
            id < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        let word = &mut self.words[id / BITS];
        let mask = 1 << (id % BITS);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Flips `id`; returns whether it is set afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of the universe.
    pub fn toggle(&mut self, id: usize) -> bool {
        assert!(
            id < self.universe,
            "id {id} outside universe {}",
            self.universe
        );
        let word = &mut self.words[id / BITS];
        let mask = 1 << (id % BITS);
        *word ^= mask;
        *word & mask != 0
    }

    /// `self |= other`.
    pub fn union_with(&mut self, other: &FlowSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `self &= other`.
    pub fn intersect_with(&mut self, other: &FlowSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// `self ^= other` — the incremental-move primitive: XOR-ing a delta
    /// mask removes the ids present in both and adds the ids only in
    /// `other`, in one word-wise pass.
    pub fn xor_with(&mut self, other: &FlowSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
    }

    /// `self &= !other`.
    pub fn difference_with(&mut self, other: &FlowSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// `|self ∩ other|` without materializing the intersection — the
    /// `Fast_Color` kernel (AND + popcount per word).
    pub fn intersection_len(&self, other: &FlowSet) -> usize {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(w, o)| (w & o).count_ones() as usize)
            .sum()
    }

    /// Iterates set ids in ascending order.
    pub fn iter(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl fmt::Debug for FlowSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for FlowSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, ids: I) {
        for id in ids {
            self.insert(id);
        }
    }
}

impl<'a> IntoIterator for &'a FlowSet {
    type Item = usize;
    type IntoIter = Ones<'a>;

    fn into_iter(self) -> Ones<'a> {
        self.iter()
    }
}

/// Ascending iterator over the set ids of a [`FlowSet`].
#[derive(Debug, Clone)]
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn interner_assigns_sorted_ranks() {
        let interner = FlowInterner::from_flows([
            Flow::from_indices(3, 1),
            Flow::from_indices(0, 2),
            Flow::from_indices(0, 1),
        ]);
        assert_eq!(interner.len(), 3);
        let in_order: Vec<Flow> = (0..3).map(|i| interner.flow(i)).collect();
        let mut sorted = in_order.clone();
        sorted.sort();
        assert_eq!(in_order, sorted);
        for (i, &f) in interner.flows().iter().enumerate() {
            assert_eq!(interner.id(f), Some(i));
        }
        assert_eq!(interner.id(Flow::from_indices(7, 8)), None);
    }

    #[test]
    fn set_roundtrips_through_interner() {
        let flows = [
            Flow::from_indices(0, 1),
            Flow::from_indices(2, 3),
            Flow::from_indices(4, 5),
        ];
        let interner = FlowInterner::from_flows(flows);
        let set = interner.set_of([flows[2], flows[0]]);
        let back: Vec<Flow> = interner.flows_of(&set).collect();
        assert_eq!(back, [flows[0], flows[2]]);
    }

    #[test]
    #[should_panic(expected = "not interned")]
    fn foreign_flow_is_rejected() {
        let interner = FlowInterner::from_flows([Flow::from_indices(0, 1)]);
        let _ = interner.set_of([Flow::from_indices(5, 6)]);
    }

    #[test]
    fn insert_remove_contains_across_word_boundaries() {
        let mut s = FlowSet::new(200);
        for id in [0, 63, 64, 127, 128, 199] {
            assert!(!s.contains(id));
            assert!(s.insert(id));
            assert!(!s.insert(id), "double insert of {id}");
            assert!(s.contains(id));
        }
        assert_eq!(s.len(), 6);
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert_eq!(s.iter().collect::<Vec<_>>(), [0, 63, 127, 128, 199]);
    }

    #[test]
    fn algebra_matches_btreeset_reference() {
        // Deterministic pseudo-random id sets, checked against BTreeSet.
        let mut x = 9_876_543_210u64;
        let mut next = || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as usize % 150
        };
        for _ in 0..20 {
            let a_ids: BTreeSet<usize> = (0..40).map(|_| next()).collect();
            let b_ids: BTreeSet<usize> = (0..40).map(|_| next()).collect();
            let a = FlowSet::from_ids(150, a_ids.iter().copied());
            let b = FlowSet::from_ids(150, b_ids.iter().copied());

            let mut u = a.clone();
            u.union_with(&b);
            let expect: Vec<usize> = a_ids.union(&b_ids).copied().collect();
            assert_eq!(u.iter().collect::<Vec<_>>(), expect);

            let mut i = a.clone();
            i.intersect_with(&b);
            let expect: Vec<usize> = a_ids.intersection(&b_ids).copied().collect();
            assert_eq!(i.iter().collect::<Vec<_>>(), expect);
            assert_eq!(a.intersection_len(&b), expect.len());

            let mut d = a.clone();
            d.difference_with(&b);
            let expect: Vec<usize> = a_ids.difference(&b_ids).copied().collect();
            assert_eq!(d.iter().collect::<Vec<_>>(), expect);

            let mut s = a.clone();
            s.xor_with(&b);
            let expect: Vec<usize> = a_ids.symmetric_difference(&b_ids).copied().collect();
            assert_eq!(s.iter().collect::<Vec<_>>(), expect);
        }
    }

    #[test]
    fn xor_applies_and_undoes_a_delta() {
        let mut base = FlowSet::from_ids(100, [1, 2, 3, 70]);
        let delta = FlowSet::from_ids(100, [2, 4, 70, 99]);
        let original = base.clone();
        base.xor_with(&delta);
        assert_eq!(base.iter().collect::<Vec<_>>(), [1, 3, 4, 99]);
        base.xor_with(&delta); // self-inverse
        assert_eq!(base, original);
    }

    #[test]
    fn empty_and_zero_universe() {
        let s = FlowSet::new(0);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.iter().count(), 0);
        let mut t = FlowSet::new(1);
        assert!(t.is_empty());
        t.insert(0);
        assert!(!t.is_empty());
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn out_of_universe_insert_panics() {
        FlowSet::new(10).insert(10);
    }

    #[test]
    fn toggle_flips() {
        let mut s = FlowSet::new(70);
        assert!(s.toggle(69));
        assert!(s.contains(69));
        assert!(!s.toggle(69));
        assert!(!s.contains(69));
    }

    #[test]
    fn debug_renders_as_set() {
        let s = FlowSet::from_ids(10, [1, 4]);
        assert_eq!(format!("{s:?}"), "{1, 4}");
    }
}
