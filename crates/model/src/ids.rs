//! Identifier newtypes: processes, messages, and flows.

use std::fmt;

/// Identifier of a process / end-node (`P` in Definition 1 of the paper).
///
/// The system model attaches exactly one process to each network interface;
/// `ProcId(i)` names the `i`-th such end-node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub usize);

impl ProcId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for ProcId {
    fn from(i: usize) -> Self {
        ProcId(i)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Identifier of a message within a [`Trace`](crate::Trace).
///
/// Assigned densely in insertion order by [`Trace::push`](crate::Trace::push).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MessageId(pub usize);

impl MessageId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for MessageId {
    fn from(i: usize) -> Self {
        MessageId(i)
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// An ordered source–destination pair: the *communication* unit of the paper.
///
/// Contention sets (Definition 4), cliques (Definition 5) and the network
/// resource conflict set (Definition 7) are all phrased over flows rather
/// than individual messages, because repeated messages between the same pair
/// exercise the same routing path.
///
/// ```
/// use nocsyn_model::{Flow, ProcId};
/// let f = Flow::new(ProcId(2), ProcId(5));
/// assert_eq!(f.reversed(), Flow::new(ProcId(5), ProcId(2)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Flow {
    /// Source end-node.
    pub src: ProcId,
    /// Destination end-node.
    pub dst: ProcId,
}

impl Flow {
    /// Creates a flow from `src` to `dst`.
    pub const fn new(src: ProcId, dst: ProcId) -> Self {
        Flow { src, dst }
    }

    /// Convenience constructor from raw indices.
    pub const fn from_indices(src: usize, dst: usize) -> Self {
        Flow {
            src: ProcId(src),
            dst: ProcId(dst),
        }
    }

    /// The flow with source and destination exchanged.
    #[must_use]
    pub const fn reversed(self) -> Flow {
        Flow {
            src: self.dst,
            dst: self.src,
        }
    }

    /// Whether this flow is a self-loop (source equals destination).
    pub const fn is_self_loop(self) -> bool {
        self.src.0 == self.dst.0
    }
}

impl From<(usize, usize)> for Flow {
    fn from((s, d): (usize, usize)) -> Self {
        Flow::from_indices(s, d)
    }
}

impl fmt::Display for Flow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.src.0, self.dst.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_reversal_is_involutive() {
        let f = Flow::from_indices(3, 9);
        assert_eq!(f.reversed().reversed(), f);
    }

    #[test]
    fn flow_ordering_is_lexicographic() {
        let a = Flow::from_indices(1, 5);
        let b = Flow::from_indices(2, 0);
        let c = Flow::from_indices(1, 6);
        assert!(a < b);
        assert!(a < c);
        assert!(c < b);
    }

    #[test]
    fn self_loop_detection() {
        assert!(Flow::from_indices(4, 4).is_self_loop());
        assert!(!Flow::from_indices(4, 5).is_self_loop());
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(3).to_string(), "P3");
        assert_eq!(MessageId(7).to_string(), "m7");
        assert_eq!(Flow::from_indices(1, 2).to_string(), "(1, 2)");
    }

    #[test]
    fn conversions() {
        assert_eq!(ProcId::from(3).index(), 3);
        assert_eq!(MessageId::from(9).index(), 9);
        assert_eq!(Flow::from((2, 7)), Flow::from_indices(2, 7));
    }
}
