//! Time-skew injection (Section 4 of the paper).
//!
//! The paper's phase extraction assumes corresponding library calls start
//! and end simultaneously on every process. Real executions skew: processes
//! reach a call at slightly different times, which can make messages from
//! adjacent "distinct" contention periods overlap and create contention the
//! synthesized network did not provision for. The paper accepts this
//! tradeoff and validates it experimentally; [`SkewModel`] reproduces the
//! effect so the tradeoff can be measured.

use crate::{Message, PhaseSchedule, Trace};

/// Deterministic per-process time skew applied when lowering a
/// [`PhaseSchedule`] to a [`Trace`].
///
/// Each `(phase, process)` pair receives a pseudo-random offset drawn
/// uniformly from `[0, max_skew]` ticks using a seeded SplitMix64 stream, so
/// results are exactly reproducible. A message's start is shifted by its
/// *source* offset and its finish by the maximum of source and destination
/// offsets (the receiver must also arrive at the call before absorbing the
/// payload).
///
/// ```
/// use nocsyn_model::{Phase, PhaseSchedule, SkewModel};
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let mut sched = PhaseSchedule::new(4);
/// sched.push(Phase::from_flows([(0usize, 1usize), (2, 3)])?.with_bytes(64))?;
/// sched.push(Phase::from_flows([(1usize, 0usize), (3, 2)])?.with_bytes(64))?;
///
/// let zero = SkewModel::none().apply(&sched);
/// let skewed = SkewModel::new(1_000, 7).apply(&sched);
/// // Heavy skew can merge adjacent periods into larger cliques.
/// assert!(skewed.maximum_clique_set().max_clique_size()
///     >= zero.maximum_clique_set().max_clique_size());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewModel {
    max_skew: u64,
    seed: u64,
}

impl SkewModel {
    /// A skew model with offsets in `[0, max_skew]` ticks, seeded for
    /// reproducibility.
    pub fn new(max_skew: u64, seed: u64) -> Self {
        SkewModel { max_skew, seed }
    }

    /// The idealized zero-skew model (lowering equals
    /// [`PhaseSchedule::to_trace`]).
    pub fn none() -> Self {
        SkewModel {
            max_skew: 0,
            seed: 0,
        }
    }

    /// Largest offset this model may apply.
    pub fn max_skew(&self) -> u64 {
        self.max_skew
    }

    /// Lowers `schedule` to a timed trace with skewed per-process call
    /// times.
    pub fn apply(&self, schedule: &PhaseSchedule) -> Trace {
        let mut trace = Trace::new(schedule.n_procs());
        let mut t = 0u64;
        for (phase_idx, phase) in schedule.iter().enumerate() {
            let dur = u64::from(phase.bytes().max(1));
            for flow in phase.iter() {
                let src_skew = self.offset(phase_idx, flow.src.index());
                let dst_skew = self.offset(phase_idx, flow.dst.index());
                // Saturating like `PhaseSchedule::to_trace`: adversarial
                // compute gaps pin phases at the horizon, never overflow.
                let start = t.saturating_add(src_skew);
                let finish = t.saturating_add(dur).saturating_add(src_skew.max(dst_skew));
                let m = Message::for_flow(flow, start, finish)
                    .expect("phase flows are validated on insert")
                    .with_bytes(phase.bytes());
                trace.push(m).expect("schedule procs validated on push");
            }
            t = t
                .saturating_add(dur)
                .saturating_add(phase.compute_ticks())
                .saturating_add(1);
        }
        trace
    }

    /// Deterministic offset for a `(phase, process)` pair.
    fn offset(&self, phase: usize, proc: usize) -> u64 {
        if self.max_skew == 0 {
            return 0;
        }
        let mut x = self
            .seed
            .wrapping_add((phase as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((proc as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        // SplitMix64 finalizer.
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        match self.max_skew.checked_add(1) {
            Some(span) => x % span,
            // max_skew == u64::MAX: every offset is already in range.
            None => x,
        }
    }
}

impl Default for SkewModel {
    fn default() -> Self {
        SkewModel::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Phase;

    fn two_phase_schedule() -> PhaseSchedule {
        let mut s = PhaseSchedule::new(4);
        s.push(
            Phase::from_flows([(0usize, 1usize), (2, 3)])
                .unwrap()
                .with_bytes(100),
        )
        .unwrap();
        s.push(
            Phase::from_flows([(1usize, 0usize), (3, 2)])
                .unwrap()
                .with_bytes(100),
        )
        .unwrap();
        s
    }

    #[test]
    fn zero_skew_matches_to_trace() {
        let s = two_phase_schedule();
        assert_eq!(SkewModel::none().apply(&s), s.to_trace());
    }

    #[test]
    fn skew_is_deterministic_per_seed() {
        let s = two_phase_schedule();
        let a = SkewModel::new(50, 42).apply(&s);
        let b = SkewModel::new(50, 42).apply(&s);
        assert_eq!(a, b);
        let c = SkewModel::new(50, 43).apply(&s);
        assert_ne!(a, c);
    }

    #[test]
    fn skew_bounded_by_max() {
        let s = two_phase_schedule();
        let zero = s.to_trace();
        let skewed = SkewModel::new(10, 1).apply(&s);
        for (m0, m1) in zero.messages().zip(skewed.messages()) {
            assert!(m1.start().ticks() >= m0.start().ticks());
            assert!(m1.start().ticks() <= m0.start().ticks() + 10);
            assert!(m1.finish().ticks() >= m0.finish().ticks());
            assert!(m1.finish().ticks() <= m0.finish().ticks() + 10);
        }
    }

    #[test]
    fn large_skew_can_merge_adjacent_periods() {
        let s = two_phase_schedule();
        // Skew far larger than the inter-phase gap guarantees some overlap
        // across phases for this seed.
        let skewed = SkewModel::new(5_000, 3).apply(&s);
        let merged = skewed.maximum_clique_set().max_clique_size();
        let ideal = s.maximum_clique_set().max_clique_size();
        assert!(merged >= ideal);
    }

    #[test]
    fn message_count_is_preserved() {
        let s = two_phase_schedule();
        assert_eq!(SkewModel::new(123, 9).apply(&s).len(), s.to_trace().len());
    }
}
