//! A minimal hand-rolled JSON emitter.
//!
//! The workspace is hermetic — no external crates — so machine-readable
//! output (traces, synthesis reports, experiment tables) goes through
//! this tiny value tree instead of a serialization framework. It only
//! *writes* JSON; nothing in the pipeline needs to parse it back.
//!
//! ```
//! use nocsyn_model::json::JsonValue;
//! let v = JsonValue::object([
//!     ("name", JsonValue::from("cg")),
//!     ("procs", JsonValue::from(16u64)),
//! ]);
//! assert_eq!(v.to_string(), r#"{"name":"cg","procs":16}"#);
//! ```

use std::fmt;

/// A JSON value, built in memory and rendered with [`fmt::Display`].
///
/// Numbers are kept in three lossless flavors; non-finite floats render
/// as `null` (JSON has no representation for them).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point; NaN and infinities render as `null`.
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> Self {
        JsonValue::Array(items.into_iter().collect())
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Writes `s` as a JSON string literal (with surrounding quotes).
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(n) => write!(f, "{n}"),
            JsonValue::Int(n) => write!(f, "{n}"),
            JsonValue::Float(x) if !x.is_finite() => f.write_str("null"),
            JsonValue::Float(x) => {
                // Keep integral floats distinguishable from ints so the
                // field type is stable across rows.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(42u64).to_string(), "42");
        assert_eq!(JsonValue::from(-7i64).to_string(), "-7");
        assert_eq!(JsonValue::from(1.5f64).to_string(), "1.5");
        assert_eq!(JsonValue::from(2.0f64).to_string(), "2.0");
        assert_eq!(JsonValue::from(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_specials() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = JsonValue::object([
            ("xs", JsonValue::array([1u64.into(), 2u64.into()])),
            ("nested", JsonValue::object([("k", JsonValue::Null)])),
            ("s", "hi".into()),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"xs":[1,2],"nested":{"k":null},"s":"hi"}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::array([]).to_string(), "[]");
        assert_eq!(
            JsonValue::object(Vec::<(String, JsonValue)>::new()).to_string(),
            "{}"
        );
    }

    #[test]
    fn key_order_is_insertion_order() {
        let v = JsonValue::object([("z", JsonValue::Null), ("a", JsonValue::Null)]);
        assert_eq!(v.to_string(), r#"{"z":null,"a":null}"#);
    }
}
