//! A minimal hand-rolled JSON emitter and bounded parser.
//!
//! The workspace is hermetic — no external crates — so machine-readable
//! output (traces, synthesis reports, experiment tables) goes through
//! this tiny value tree instead of a serialization framework. The serve
//! protocol also *reads* JSON from untrusted sockets, so [`parse`] is a
//! bounded recursive-descent parser with the same contract as the text
//! ingestion layer: never panics, depth-capped, and every failure maps
//! to a stable [`JsonParseError::fingerprint`].
//!
//! ```
//! use nocsyn_model::json::{parse, JsonValue};
//! let v = JsonValue::object([
//!     ("name", JsonValue::from("cg")),
//!     ("procs", JsonValue::from(16u64)),
//! ]);
//! assert_eq!(v.to_string(), r#"{"name":"cg","procs":16}"#);
//! let back = parse(&v.to_string()).expect("round trip");
//! assert_eq!(back.get("procs").and_then(|p| p.as_u64()), Some(16));
//! ```

use std::error::Error;
use std::fmt;

/// A JSON value, built in memory and rendered with [`fmt::Display`].
///
/// Numbers are kept in three lossless flavors; non-finite floats render
/// as `null` (JSON has no representation for them).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Unsigned integer.
    UInt(u64),
    /// Signed integer.
    Int(i64),
    /// Floating point; NaN and infinities render as `null`.
    Float(f64),
    /// String (escaped on output).
    Str(String),
    /// Ordered array.
    Array(Vec<JsonValue>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> Self {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> Self {
        JsonValue::Array(items.into_iter().collect())
    }

    /// The value under `key` if this is an object with that key (first
    /// occurrence wins, matching insertion order).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// An unsigned integer view: `UInt` directly, or a non-negative
    /// `Int`. Floats never coerce (the writer keeps the flavors apart).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(n) => Some(*n),
            JsonValue::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// A signed integer view: `Int` directly, or a `UInt` that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(n) => Some(*n),
            JsonValue::UInt(n) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// A float view of any numeric flavor.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Float(x) => Some(*x),
            JsonValue::UInt(n) => Some(*n as f64),
            JsonValue::Int(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The items, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}
impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::UInt(v)
    }
}
impl From<u32> for JsonValue {
    fn from(v: u32) -> Self {
        JsonValue::UInt(u64::from(v))
    }
}
impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::UInt(v as u64)
    }
}
impl From<i64> for JsonValue {
    fn from(v: i64) -> Self {
        JsonValue::Int(v)
    }
}
impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Float(v)
    }
}
impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::Str(v.to_string())
    }
}
impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::Str(v)
    }
}

/// Writes `s` as a JSON string literal (with surrounding quotes).
fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::UInt(n) => write!(f, "{n}"),
            JsonValue::Int(n) => write!(f, "{n}"),
            JsonValue::Float(x) if !x.is_finite() => f.write_str("null"),
            JsonValue::Float(x) => {
                // Keep integral floats distinguishable from ints so the
                // field type is stable across rows.
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            JsonValue::Str(s) => write_escaped(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Maximum nesting depth [`parse`] accepts before bailing out with
/// `json-too-deep`. Deep enough for any protocol frame this workspace
/// emits, shallow enough that hostile input cannot blow the stack.
pub const MAX_JSON_DEPTH: usize = 64;

/// What went wrong while parsing (see [`JsonParseError`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JsonErrorKind {
    /// Input ended inside a value, string, or escape.
    UnexpectedEnd,
    /// A byte that no JSON production allows at this position.
    UnexpectedChar,
    /// Nesting exceeded [`MAX_JSON_DEPTH`].
    TooDeep,
    /// A malformed number token.
    BadNumber,
    /// A malformed `\` escape or invalid `\u` surrogate sequence.
    BadEscape,
    /// Well-formed value followed by trailing non-whitespace bytes.
    TrailingData,
}

impl JsonErrorKind {
    /// Stable kebab-case identifier, value-free, for log aggregation and
    /// fuzz-oracle dedup (same convention as
    /// [`ParseErrorKind::fingerprint`](crate::ParseErrorKind::fingerprint)).
    pub fn fingerprint(&self) -> &'static str {
        match self {
            JsonErrorKind::UnexpectedEnd => "json-unexpected-end",
            JsonErrorKind::UnexpectedChar => "json-unexpected-char",
            JsonErrorKind::TooDeep => "json-too-deep",
            JsonErrorKind::BadNumber => "json-bad-number",
            JsonErrorKind::BadEscape => "json-bad-escape",
            JsonErrorKind::TrailingData => "json-trailing-data",
        }
    }
}

/// Error from [`parse`]: the failure kind plus the byte offset where
/// parsing stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where the problem was detected.
    pub offset: usize,
    /// What went wrong.
    pub kind: JsonErrorKind,
}

impl JsonParseError {
    /// Stable kebab-case identifier for the failure kind.
    pub fn fingerprint(&self) -> &'static str {
        self.kind.fingerprint()
    }
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset,
            self.fingerprint()
        )
    }
}

impl Error for JsonParseError {}

/// Parses one complete JSON value from `input`.
///
/// Bounded and total: never panics on any byte sequence, refuses nesting
/// past [`MAX_JSON_DEPTH`], and rejects trailing non-whitespace after the
/// value. Numbers keep the emitter's flavors — unsigned integers parse
/// as `UInt`, negative integers as `Int`, anything with a fraction or
/// exponent as `Float` — so `parse(v.to_string()) == v` for values the
/// emitter produces (modulo non-finite floats, which render as `null`).
///
/// # Errors
///
/// [`JsonParseError`] with a stable fingerprint on any malformed input.
pub fn parse(input: &str) -> Result<JsonValue, JsonParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err(JsonErrorKind::TrailingData));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, kind: JsonErrorKind) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            kind,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            Some(_) => Err(self.err(JsonErrorKind::UnexpectedChar)),
            None => Err(self.err(JsonErrorKind::UnexpectedEnd)),
        }
    }

    fn literal(&mut self, word: &[u8], value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(value)
        } else if self.bytes.len() - self.pos < word.len() {
            Err(self.err(JsonErrorKind::UnexpectedEnd))
        } else {
            Err(self.err(JsonErrorKind::UnexpectedChar))
        }
    }

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err(JsonErrorKind::TooDeep));
        }
        match self.peek() {
            None => Err(self.err(JsonErrorKind::UnexpectedEnd)),
            Some(b'n') => self.literal(b"null", JsonValue::Null),
            Some(b't') => self.literal(b"true", JsonValue::Bool(true)),
            Some(b'f') => self.literal(b"false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array_value(depth),
            Some(b'{') => self.object_value(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err(JsonErrorKind::UnexpectedChar)),
        }
    }

    fn array_value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                Some(_) => return Err(self.err(JsonErrorKind::UnexpectedChar)),
                None => return Err(self.err(JsonErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn object_value(&mut self, depth: usize) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                Some(_) => return Err(self.err(JsonErrorKind::UnexpectedChar)),
                None => return Err(self.err(JsonErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy a run of plain bytes in one slice op; the input is
            // &str, so non-escape runs are valid UTF-8 by construction.
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                if let Ok(chunk) = std::str::from_utf8(&self.bytes[start..self.pos]) {
                    out.push_str(chunk);
                } else {
                    // Unreachable for &str input; kept total anyway.
                    return Err(self.err(JsonErrorKind::UnexpectedChar));
                }
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                Some(_) => return Err(self.err(JsonErrorKind::UnexpectedChar)),
                None => return Err(self.err(JsonErrorKind::UnexpectedEnd)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), JsonParseError> {
        let c = self
            .peek()
            .ok_or_else(|| self.err(JsonErrorKind::UnexpectedEnd))?;
        self.pos += 1;
        match c {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a low-surrogate partner.
                    if self.peek() != Some(b'\\') {
                        return Err(self.err(JsonErrorKind::BadEscape));
                    }
                    self.pos += 1;
                    if self.peek() != Some(b'u') {
                        return Err(self.err(JsonErrorKind::BadEscape));
                    }
                    self.pos += 1;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err(JsonErrorKind::BadEscape));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else if (0xDC00..0xE000).contains(&hi) {
                    // Lone low surrogate.
                    return Err(self.err(JsonErrorKind::BadEscape));
                } else {
                    hi
                };
                match char::from_u32(code) {
                    Some(ch) => out.push(ch),
                    None => return Err(self.err(JsonErrorKind::BadEscape)),
                }
            }
            _ => return Err(self.err(JsonErrorKind::BadEscape)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err(JsonErrorKind::UnexpectedEnd))?;
            let digit = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err(JsonErrorKind::BadEscape))?;
            code = code * 16 + digit;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: one zero, or a nonzero digit followed by digits.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            Some(_) => return Err(self.err(JsonErrorKind::BadNumber)),
            None => return Err(self.err(JsonErrorKind::UnexpectedEnd)),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(JsonErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err(JsonErrorKind::BadNumber));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The token was scanned over ASCII digits/signs only, so the
        // slice is valid UTF-8; fall back to an error rather than panic.
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err(JsonErrorKind::BadNumber))?;
        if integral {
            if negative {
                if let Ok(n) = token.parse::<i64>() {
                    return Ok(JsonValue::Int(n));
                }
            } else if let Ok(n) = token.parse::<u64>() {
                return Ok(JsonValue::UInt(n));
            }
            // Integer overflow: fall through to the float flavor.
        }
        token
            .parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err(JsonErrorKind::BadNumber))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(JsonValue::Null.to_string(), "null");
        assert_eq!(JsonValue::from(true).to_string(), "true");
        assert_eq!(JsonValue::from(42u64).to_string(), "42");
        assert_eq!(JsonValue::from(-7i64).to_string(), "-7");
        assert_eq!(JsonValue::from(1.5f64).to_string(), "1.5");
        assert_eq!(JsonValue::from(2.0f64).to_string(), "2.0");
        assert_eq!(JsonValue::from(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).to_string(), "null");
    }

    #[test]
    fn strings_escape_specials() {
        let s = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(s.to_string(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn arrays_and_objects_nest() {
        let v = JsonValue::object([
            ("xs", JsonValue::array([1u64.into(), 2u64.into()])),
            ("nested", JsonValue::object([("k", JsonValue::Null)])),
            ("s", "hi".into()),
        ]);
        assert_eq!(
            v.to_string(),
            r#"{"xs":[1,2],"nested":{"k":null},"s":"hi"}"#
        );
    }

    #[test]
    fn empty_containers() {
        assert_eq!(JsonValue::array([]).to_string(), "[]");
        assert_eq!(
            JsonValue::object(Vec::<(String, JsonValue)>::new()).to_string(),
            "{}"
        );
    }

    #[test]
    fn key_order_is_insertion_order() {
        let v = JsonValue::object([("z", JsonValue::Null), ("a", JsonValue::Null)]);
        assert_eq!(v.to_string(), r#"{"z":null,"a":null}"#);
    }

    #[test]
    fn parse_round_trips_emitter_output() {
        let v = JsonValue::object([
            ("name", JsonValue::from("cg\n\"x\"")),
            ("procs", JsonValue::from(16u64)),
            ("delta", JsonValue::from(-3i64)),
            ("ratio", JsonValue::from(2.5f64)),
            ("whole", JsonValue::from(4.0f64)),
            ("ok", JsonValue::from(true)),
            ("none", JsonValue::Null),
            ("xs", JsonValue::array([1u64.into(), JsonValue::array([])])),
            ("obj", JsonValue::object([("k", JsonValue::from("v"))])),
        ]);
        let text = v.to_string();
        let back = parse(&text).expect("round trip");
        assert_eq!(back, v);
        // Render of the reparse is byte-identical too.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2 ] , \"b\" : \"\\u0041\\u00e9\\t\" } ").expect("valid");
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("Aé\t"));
        assert_eq!(
            v.get("a").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        // Surrogate pair via \u escapes, and a literal emoji.
        let v = parse("\"\\ud83d\\ude00 😀\"").expect("valid");
        assert_eq!(v.as_str(), Some("\u{1F600} \u{1F600}"));
    }

    #[test]
    fn parse_rejects_with_stable_fingerprints() {
        let cases: &[(&str, &str)] = &[
            ("", "json-unexpected-end"),
            ("{", "json-unexpected-end"),
            ("\"abc", "json-unexpected-end"),
            ("tru", "json-unexpected-end"),
            ("truX", "json-unexpected-char"),
            ("{]", "json-unexpected-char"),
            ("[1,]", "json-unexpected-char"),
            ("{\"a\":1,}", "json-unexpected-char"),
            ("x", "json-unexpected-char"),
            ("1 2", "json-trailing-data"),
            ("01", "json-trailing-data"),
            ("-", "json-unexpected-end"),
            ("1.", "json-bad-number"),
            ("1e", "json-bad-number"),
            ("-x", "json-bad-number"),
            (r#""\q""#, "json-bad-escape"),
            (r#""\u12g4""#, "json-bad-escape"),
            (r#""\ud800x""#, "json-bad-escape"),
            (r#""\udc00""#, "json-bad-escape"),
        ];
        for (input, want) in cases {
            let err = parse(input).expect_err(input);
            assert_eq!(err.fingerprint(), *want, "input {input:?}");
            // Display mentions both offset and fingerprint.
            assert!(err.to_string().contains(want));
        }
    }

    #[test]
    fn parse_depth_is_bounded() {
        let deep_ok = format!(
            "{}0{}",
            "[".repeat(MAX_JSON_DEPTH),
            "]".repeat(MAX_JSON_DEPTH)
        );
        assert!(parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_JSON_DEPTH + 1),
            "]".repeat(MAX_JSON_DEPTH + 1)
        );
        assert_eq!(
            parse(&too_deep).expect_err("too deep").fingerprint(),
            "json-too-deep"
        );
        // Hostile: many opens, never closed — must not blow the stack.
        let hostile = "[".repeat(100_000);
        assert!(parse(&hostile).is_err());
    }

    #[test]
    fn parse_number_flavors() {
        assert_eq!(parse("42").expect("u"), JsonValue::UInt(42));
        assert_eq!(parse("-7").expect("i"), JsonValue::Int(-7));
        assert_eq!(parse("2.5").expect("f"), JsonValue::Float(2.5));
        assert_eq!(parse("1e3").expect("f"), JsonValue::Float(1000.0));
        assert_eq!(parse("-0").expect("i"), JsonValue::Int(0));
        // u64::MAX round-trips as UInt; one past it falls back to float.
        assert_eq!(
            parse("18446744073709551615").expect("max"),
            JsonValue::UInt(u64::MAX)
        );
        assert!(matches!(
            parse("18446744073709551616").expect("overflow"),
            JsonValue::Float(_)
        ));
    }

    #[test]
    fn accessors_view_the_right_flavors() {
        let v = parse(r#"{"u":5,"i":-5,"s":"x","b":false,"f":1.5,"a":[],"o":{}}"#).expect("valid");
        assert_eq!(v.get("u").and_then(JsonValue::as_u64), Some(5));
        assert_eq!(v.get("u").and_then(JsonValue::as_i64), Some(5));
        assert_eq!(v.get("i").and_then(JsonValue::as_i64), Some(-5));
        assert_eq!(v.get("i").and_then(JsonValue::as_u64), None);
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(v.get("f").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(v.get("u").and_then(JsonValue::as_f64), Some(5.0));
        assert!(v.get("a").and_then(JsonValue::as_array).is_some());
        assert!(v.get("o").and_then(JsonValue::as_object).is_some());
        assert_eq!(v.get("missing"), None);
        assert_eq!(JsonValue::Null.get("k"), None);
        assert_eq!(v.get("s").and_then(JsonValue::as_u64), None);
    }
}
