//! Communication-pattern and contention modeling for application-specific
//! on-chip interconnect synthesis.
//!
//! This crate implements the *system, time and path conflict models* of
//! Ho & Pinkston, **"A Methodology for Designing Efficient On-Chip
//! Interconnects on Well-Behaved Communication Patterns"** (HPCA 2003),
//! Section 2:
//!
//! * [`Message`] — a point-to-point communication with source, destination,
//!   starting time and finishing time (Definition 2).
//! * [`Trace`] — the set of all messages of an application, i.e. its
//!   *communication pattern*.
//! * [`overlaps`] / [`OverlapRelation`] — the time-overlap relation `O`
//!   between messages (Definition 3).
//! * [`ContentionSet`] — the *potential communication contention set* `C`
//!   (Definition 4): source–destination pairs of potentially colliding
//!   messages.
//! * [`CliqueSet`] — the *communication clique set* `K` (Definition 5) and
//!   its reduction to the *maximum clique set*, which drives the fast
//!   coloring bound used during synthesis.
//! * [`PhaseSchedule`] — the phase-parallel abstraction the paper uses to
//!   extract contention periods from programs whose processes issue the same
//!   communication-library calls in lock step (Section 3, "one library call
//!   = one contention period").
//!
//! The *path* half of the conflict model (routing functions and the network
//! resource conflict set `R` of Definitions 6–7) lives in `nocsyn-topo`,
//! because it depends on a concrete network.
//!
//! # Example
//!
//! ```
//! use nocsyn_model::{Message, ProcId, Trace};
//!
//! # fn main() -> Result<(), nocsyn_model::ModelError> {
//! let mut trace = Trace::new(4);
//! trace.push(Message::new(ProcId(0), ProcId(1), 0, 10)?)?;
//! trace.push(Message::new(ProcId(2), ProcId(3), 5, 15)?)?;
//! trace.push(Message::new(ProcId(1), ProcId(2), 20, 30)?)?;
//!
//! // Messages 0 and 1 overlap in time; message 2 does not overlap anything.
//! let contention = trace.contention_set();
//! assert_eq!(contention.len(), 1);
//!
//! // Two potential contention periods -> two maximal cliques.
//! let cliques = trace.maximum_clique_set();
//! assert_eq!(cliques.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cert;
mod clique;
mod contention;
mod error;
pub mod fingerprint;
mod flowset;
mod hash;
mod ids;
pub mod json;
mod message;
mod overlap;
mod phase;
mod routeset;
mod skew;
pub mod text;
mod time;
mod trace;

pub use cert::{CertError, CertWitness, Certificate, CERT_SCHEMA};
pub use clique::{Clique, CliqueSet};
pub use contention::{ContentionSet, FlowPair};
pub use error::ModelError;
pub use fingerprint::{canonical_schedule, canonical_trace, sha256, CanonicalForm, Digest, Sha256};
pub use flowset::{FlowInterner, FlowSet, Ones};
pub use hash::{FxBuildHasher, FxHasher};
pub use ids::{Flow, MessageId, ProcId};
pub use message::Message;
pub use overlap::{overlaps, OverlapRelation};
pub use phase::{Phase, PhaseSchedule};
pub use routeset::{ResourceInterner, ResourceOnes, RouteSet};
pub use skew::SkewModel;
pub use text::{
    format_schedule, format_trace, parse_schedule, parse_trace, ParseErrorKind, ParseLimits,
    ParseOptions, ParseScheduleError,
};
pub use time::{Time, TimeInterval};
pub use trace::Trace;
