//! Dense bitset kernel over interned *network resources*.
//!
//! [`flowset`](crate::FlowSet) flattened the contention side of Theorem 1
//! (`C`) into machine words; this module does the same for the resource
//! side (`R`). A [`ResourceInterner`] maps the opaque identities of
//! shareable resources — directed channels, switch-pair pipes, ports —
//! to contiguous ids in first-seen order, and a [`RouteSet`] is a dense
//! `Vec<u64>` bitset over those ids: the *footprint* of one flow's route.
//!
//! Two deliberate differences from the flow kernel:
//!
//! * Resource identities are opaque `u64` keys encoded by the owning
//!   layer (e.g. `link * 2 + direction` for channels, `lo << 32 | hi`
//!   for switch pipes). The interner never inspects them, so one kernel
//!   serves every resource vocabulary.
//! * The universe *grows*: synthesis discovers pipes as routes move, so
//!   a [`RouteSet`] widens on demand instead of being sized up front.
//!   Binary operations align the shorter operand with implicit zeros.
//!
//! With footprints in this form, the Theorem-1 delta check for a
//! single-flow edit is `footprint XOR` (toggle the edited route) plus
//! `AND + popcount` against per-resource occupancy — O(words touched)
//! instead of a full `C ∩ R` recomputation.

use std::collections::HashMap;
use std::fmt;

use crate::hash::FxBuildHasher;

/// Word size of the backing storage.
const BITS: usize = u64::BITS as usize;

/// Interns opaque resource keys to contiguous ids `0..len`, in
/// first-seen order.
///
/// Unlike [`FlowInterner`](crate::FlowInterner) (whose ids are sorted
/// ranks over a closed universe), resources are discovered incrementally,
/// so ids reflect interning order and the mapping is append-only: an id,
/// once assigned, never changes or disappears. `id` / `key` are inverse
/// bijections over the interned set.
///
/// ```
/// use nocsyn_model::ResourceInterner;
///
/// let mut interner = ResourceInterner::new();
/// assert_eq!(interner.intern(42), 0);
/// assert_eq!(interner.intern(7), 1);
/// assert_eq!(interner.intern(42), 0); // duplicates collapse
/// assert_eq!(interner.id(7), Some(1));
/// assert_eq!(interner.key(1), 7);
/// assert_eq!(interner.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ResourceInterner {
    // Keys are search-generated, never attacker-controlled, so the
    // deterministic Fx hash is safe and much cheaper than SipHash.
    ids: HashMap<u64, usize, FxBuildHasher>,
    keys: Vec<u64>,
}

impl ResourceInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id of `key`, interning it if unseen.
    pub fn intern(&mut self, key: u64) -> usize {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.keys.len();
        self.ids.insert(key, id);
        self.keys.push(key);
        id
    }

    /// The id of `key`, if it has been interned.
    pub fn id(&self, key: u64) -> Option<usize> {
        self.ids.get(&key).copied()
    }

    /// The key with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id >= len()`.
    pub fn key(&self, id: usize) -> u64 {
        self.keys[id]
    }

    /// Number of interned resources.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no resource is interned.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The interned keys in id (= first-seen) order.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

/// A growable dense bitset over interned resource ids — one flow's route
/// footprint.
///
/// Ids have no fixed universe: inserting or toggling an id beyond the
/// current width widens the set, and binary operations treat missing
/// high words as zero. Equality ignores trailing zero words, so a set
/// that grew and then emptied equals a fresh empty set.
///
/// ```
/// use nocsyn_model::RouteSet;
///
/// let mut footprint = RouteSet::new();
/// footprint.insert(3);
/// footprint.insert(130); // grows on demand
/// let mut occupancy = RouteSet::new();
/// occupancy.insert(130);
/// assert_eq!(footprint.intersection_len(&occupancy), 1);
/// footprint.toggle(3);
/// footprint.toggle(130);
/// assert!(footprint.is_empty());
/// assert_eq!(footprint, RouteSet::new());
/// ```
#[derive(Clone, Default)]
pub struct RouteSet {
    words: Vec<u64>,
}

impl RouteSet {
    /// Creates an empty footprint.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a footprint from ids.
    pub fn from_ids<I: IntoIterator<Item = usize>>(ids: I) -> Self {
        let mut set = RouteSet::new();
        for id in ids {
            set.insert(id);
        }
        set
    }

    fn grow_for(&mut self, id: usize) {
        let need = id / BITS + 1;
        if self.words.len() < need {
            self.words.resize(need, 0);
        }
    }

    /// Number of set ids (population count).
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no id is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Clears every id (capacity is retained).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Whether `id` is set. Ids beyond the current width are absent.
    pub fn contains(&self, id: usize) -> bool {
        self.words
            .get(id / BITS)
            .is_some_and(|w| w & (1 << (id % BITS)) != 0)
    }

    /// Sets `id`, widening if needed; returns whether it was newly
    /// inserted.
    pub fn insert(&mut self, id: usize) -> bool {
        self.grow_for(id);
        let word = &mut self.words[id / BITS];
        let mask = 1 << (id % BITS);
        let fresh = *word & mask == 0;
        *word |= mask;
        fresh
    }

    /// Clears `id`; returns whether it was present.
    pub fn remove(&mut self, id: usize) -> bool {
        let Some(word) = self.words.get_mut(id / BITS) else {
            return false;
        };
        let mask = 1 << (id % BITS);
        let present = *word & mask != 0;
        *word &= !mask;
        present
    }

    /// Flips `id`, widening if needed; returns whether it is set
    /// afterwards.
    pub fn toggle(&mut self, id: usize) -> bool {
        self.grow_for(id);
        let word = &mut self.words[id / BITS];
        let mask = 1 << (id % BITS);
        *word ^= mask;
        *word & mask != 0
    }

    /// `self |= other`, widening to cover `other`.
    pub fn union_with(&mut self, other: &RouteSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// `self &= other`; ids beyond `other`'s width are cleared.
    pub fn intersect_with(&mut self, other: &RouteSet) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// `self ^= other`, widening to cover `other` — the footprint-toggle
    /// primitive: XOR-ing a route's resource mask installs it if absent
    /// and removes it if present, in one word-wise pass.
    pub fn xor_with(&mut self, other: &RouteSet) {
        if self.words.len() < other.words.len() {
            self.words.resize(other.words.len(), 0);
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w ^= o;
        }
    }

    /// `self &= !other`.
    pub fn difference_with(&mut self, other: &RouteSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= !o;
        }
    }

    /// `|self ∩ other|` without materializing the intersection — the
    /// Theorem-1 delta-check kernel (AND + popcount per word over the
    /// shorter operand).
    pub fn intersection_len(&self, other: &RouteSet) -> usize {
        self.words
            .iter()
            .zip(&other.words)
            .map(|(w, o)| (w & o).count_ones() as usize)
            .sum()
    }

    /// Whether the footprints share at least one resource (early-exits on
    /// the first overlapping word).
    pub fn intersects(&self, other: &RouteSet) -> bool {
        self.words.iter().zip(&other.words).any(|(w, o)| w & o != 0)
    }

    /// Iterates set ids in ascending order.
    pub fn iter(&self) -> ResourceOnes<'_> {
        ResourceOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

impl PartialEq for RouteSet {
    fn eq(&self, other: &RouteSet) -> bool {
        let common = self.words.len().min(other.words.len());
        self.words[..common] == other.words[..common]
            && self.words[common..].iter().all(|&w| w == 0)
            && other.words[common..].iter().all(|&w| w == 0)
    }
}

impl Eq for RouteSet {}

impl fmt::Debug for RouteSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for RouteSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, ids: I) {
        for id in ids {
            self.insert(id);
        }
    }
}

impl FromIterator<usize> for RouteSet {
    fn from_iter<I: IntoIterator<Item = usize>>(ids: I) -> Self {
        RouteSet::from_ids(ids)
    }
}

impl<'a> IntoIterator for &'a RouteSet {
    type Item = usize;
    type IntoIter = ResourceOnes<'a>;

    fn into_iter(self) -> ResourceOnes<'a> {
        self.iter()
    }
}

/// Ascending iterator over the set ids of a [`RouteSet`].
#[derive(Debug, Clone)]
pub struct ResourceOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for ResourceOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_first_seen_order() {
        let mut i = ResourceInterner::new();
        assert_eq!(i.intern(900), 0);
        assert_eq!(i.intern(3), 1);
        assert_eq!(i.intern(900), 0);
        assert_eq!(i.intern(u64::MAX), 2);
        assert_eq!(i.keys(), &[900, 3, u64::MAX]);
        assert_eq!(i.id(3), Some(1));
        assert_eq!(i.id(4), None);
        assert_eq!(i.key(2), u64::MAX);
        assert_eq!(i.len(), 3);
        assert!(!i.is_empty());
    }

    #[test]
    fn insert_remove_toggle_grow_on_demand() {
        let mut s = RouteSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(500));
        assert!(s.insert(500));
        assert!(!s.insert(500));
        assert!(s.contains(500));
        assert!(!s.remove(501));
        assert!(s.remove(500));
        assert!(s.is_empty());
        assert!(s.toggle(63));
        assert!(s.toggle(64));
        assert!(!s.toggle(63));
        assert_eq!(s.iter().collect::<Vec<_>>(), [64]);
    }

    #[test]
    fn equality_ignores_trailing_zero_words() {
        let mut grown = RouteSet::new();
        grown.insert(300);
        grown.remove(300);
        assert_eq!(grown, RouteSet::new());
        let narrow = RouteSet::from_ids([5]);
        let mut wide = RouteSet::from_ids([5, 400]);
        wide.remove(400);
        assert_eq!(narrow, wide);
        wide.insert(400);
        assert_ne!(narrow, wide);
    }

    #[test]
    fn mixed_width_algebra() {
        let a = RouteSet::from_ids([1, 70, 200]);
        let b = RouteSet::from_ids([1, 2]);

        let mut u = b.clone();
        u.union_with(&a);
        assert_eq!(u.iter().collect::<Vec<_>>(), [1, 2, 70, 200]);

        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), [1]);
        assert_eq!(a.intersection_len(&b), 1);
        assert_eq!(b.intersection_len(&a), 1);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&RouteSet::from_ids([3])));

        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), [70, 200]);

        let mut x = b.clone();
        x.xor_with(&a);
        assert_eq!(x.iter().collect::<Vec<_>>(), [2, 70, 200]);
        x.xor_with(&a); // self-inverse
        assert_eq!(x, b);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: RouteSet = [9, 1].into_iter().collect();
        s.extend([1, 130]);
        assert_eq!(s.iter().collect::<Vec<_>>(), [1, 9, 130]);
        assert_eq!(s.len(), 3);
        assert_eq!((&s).into_iter().count(), 3);
    }

    #[test]
    fn debug_renders_as_set() {
        let s = RouteSet::from_ids([1, 65]);
        assert_eq!(format!("{s:?}"), "{1, 65}");
    }
}
