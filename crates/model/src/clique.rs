//! Communication cliques and the (maximum) clique set (Definition 5).
//!
//! A *potential contention period* is a span of time over which a fixed set
//! of messages is simultaneously live. Viewing messages as vertices and time
//! overlap as edges, the messages live at any instant form a clique; the
//! *communication clique set* `K` collects the flow sets of these cliques,
//! and the *maximum clique set* drops every clique covered by a larger one
//! (if a network is contention-free for a superset, it is contention-free
//! for the subset).

use std::collections::BTreeSet;
use std::fmt;

use crate::{Flow, FlowInterner, FlowSet, Trace};

/// A set of flows that are pairwise live at some common instant — one
/// partial (or full) permutation required by the application.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Clique {
    flows: BTreeSet<Flow>,
}

impl Clique {
    /// Creates an empty clique.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of flows in the clique.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the clique has no flows.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Whether `flow` is a member.
    pub fn contains(&self, flow: Flow) -> bool {
        self.flows.contains(&flow)
    }

    /// Adds a flow; returns whether it was newly inserted.
    pub fn insert(&mut self, flow: Flow) -> bool {
        self.flows.insert(flow)
    }

    /// Whether every flow of `self` also belongs to `other`.
    pub fn is_subset(&self, other: &Clique) -> bool {
        self.flows.is_subset(&other.flows)
    }

    /// Iterates over member flows in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = Flow> + '_ {
        self.flows.iter().copied()
    }

    /// Counts how many flows of this clique satisfy `pred`.
    ///
    /// This is the `||K ∩ C_f||` operation at the heart of the paper's
    /// `Fast_Color` procedure: with `pred` selecting the communications
    /// crossing a pipe, the returned count is a lower bound on the number of
    /// links that pipe needs.
    pub fn count_matching<F: FnMut(Flow) -> bool>(&self, mut pred: F) -> usize {
        self.flows.iter().filter(|&&f| pred(f)).count()
    }

    /// Compiles this clique to a bitmask over `interner`'s universe.
    ///
    /// Flows not interned are silently dropped: a flow outside the
    /// universe can never appear in a crossing set drawn from that
    /// universe, so its absence cannot change any overlap count.
    pub fn mask(&self, interner: &FlowInterner) -> FlowSet {
        let mut mask = interner.empty_set();
        for &f in &self.flows {
            if let Some(id) = interner.id(f) {
                mask.insert(id);
            }
        }
        mask
    }
}

impl FromIterator<Flow> for Clique {
    fn from_iter<I: IntoIterator<Item = Flow>>(iter: I) -> Self {
        Clique {
            flows: iter.into_iter().collect(),
        }
    }
}

impl Extend<Flow> for Clique {
    fn extend<I: IntoIterator<Item = Flow>>(&mut self, iter: I) {
        self.flows.extend(iter);
    }
}

impl<const N: usize> From<[(usize, usize); N]> for Clique {
    fn from(pairs: [(usize, usize); N]) -> Self {
        pairs.into_iter().map(Flow::from).collect()
    }
}

impl fmt::Display for Clique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, flow) in self.flows.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{flow}")?;
        }
        write!(f, "}}")
    }
}

/// The communication clique set `K` of an application, optionally reduced to
/// maximal members only.
///
/// ```
/// use nocsyn_model::{CliqueSet, Message, ProcId, Trace};
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let mut t = Trace::new(6);
/// // Period 1: two concurrent messages; period 2: one lone message.
/// t.push(Message::new(ProcId(0), ProcId(1), 0, 10)?)?;
/// t.push(Message::new(ProcId(2), ProcId(3), 0, 10)?)?;
/// t.push(Message::new(ProcId(4), ProcId(5), 20, 30)?)?;
/// let k = CliqueSet::from_trace(&t).into_maximal();
/// assert_eq!(k.len(), 2);
/// assert_eq!(k.max_clique_size(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CliqueSet {
    cliques: Vec<Clique>,
}

impl CliqueSet {
    /// Creates an empty clique set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Extracts the communication clique set from a timed trace.
    ///
    /// Every distinct clique of Definition 5 is the set of messages live at
    /// some instant `t`; because the live set only gains members at message
    /// starts, every *maximal* live set is attained at the start of its
    /// latest-starting member. Sampling the live set at each start event
    /// therefore captures a superset of the maximal cliques; duplicates are
    /// removed here and dominated (sub-)cliques by [`CliqueSet::into_maximal`].
    pub fn from_trace(trace: &Trace) -> Self {
        let mut messages: Vec<_> = trace.messages().collect();
        messages.sort_by_key(|m| (m.start(), m.finish()));

        let mut seen = BTreeSet::new();
        let mut cliques = Vec::new();
        for (i, m) in messages.iter().enumerate() {
            let t = m.start();
            // The live set at instant t: started at or before t, not yet
            // finished. Scan is quadratic but traces are small; the
            // simulator-scale hot paths never call this.
            let clique: Clique = messages[..=i]
                .iter()
                .filter(|other| other.interval().contains(t))
                .map(|other| other.flow())
                .collect();
            if !clique.is_empty() && seen.insert(clique.clone()) {
                cliques.push(clique);
            }
        }
        CliqueSet { cliques }
    }

    /// Builds a clique set directly from explicit flow sets (e.g. the
    /// phase-parallel schedule of Section 3 where each communication-library
    /// call is one contention period).
    pub fn from_cliques<I: IntoIterator<Item = Clique>>(cliques: I) -> Self {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for c in cliques {
            if !c.is_empty() && seen.insert(c.clone()) {
                out.push(c);
            }
        }
        CliqueSet { cliques: out }
    }

    /// Reduces to the *maximum clique set*: removes every clique that is a
    /// subset of another member.
    #[must_use]
    pub fn into_maximal(self) -> CliqueSet {
        let mut by_size: Vec<Clique> = self.cliques;
        by_size.sort_by_key(|c| std::cmp::Reverse(c.len()));
        let mut maximal: Vec<Clique> = Vec::new();
        for c in by_size {
            if !maximal.iter().any(|m| c.is_subset(m)) {
                maximal.push(c);
            }
        }
        CliqueSet { cliques: maximal }
    }

    /// Number of cliques (i.e. distinct potential contention periods).
    pub fn len(&self) -> usize {
        self.cliques.len()
    }

    /// Whether there are no cliques at all.
    pub fn is_empty(&self) -> bool {
        self.cliques.is_empty()
    }

    /// Size of the largest clique (`0` when empty) — the paper's `L`.
    pub fn max_clique_size(&self) -> usize {
        self.cliques.iter().map(Clique::len).max().unwrap_or(0)
    }

    /// Iterates over the cliques.
    pub fn iter(&self) -> impl Iterator<Item = &Clique> + '_ {
        self.cliques.iter()
    }

    /// The union of all member flows — every communication the application
    /// ever performs.
    pub fn all_flows(&self) -> BTreeSet<Flow> {
        self.cliques.iter().flat_map(|c| c.iter()).collect()
    }

    /// The paper's `Fast_Color` kernel: the maximum, over all cliques, of
    /// the number of member flows satisfying `pred`.
    ///
    /// With `pred` selecting the flows that cross a pipe in one direction,
    /// this is a lower bound on the chromatic number of that direction's
    /// conflict graph and hence on the links the pipe requires.
    pub fn max_overlap_with<F: FnMut(Flow) -> bool>(&self, mut pred: F) -> usize {
        self.cliques
            .iter()
            .map(|c| c.count_matching(&mut pred))
            .max()
            .unwrap_or(0)
    }

    /// Compiles every clique to a bitmask over `interner`'s universe, in
    /// clique order (see [`Clique::mask`] for the treatment of flows
    /// outside the universe).
    ///
    /// Pre-compiling the masks turns [`CliqueSet::max_overlap_with`] into
    /// word-wise AND + popcount against a crossing [`FlowSet`] — the
    /// hot-path form of `Fast_Color` used by the synthesis inner loop.
    pub fn compile_masks(&self, interner: &FlowInterner) -> Vec<FlowSet> {
        self.cliques.iter().map(|c| c.mask(interner)).collect()
    }
}

impl FromIterator<Clique> for CliqueSet {
    fn from_iter<I: IntoIterator<Item = Clique>>(iter: I) -> Self {
        CliqueSet::from_cliques(iter)
    }
}

impl fmt::Display for CliqueSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.cliques.iter().enumerate() {
            writeln!(f, "period {i}: {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, ProcId};

    #[test]
    fn subset_cliques_are_pruned() {
        let small = Clique::from([(1, 2), (2, 3)]);
        let big = Clique::from([(1, 2), (2, 3), (3, 4)]);
        let k = CliqueSet::from_cliques([small.clone(), big.clone()]).into_maximal();
        assert_eq!(k.len(), 1);
        assert!(k.iter().next().unwrap().contains(Flow::from_indices(3, 4)));
        assert!(small.is_subset(&big));
        assert!(!big.is_subset(&small));
    }

    #[test]
    fn incomparable_cliques_are_both_kept() {
        let a = Clique::from([(1, 2), (2, 3)]);
        let b = Clique::from([(1, 2), (4, 5)]);
        let k = CliqueSet::from_cliques([a, b]).into_maximal();
        assert_eq!(k.len(), 2);
    }

    #[test]
    fn trace_extraction_finds_staircase_cliques() {
        // m0=[0,10], m1=[5,15], m2=[12,20]:
        // at t=0 live {m0}; t=5 live {m0,m1}; t=12 live {m1,m2}.
        let mut t = Trace::new(6);
        t.push(Message::new(ProcId(0), ProcId(1), 0, 10).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(2), ProcId(3), 5, 15).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(4), ProcId(5), 12, 20).unwrap())
            .unwrap();
        let k = CliqueSet::from_trace(&t);
        assert_eq!(k.len(), 3);
        let maximal = k.into_maximal();
        assert_eq!(maximal.len(), 2);
        assert_eq!(maximal.max_clique_size(), 2);
    }

    #[test]
    fn max_overlap_with_counts_per_clique() {
        let k = CliqueSet::from_cliques([
            Clique::from([(0, 1), (2, 3)]),
            Clique::from([(0, 1), (4, 5), (6, 7)]),
        ]);
        // Select flows with even source index: all of them here.
        assert_eq!(k.max_overlap_with(|f| f.src.0 % 2 == 0), 3);
        // Select only (0,1): appears once in each clique.
        assert_eq!(k.max_overlap_with(|f| f == Flow::from_indices(0, 1)), 1);
        // Select nothing.
        assert_eq!(k.max_overlap_with(|_| false), 0);
    }

    #[test]
    fn all_flows_unions_members() {
        let k = CliqueSet::from_cliques([
            Clique::from([(0, 1), (2, 3)]),
            Clique::from([(2, 3), (4, 5)]),
        ]);
        assert_eq!(k.all_flows().len(), 3);
    }

    #[test]
    fn compiled_masks_agree_with_count_matching() {
        let k = CliqueSet::from_cliques([
            Clique::from([(0, 1), (2, 3)]),
            Clique::from([(0, 1), (4, 5), (6, 7)]),
        ]);
        let interner = FlowInterner::from_flows(k.all_flows());
        let masks = k.compile_masks(&interner);
        assert_eq!(masks.len(), k.len());
        // The crossing set {(0,1), (4,5)} overlaps clique 0 once, clique 1
        // twice — both via popcount and via the predicate form.
        let crossing = interner.set_of([Flow::from_indices(0, 1), Flow::from_indices(4, 5)]);
        let by_mask = masks
            .iter()
            .map(|m| m.intersection_len(&crossing))
            .max()
            .unwrap();
        let by_pred = k.max_overlap_with(|f| crossing.contains(interner.id(f).unwrap()));
        assert_eq!(by_mask, 2);
        assert_eq!(by_mask, by_pred);
    }

    #[test]
    fn mask_drops_flows_outside_the_universe() {
        let clique = Clique::from([(0, 1), (8, 9)]);
        let interner = FlowInterner::from_flows([Flow::from_indices(0, 1)]);
        let mask = clique.mask(&interner);
        assert_eq!(mask.len(), 1);
        assert!(mask.contains(0));
    }

    #[test]
    fn duplicate_cliques_are_deduplicated() {
        let c = Clique::from([(0, 1)]);
        let k = CliqueSet::from_cliques([c.clone(), c.clone(), c]);
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn pairwise_overlap_within_extracted_cliques() {
        // Every pair of flows in an extracted clique must come from
        // messages that overlap — the defining clique property.
        let mut t = Trace::new(8);
        t.push(Message::new(ProcId(0), ProcId(1), 0, 4).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(2), ProcId(3), 2, 8).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(4), ProcId(5), 3, 5).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(6), ProcId(7), 9, 12).unwrap())
            .unwrap();
        let k = CliqueSet::from_trace(&t);
        for clique in k.iter() {
            let members: Vec<Flow> = clique.iter().collect();
            for i in 0..members.len() {
                for j in i + 1..members.len() {
                    let mi = t.messages().find(|m| m.flow() == members[i]).unwrap();
                    let mj = t.messages().find(|m| m.flow() == members[j]).unwrap();
                    assert!(mi.overlaps(&mj));
                }
            }
        }
    }
}
