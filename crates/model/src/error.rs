//! Error type for communication-pattern construction.

use std::error::Error;
use std::fmt;

use crate::{ProcId, Time};

/// Errors produced while building communication patterns.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// An interval was constructed with `finish < start`.
    InvertedInterval {
        /// Requested start time.
        start: Time,
        /// Requested finish time.
        finish: Time,
    },
    /// A message names itself as both source and destination.
    SelfLoop {
        /// The offending process.
        proc: ProcId,
    },
    /// A message references a process outside the trace's process count.
    ProcOutOfRange {
        /// The offending process.
        proc: ProcId,
        /// Number of processes in the trace.
        n_procs: usize,
    },
    /// A phase schedule assigned two messages with the same source in one
    /// phase (a process sends at most one message per library call).
    DuplicateSourceInPhase {
        /// The source process appearing twice.
        proc: ProcId,
    },
    /// A phase schedule assigned two messages with the same destination in
    /// one phase (two simultaneous messages to one end-node necessarily
    /// contend for its single ejection link).
    DuplicateDestinationInPhase {
        /// The destination process appearing twice.
        proc: ProcId,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvertedInterval { start, finish } => {
                write!(f, "interval finish {finish} precedes start {start}")
            }
            ModelError::SelfLoop { proc } => {
                write!(f, "message source and destination are both {proc}")
            }
            ModelError::ProcOutOfRange { proc, n_procs } => {
                write!(f, "{proc} is out of range for a {n_procs}-process trace")
            }
            ModelError::DuplicateSourceInPhase { proc } => {
                write!(f, "{proc} appears as source twice in one phase")
            }
            ModelError::DuplicateDestinationInPhase { proc } => {
                write!(f, "{proc} appears as destination twice in one phase")
            }
        }
    }
}

impl Error for ModelError {}

impl ModelError {
    /// A short, stable, kebab-case identifier for the error class, never
    /// embedding input-derived values — the id telemetry and triage
    /// deduplicate by. Every public error type in the workspace exposes
    /// the same method.
    pub fn fingerprint(&self) -> &'static str {
        match self {
            ModelError::InvertedInterval { .. } => "inverted-interval",
            ModelError::SelfLoop { .. } => "self-loop",
            ModelError::ProcOutOfRange { .. } => "proc-out-of-range",
            ModelError::DuplicateSourceInPhase { .. } => "duplicate-source",
            ModelError::DuplicateDestinationInPhase { .. } => "duplicate-destination",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = ModelError::ProcOutOfRange {
            proc: ProcId(9),
            n_procs: 8,
        };
        assert_eq!(e.to_string(), "P9 is out of range for a 8-process trace");
        let e = ModelError::SelfLoop { proc: ProcId(1) };
        assert!(e.to_string().contains("P1"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
