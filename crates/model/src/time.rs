//! Discrete time values and closed time intervals.
//!
//! The paper models message timing with real-valued starting and finishing
//! times. We use discrete `u64` ticks instead: ticks are exact (hashable,
//! totally ordered, no NaN corner cases) and every construction in the paper
//! — overlap tests, contention periods, clique extraction — only compares
//! times, so any strictly monotone re-timing leaves the model invariant.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use crate::ModelError;

/// A point in time, measured in abstract ticks.
///
/// `Time` is a transparent newtype over `u64`; construct it with
/// [`Time::new`] or via `From<u64>`.
///
/// ```
/// use nocsyn_model::Time;
/// let t = Time::new(42);
/// assert_eq!(t + Time::new(8), Time::new(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// The origin of time.
    pub const ZERO: Time = Time(0);
    /// The largest representable time.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates a time from a raw tick count.
    pub const fn new(ticks: u64) -> Self {
        Time(ticks)
    }

    /// Returns the raw tick count.
    pub const fn ticks(self) -> u64 {
        self.0
    }

    /// Saturating addition of a tick count.
    #[must_use]
    pub const fn saturating_add(self, ticks: u64) -> Self {
        Time(self.0.saturating_add(ticks))
    }

    /// Saturating subtraction of a tick count.
    #[must_use]
    pub const fn saturating_sub(self, ticks: u64) -> Self {
        Time(self.0.saturating_sub(ticks))
    }
}

impl From<u64> for Time {
    fn from(ticks: u64) -> Self {
        Time(ticks)
    }
}

impl From<Time> for u64 {
    fn from(t: Time) -> Self {
        t.0
    }
}

// Operator arithmetic on `Time` saturates at the representable bounds
// instead of panicking: tick values can originate from untrusted parsed
// input (`start=`/`finish=`/`compute=` near `u64::MAX`), and the model's
// constructions only ever *compare* times, so clamping to the horizon is
// semantically safe where wrapping or aborting is not.

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A closed time interval `[start, finish]` with `start <= finish`.
///
/// Message lifetimes are closed intervals: per Definition 3 of the paper, a
/// message that finishes exactly when another starts still *overlaps* it
/// (the boundary instant is shared).
///
/// ```
/// use nocsyn_model::TimeInterval;
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let a = TimeInterval::new(0, 10)?;
/// let b = TimeInterval::new(10, 20)?;
/// let c = TimeInterval::new(11, 20)?;
/// assert!(a.overlaps(&b)); // shared endpoint counts
/// assert!(!a.overlaps(&c));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeInterval {
    start: Time,
    finish: Time,
}

impl TimeInterval {
    /// Creates a closed interval `[start, finish]`.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvertedInterval`] if `finish < start`.
    pub fn new(start: impl Into<Time>, finish: impl Into<Time>) -> Result<Self, ModelError> {
        let (start, finish) = (start.into(), finish.into());
        if finish < start {
            return Err(ModelError::InvertedInterval { start, finish });
        }
        Ok(TimeInterval { start, finish })
    }

    /// The instant the interval begins.
    pub const fn start(&self) -> Time {
        self.start
    }

    /// The instant the interval ends (inclusive).
    pub const fn finish(&self) -> Time {
        self.finish
    }

    /// The length of the interval in ticks (zero for an instantaneous one).
    pub const fn duration(&self) -> u64 {
        self.finish.0 - self.start.0
    }

    /// Whether `t` lies within the closed interval.
    pub fn contains(&self, t: impl Into<Time>) -> bool {
        let t = t.into();
        self.start <= t && t <= self.finish
    }

    /// Whether two closed intervals share at least one instant.
    ///
    /// This is exactly the per-message-pair condition of the overlap
    /// relation `O` in Definition 3 of the paper.
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.start <= other.finish && other.start <= self.finish
    }

    /// Returns the intersection of two intervals, if they overlap.
    pub fn intersection(&self, other: &TimeInterval) -> Option<TimeInterval> {
        if self.overlaps(other) {
            Some(TimeInterval {
                start: self.start.max(other.start),
                finish: self.finish.min(other.finish),
            })
        } else {
            None
        }
    }

    /// Returns this interval shifted later by `ticks`.
    #[must_use]
    pub fn shifted(&self, ticks: u64) -> TimeInterval {
        TimeInterval {
            start: self.start.saturating_add(ticks),
            finish: self.finish.saturating_add(ticks),
        }
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.start.0, self.finish.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_rejects_inverted_bounds() {
        assert!(matches!(
            TimeInterval::new(5, 4),
            Err(ModelError::InvertedInterval { .. })
        ));
    }

    #[test]
    fn instantaneous_interval_is_valid() {
        let i = TimeInterval::new(7, 7).unwrap();
        assert_eq!(i.duration(), 0);
        assert!(i.contains(7));
        assert!(!i.contains(8));
    }

    #[test]
    fn overlap_is_symmetric_and_closed() {
        let a = TimeInterval::new(0, 10).unwrap();
        let b = TimeInterval::new(10, 12).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn disjoint_intervals_do_not_overlap() {
        let a = TimeInterval::new(0, 9).unwrap();
        let b = TimeInterval::new(10, 12).unwrap();
        assert!(!a.overlaps(&b));
        assert!(b.intersection(&a).is_none());
    }

    #[test]
    fn nested_interval_overlap_and_intersection() {
        let outer = TimeInterval::new(0, 100).unwrap();
        let inner = TimeInterval::new(40, 60).unwrap();
        assert!(outer.overlaps(&inner));
        assert_eq!(outer.intersection(&inner), Some(inner));
    }

    #[test]
    fn shifted_moves_both_ends() {
        let a = TimeInterval::new(3, 8).unwrap();
        let s = a.shifted(10);
        assert_eq!(s.start(), Time::new(13));
        assert_eq!(s.finish(), Time::new(18));
    }

    #[test]
    fn time_arithmetic() {
        assert_eq!(Time::new(4) + Time::new(6), Time::new(10));
        assert_eq!(Time::new(10) - Time::new(6), Time::new(4));
        assert_eq!(Time::new(1).saturating_sub(5), Time::ZERO);
        let mut t = Time::new(1);
        t += Time::new(2);
        assert_eq!(t, Time::new(3));
    }

    #[test]
    fn operator_arithmetic_saturates_at_the_bounds() {
        assert_eq!(Time::MAX + Time::new(1), Time::MAX);
        assert_eq!(Time::new(1) - Time::new(5), Time::ZERO);
        let mut t = Time::MAX;
        t += Time::new(7);
        assert_eq!(t, Time::MAX);
        assert_eq!(Time::MAX.saturating_add(u64::MAX), Time::MAX);
    }

    #[test]
    fn interval_at_the_time_horizon_is_valid() {
        let i = TimeInterval::new(u64::MAX, u64::MAX).unwrap();
        assert_eq!(i.duration(), 0);
        assert!(i.contains(u64::MAX));
        assert_eq!(i.shifted(10), i);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Time::new(5).to_string(), "t5");
        assert_eq!(TimeInterval::new(1, 2).unwrap().to_string(), "[1, 2]");
    }
}
