//! Traces: the communication pattern of an application (Definition 2).

use std::collections::BTreeSet;
use std::fmt;
use std::ops::Index;

use crate::{
    CliqueSet, ContentionSet, Flow, Message, MessageId, ModelError, OverlapRelation, ProcId, Time,
};

/// The set `M` of all messages of an application, over a fixed process
/// count.
///
/// A `Trace` is the canonical machine-readable form of a *communication
/// pattern*: the paper obtains it from MPI execution logs; the
/// `nocsyn-workloads` crate synthesizes it analytically. All of the
/// contention-model artifacts — the overlap relation, the contention set
/// `C`, and the clique set `K` — are derived from a trace.
///
/// ```
/// use nocsyn_model::{Message, ProcId, Trace};
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let mut trace = Trace::new(8);
/// trace.push(Message::new(ProcId(0), ProcId(4), 0, 100)?)?;
/// trace.push(Message::new(ProcId(4), ProcId(0), 0, 100)?)?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.flows().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    n_procs: usize,
    messages: Vec<Message>,
}

impl Trace {
    /// Creates an empty trace over `n_procs` processes.
    pub fn new(n_procs: usize) -> Self {
        Trace {
            n_procs,
            messages: Vec::new(),
        }
    }

    /// Appends a message, assigning it the next [`MessageId`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ProcOutOfRange`] if the message references a
    /// process `>= n_procs`.
    pub fn push(&mut self, message: Message) -> Result<MessageId, ModelError> {
        for proc in [message.src(), message.dst()] {
            if proc.index() >= self.n_procs {
                return Err(ModelError::ProcOutOfRange {
                    proc,
                    n_procs: self.n_procs,
                });
            }
        }
        let id = MessageId(self.messages.len());
        self.messages.push(message);
        Ok(id)
    }

    /// Number of processes (end-nodes) in the system.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Number of messages.
    pub fn len(&self) -> usize {
        self.messages.len()
    }

    /// Whether the trace carries no messages.
    pub fn is_empty(&self) -> bool {
        self.messages.is_empty()
    }

    /// Iterates over messages in id order.
    pub fn messages(&self) -> impl Iterator<Item = Message> + '_ {
        self.messages.iter().copied()
    }

    /// Iterates over message ids.
    pub fn message_ids(&self) -> impl Iterator<Item = MessageId> {
        (0..self.messages.len()).map(MessageId)
    }

    /// Returns the message with the given id, if any.
    pub fn get(&self, id: MessageId) -> Option<&Message> {
        self.messages.get(id.index())
    }

    /// The set of distinct flows used by any message.
    pub fn flows(&self) -> BTreeSet<Flow> {
        self.messages.iter().map(Message::flow).collect()
    }

    /// The instant the last message finishes (`Time::ZERO` when empty).
    pub fn makespan(&self) -> Time {
        self.messages
            .iter()
            .map(Message::finish)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Total payload bytes across all messages.
    pub fn total_bytes(&self) -> u64 {
        self.messages.iter().map(|m| u64::from(m.bytes())).sum()
    }

    /// Computes the overlap relation `O` (Definition 3).
    pub fn overlap_relation(&self) -> OverlapRelation {
        OverlapRelation::from_trace(self)
    }

    /// Computes the potential communication contention set `C`
    /// (Definition 4).
    pub fn contention_set(&self) -> ContentionSet {
        ContentionSet::from_trace(self)
    }

    /// Computes the communication clique set `K` (Definition 5).
    pub fn clique_set(&self) -> CliqueSet {
        CliqueSet::from_trace(self)
    }

    /// Computes the communication *maximum* clique set: `K` with dominated
    /// sub-cliques removed.
    pub fn maximum_clique_set(&self) -> CliqueSet {
        CliqueSet::from_trace(self).into_maximal()
    }

    /// Messages sent by `proc`, in id order.
    pub fn sent_by(&self, proc: ProcId) -> impl Iterator<Item = Message> + '_ {
        self.messages
            .iter()
            .copied()
            .filter(move |m| m.src() == proc)
    }

    /// Messages received by `proc`, in id order.
    pub fn received_by(&self, proc: ProcId) -> impl Iterator<Item = Message> + '_ {
        self.messages
            .iter()
            .copied()
            .filter(move |m| m.dst() == proc)
    }

    /// Renders the trace as a machine-readable JSON value (see
    /// [`crate::json`]): process count, makespan, and one record per
    /// message in id order.
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        JsonValue::object([
            ("n_procs", JsonValue::from(self.n_procs)),
            ("makespan", JsonValue::from(u64::from(self.makespan()))),
            (
                "messages",
                JsonValue::array(self.messages.iter().map(|m| {
                    JsonValue::object([
                        ("src", JsonValue::from(m.src().index())),
                        ("dst", JsonValue::from(m.dst().index())),
                        ("start", JsonValue::from(u64::from(m.start()))),
                        ("finish", JsonValue::from(u64::from(m.finish()))),
                        ("bytes", JsonValue::from(m.bytes())),
                    ])
                })),
            ),
        ])
    }
}

impl Index<MessageId> for Trace {
    type Output = Message;
    // Panics on a foreign id, like any slice index: `MessageId`s are only
    // minted by `push` on this trace, so in-range by construction. Use
    // [`Trace::get`] for ids from untrusted sources.
    fn index(&self, id: MessageId) -> &Message {
        &self.messages[id.index()]
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} procs, {} messages, makespan {}",
            self.n_procs,
            self.messages.len(),
            self.makespan()
        )?;
        for (i, m) in self.messages.iter().enumerate() {
            writeln!(f, "  m{i}: {m}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_validates_process_range() {
        let mut t = Trace::new(4);
        let m = Message::new(ProcId(0), ProcId(4), 0, 1).unwrap();
        assert!(matches!(
            t.push(m),
            Err(ModelError::ProcOutOfRange {
                proc: ProcId(4),
                n_procs: 4
            })
        ));
        assert!(t.is_empty());
    }

    #[test]
    fn ids_are_dense_and_indexable() {
        let mut t = Trace::new(4);
        let a = t
            .push(Message::new(ProcId(0), ProcId(1), 0, 1).unwrap())
            .unwrap();
        let b = t
            .push(Message::new(ProcId(2), ProcId(3), 0, 1).unwrap())
            .unwrap();
        assert_eq!(a, MessageId(0));
        assert_eq!(b, MessageId(1));
        assert_eq!(t[b].src(), ProcId(2));
        assert!(t.get(MessageId(2)).is_none());
    }

    #[test]
    fn makespan_and_totals() {
        let mut t = Trace::new(4);
        assert_eq!(t.makespan(), Time::ZERO);
        t.push(
            Message::new(ProcId(0), ProcId(1), 0, 10)
                .unwrap()
                .with_bytes(100),
        )
        .unwrap();
        t.push(
            Message::new(ProcId(1), ProcId(2), 5, 25)
                .unwrap()
                .with_bytes(50),
        )
        .unwrap();
        assert_eq!(t.makespan(), Time::new(25));
        assert_eq!(t.total_bytes(), 150);
    }

    #[test]
    fn per_process_views() {
        let mut t = Trace::new(4);
        t.push(Message::new(ProcId(0), ProcId(1), 0, 1).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(0), ProcId(2), 2, 3).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(1), ProcId(0), 0, 1).unwrap())
            .unwrap();
        assert_eq!(t.sent_by(ProcId(0)).count(), 2);
        assert_eq!(t.received_by(ProcId(0)).count(), 1);
        assert_eq!(t.sent_by(ProcId(3)).count(), 0);
    }

    #[test]
    fn to_json_lists_messages_in_id_order() {
        let mut t = Trace::new(4);
        t.push(
            Message::new(ProcId(0), ProcId(1), 0, 10)
                .unwrap()
                .with_bytes(64),
        )
        .unwrap();
        t.push(Message::new(ProcId(2), ProcId(3), 5, 15).unwrap())
            .unwrap();
        let json = t.to_json().to_string();
        assert_eq!(
            json,
            "{\"n_procs\":4,\"makespan\":15,\"messages\":[\
             {\"src\":0,\"dst\":1,\"start\":0,\"finish\":10,\"bytes\":64},\
             {\"src\":2,\"dst\":3,\"start\":5,\"finish\":15,\"bytes\":4096}]}"
        );
    }

    #[test]
    fn flows_deduplicate_repeats() {
        let mut t = Trace::new(4);
        for phase in 0..3u64 {
            t.push(Message::new(ProcId(0), ProcId(1), phase * 10, phase * 10 + 5).unwrap())
                .unwrap();
        }
        assert_eq!(t.flows().len(), 1);
        assert_eq!(t.len(), 3);
    }
}
