//! Phase-parallel communication schedules (Section 3 of the paper).
//!
//! Programs written in the phase-parallel model issue the *same*
//! communication-library call across all processes, separated by local
//! computation. The paper exploits this: assuming corresponding library
//! calls are synchronized, **each call is one potential contention period**,
//! so the clique set can be read off the program structure without timing
//! analysis. [`PhaseSchedule`] represents that structure and lowers it to a
//! timed [`Trace`] (optionally with per-process time skew via
//! [`SkewModel`](crate::SkewModel)).

use std::collections::BTreeSet;
use std::fmt;

use crate::{Clique, CliqueSet, Flow, Message, ModelError, Trace};

/// Default payload for phases that do not specify one (bytes).
const DEFAULT_PHASE_BYTES: u32 = 4096;

/// One communication-library call: a partial (or full) permutation of
/// simultaneously-live flows, plus the computation gap that follows it.
///
/// A phase is a *partial permutation*: each process sends at most one
/// message and receives at most one message. Collective operations
/// (all-to-all, reduction, broadcast) are expressed as a sequence of such
/// rounds, exactly as message-passing libraries implement them.
///
/// ```
/// use nocsyn_model::{Flow, Phase};
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let mut phase = Phase::new();
/// phase.add(Flow::from_indices(0, 1))?;
/// phase.add(Flow::from_indices(1, 0))?;
/// assert!(phase.add(Flow::from_indices(0, 2)).is_err()); // P0 sends twice
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Phase {
    flows: BTreeSet<Flow>,
    bytes: u32,
    compute_ticks: u64,
}

impl Phase {
    /// Creates an empty phase with the default payload and no computation
    /// gap.
    pub fn new() -> Self {
        Phase {
            flows: BTreeSet::new(),
            bytes: DEFAULT_PHASE_BYTES,
            compute_ticks: 0,
        }
    }

    /// Builds a phase from flows.
    ///
    /// # Errors
    ///
    /// Propagates the partial-permutation violations of [`Phase::add`].
    pub fn from_flows<I>(flows: I) -> Result<Self, ModelError>
    where
        I: IntoIterator,
        I::Item: Into<Flow>,
    {
        let mut phase = Phase::new();
        for f in flows {
            phase.add(f.into())?;
        }
        Ok(phase)
    }

    /// Sets the per-message payload size in bytes.
    #[must_use]
    pub fn with_bytes(mut self, bytes: u32) -> Self {
        self.bytes = bytes;
        self
    }

    /// Sets the computation gap (in ticks) between this phase and the next.
    #[must_use]
    pub fn with_compute(mut self, ticks: u64) -> Self {
        self.compute_ticks = ticks;
        self
    }

    /// Adds a flow to the phase.
    ///
    /// # Errors
    ///
    /// * [`ModelError::SelfLoop`] for a flow from a process to itself.
    /// * [`ModelError::DuplicateSourceInPhase`] if the source already sends
    ///   in this phase.
    /// * [`ModelError::DuplicateDestinationInPhase`] if the destination
    ///   already receives in this phase.
    pub fn add(&mut self, flow: Flow) -> Result<(), ModelError> {
        if flow.is_self_loop() {
            return Err(ModelError::SelfLoop { proc: flow.src });
        }
        if self.flows.iter().any(|f| f.src == flow.src) {
            return Err(ModelError::DuplicateSourceInPhase { proc: flow.src });
        }
        if self.flows.iter().any(|f| f.dst == flow.dst) {
            return Err(ModelError::DuplicateDestinationInPhase { proc: flow.dst });
        }
        self.flows.insert(flow);
        Ok(())
    }

    /// Member flows in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = Flow> + '_ {
        self.flows.iter().copied()
    }

    /// Number of flows.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether the phase carries no communication (pure computation).
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// Per-message payload size in bytes.
    pub fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Computation gap after the phase, in ticks.
    pub fn compute_ticks(&self) -> u64 {
        self.compute_ticks
    }

    /// The clique this phase contributes to the communication clique set.
    pub fn clique(&self) -> Clique {
        self.flows.iter().copied().collect()
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.clique())?;
        if self.compute_ticks > 0 {
            write!(f, " +compute {}", self.compute_ticks)?;
        }
        Ok(())
    }
}

/// An ordered sequence of phases over a fixed process count: the
/// well-behaved communication structure of a phase-parallel application.
///
/// The schedule is both (a) the *input* to the synthesis methodology — its
/// clique set is exactly one clique per distinct phase — and (b) a generator
/// of timed [`Trace`]s for the flit-level simulator.
///
/// ```
/// use nocsyn_model::{Phase, PhaseSchedule};
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let mut sched = PhaseSchedule::new(4);
/// sched.push(Phase::from_flows([(0usize, 1usize), (2, 3)])?)?;
/// sched.push(Phase::from_flows([(1usize, 0usize), (3, 2)])?)?;
/// let k = sched.maximum_clique_set();
/// assert_eq!(k.len(), 2);
/// let trace = sched.to_trace();
/// assert_eq!(trace.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseSchedule {
    n_procs: usize,
    phases: Vec<Phase>,
}

impl PhaseSchedule {
    /// Creates an empty schedule over `n_procs` processes.
    pub fn new(n_procs: usize) -> Self {
        PhaseSchedule {
            n_procs,
            phases: Vec::new(),
        }
    }

    /// Appends a phase.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ProcOutOfRange`] if the phase references a
    /// process `>= n_procs`.
    pub fn push(&mut self, phase: Phase) -> Result<(), ModelError> {
        for flow in phase.iter() {
            for proc in [flow.src, flow.dst] {
                if proc.index() >= self.n_procs {
                    return Err(ModelError::ProcOutOfRange {
                        proc,
                        n_procs: self.n_procs,
                    });
                }
            }
        }
        self.phases.push(phase);
        Ok(())
    }

    /// Number of processes.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Number of phases (repeats included).
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether the schedule has no phases.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Iterates over phases in program order.
    pub fn iter(&self) -> impl Iterator<Item = &Phase> + '_ {
        self.phases.iter()
    }

    /// Repeats the whole schedule `times` times (main-loop iteration).
    ///
    /// Runs in `O(times * phases)` *output* work: repeating an empty
    /// schedule is free regardless of `times`, so a parsed
    /// `repeat 99999999999` with no phases cannot spin here.
    #[must_use]
    pub fn repeated(&self, times: usize) -> PhaseSchedule {
        let mut out = PhaseSchedule::new(self.n_procs);
        if self.phases.is_empty() {
            return out;
        }
        out.phases.reserve(self.phases.len().saturating_mul(times));
        for _ in 0..times {
            out.phases.extend(self.phases.iter().cloned());
        }
        out
    }

    /// The communication clique set: one clique per distinct non-empty
    /// phase (the paper's "one library call = one contention period").
    pub fn clique_set(&self) -> CliqueSet {
        CliqueSet::from_cliques(self.phases.iter().map(Phase::clique))
    }

    /// The maximum clique set (dominated phases removed).
    pub fn maximum_clique_set(&self) -> CliqueSet {
        self.clique_set().into_maximal()
    }

    /// Every distinct flow used anywhere in the schedule.
    pub fn all_flows(&self) -> BTreeSet<Flow> {
        self.phases.iter().flat_map(Phase::iter).collect()
    }

    /// Lowers the schedule to a timed trace with perfectly synchronized
    /// phases (zero skew): phase `i` occupies one slot, all of its messages
    /// sharing the slot's interval, followed by its computation gap.
    ///
    /// Message duration is `bytes` ticks (a 1-byte-per-tick reference link),
    /// with a minimum of one tick.
    ///
    /// The virtual clock saturates at [`crate::Time::MAX`]: schedules with
    /// adversarial `compute=` gaps near `u64::MAX` (reachable from parsed
    /// input) degenerate into phases pinned at the time horizon instead of
    /// overflowing.
    pub fn to_trace(&self) -> Trace {
        let mut trace = Trace::new(self.n_procs);
        let mut t = 0u64;
        for phase in &self.phases {
            let dur = u64::from(phase.bytes().max(1));
            for flow in phase.iter() {
                let m = Message::for_flow(flow, t, t.saturating_add(dur))
                    .expect("phase flows are validated on insert")
                    .with_bytes(phase.bytes());
                trace.push(m).expect("schedule procs validated on push");
            }
            t = t
                .saturating_add(dur)
                .saturating_add(phase.compute_ticks())
                .saturating_add(1);
        }
        trace
    }

    /// Aggregate communication-to-computation ratio implied by the
    /// schedule's slot durations and compute gaps.
    pub fn comm_to_comp_ratio(&self) -> f64 {
        let comm: u64 = self
            .phases
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| u64::from(p.bytes().max(1)))
            .fold(0, u64::saturating_add);
        let comp: u64 = self
            .phases
            .iter()
            .map(Phase::compute_ticks)
            .fold(0, u64::saturating_add);
        if comp == 0 {
            f64::INFINITY
        } else {
            comm as f64 / comp as f64
        }
    }
}

impl fmt::Display for PhaseSchedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "schedule: {} procs, {} phases",
            self.n_procs,
            self.phases.len()
        )?;
        for (i, p) in self.phases.iter().enumerate() {
            writeln!(f, "  phase {i}: {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcId;

    #[test]
    fn phase_enforces_partial_permutation() {
        let mut p = Phase::new();
        p.add(Flow::from_indices(0, 1)).unwrap();
        assert!(matches!(
            p.add(Flow::from_indices(0, 2)),
            Err(ModelError::DuplicateSourceInPhase { proc: ProcId(0) })
        ));
        assert!(matches!(
            p.add(Flow::from_indices(2, 1)),
            Err(ModelError::DuplicateDestinationInPhase { proc: ProcId(1) })
        ));
        assert!(matches!(
            p.add(Flow::from_indices(3, 3)),
            Err(ModelError::SelfLoop { proc: ProcId(3) })
        ));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn repeating_an_empty_schedule_is_constant_time() {
        // Must not iterate `times` times over zero phases.
        let s = PhaseSchedule::new(8).repeated(usize::MAX);
        assert!(s.is_empty());
        assert_eq!(s.n_procs(), 8);
    }

    #[test]
    fn schedule_validates_proc_range() {
        let mut s = PhaseSchedule::new(2);
        let p = Phase::from_flows([(0usize, 3usize)]).unwrap();
        assert!(s.push(p).is_err());
        assert!(s.is_empty());
    }

    #[test]
    fn clique_set_merges_repeated_phases() {
        let mut s = PhaseSchedule::new(4);
        let p = Phase::from_flows([(0usize, 1usize), (2, 3)]).unwrap();
        s.push(p.clone()).unwrap();
        s.push(p).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.clique_set().len(), 1);
    }

    #[test]
    fn to_trace_keeps_phases_disjoint_in_time() {
        let mut s = PhaseSchedule::new(4);
        s.push(Phase::from_flows([(0usize, 1usize)]).unwrap())
            .unwrap();
        s.push(Phase::from_flows([(2usize, 3usize)]).unwrap())
            .unwrap();
        let t = s.to_trace();
        assert_eq!(t.len(), 2);
        assert!(t.contention_set().is_empty());
        // With zero skew, trace-level cliques match phase-level cliques.
        assert_eq!(t.maximum_clique_set().len(), s.maximum_clique_set().len());
    }

    #[test]
    fn to_trace_respects_payload_and_compute() {
        let mut s = PhaseSchedule::new(4);
        s.push(
            Phase::from_flows([(0usize, 1usize)])
                .unwrap()
                .with_bytes(10)
                .with_compute(100),
        )
        .unwrap();
        s.push(
            Phase::from_flows([(2usize, 3usize)])
                .unwrap()
                .with_bytes(10),
        )
        .unwrap();
        let t = s.to_trace();
        let msgs: Vec<_> = t.messages().collect();
        assert_eq!(msgs[0].interval().duration(), 10);
        assert_eq!(msgs[0].bytes(), 10);
        // Second phase begins after duration + compute + 1 gap.
        assert_eq!(msgs[1].start().ticks(), 10 + 100 + 1);
    }

    #[test]
    fn repeated_multiplies_phase_count() {
        let mut s = PhaseSchedule::new(2);
        s.push(Phase::from_flows([(0usize, 1usize)]).unwrap())
            .unwrap();
        let r = s.repeated(5);
        assert_eq!(r.len(), 5);
        assert_eq!(r.clique_set().len(), 1);
    }

    #[test]
    fn comm_to_comp_ratio() {
        let mut s = PhaseSchedule::new(2);
        s.push(
            Phase::from_flows([(0usize, 1usize)])
                .unwrap()
                .with_bytes(100)
                .with_compute(50),
        )
        .unwrap();
        assert!((s.comm_to_comp_ratio() - 2.0).abs() < 1e-9);
        let mut s2 = PhaseSchedule::new(2);
        s2.push(Phase::from_flows([(0usize, 1usize)]).unwrap())
            .unwrap();
        assert!(s2.comm_to_comp_ratio().is_infinite());
    }

    #[test]
    fn all_flows_union() {
        let mut s = PhaseSchedule::new(4);
        s.push(Phase::from_flows([(0usize, 1usize), (2, 3)]).unwrap())
            .unwrap();
        s.push(Phase::from_flows([(1usize, 0usize), (2, 3)]).unwrap())
            .unwrap();
        assert_eq!(s.all_flows().len(), 3);
    }
}
