//! The potential communication contention set `C` (Definition 4).

use std::collections::BTreeSet;
use std::fmt;

use crate::{Flow, FlowInterner, FlowSet, OverlapRelation, Trace};

/// An unordered pair of flows that potentially collide.
///
/// Definition 4 phrases each potential contention as a 4-tuple
/// `(s1, d1, s2, d2)`; since contention is symmetric, we canonicalize the
/// pair so that `first <= second` under the lexicographic flow order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FlowPair {
    first: Flow,
    second: Flow,
}

impl FlowPair {
    /// Creates a canonicalized pair (argument order does not matter).
    pub fn new(a: Flow, b: Flow) -> Self {
        if a <= b {
            FlowPair {
                first: a,
                second: b,
            }
        } else {
            FlowPair {
                first: b,
                second: a,
            }
        }
    }

    /// The lexicographically smaller flow.
    pub const fn first(&self) -> Flow {
        self.first
    }

    /// The lexicographically larger flow.
    pub const fn second(&self) -> Flow {
        self.second
    }

    /// Whether the pair mentions `flow`.
    pub fn involves(&self, flow: Flow) -> bool {
        self.first == flow || self.second == flow
    }
}

impl fmt::Display for FlowPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}, {}}}", self.first, self.second)
    }
}

/// The potential communication contention set `C` of an application.
///
/// Contains every unordered pair of flows carried by two distinct messages
/// that overlap in time. Pairs of *identical* flows (the same
/// source–destination pair overlapping itself, e.g. pipelined repeats) are
/// retained, as Definition 4 admits them.
///
/// ```
/// use nocsyn_model::{ContentionSet, Flow, Message, ProcId, Trace};
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let mut t = Trace::new(4);
/// t.push(Message::new(ProcId(0), ProcId(1), 0, 10)?)?;
/// t.push(Message::new(ProcId(2), ProcId(3), 5, 15)?)?;
/// let c = ContentionSet::from_trace(&t);
/// assert!(c.conflicts(Flow::from_indices(0, 1), Flow::from_indices(2, 3)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContentionSet {
    pairs: BTreeSet<FlowPair>,
}

impl ContentionSet {
    /// Creates an empty contention set (that of a contention-free pattern).
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes `C` for a trace by compressing its overlap relation onto
    /// flows.
    pub fn from_trace(trace: &Trace) -> Self {
        let overlap = OverlapRelation::from_trace(trace);
        Self::from_overlap(trace, &overlap)
    }

    /// Computes `C` from a precomputed overlap relation.
    pub fn from_overlap(trace: &Trace, overlap: &OverlapRelation) -> Self {
        let mut pairs = BTreeSet::new();
        for (a, b) in overlap.iter() {
            let (fa, fb) = (trace[a].flow(), trace[b].flow());
            pairs.insert(FlowPair::new(fa, fb));
        }
        ContentionSet { pairs }
    }

    /// Inserts a pair; returns whether it was newly added.
    pub fn insert(&mut self, a: Flow, b: Flow) -> bool {
        self.pairs.insert(FlowPair::new(a, b))
    }

    /// Whether flows `a` and `b` potentially collide.
    pub fn conflicts(&self, a: Flow, b: Flow) -> bool {
        self.pairs.contains(&FlowPair::new(a, b))
    }

    /// Number of distinct potential contention pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether the pattern has no potential contention at all.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the canonicalized pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = FlowPair> + '_ {
        self.pairs.iter().copied()
    }

    /// All pairs that mention `flow`.
    pub fn pairs_involving(&self, flow: Flow) -> impl Iterator<Item = FlowPair> + '_ {
        self.pairs.iter().copied().filter(move |p| p.involves(flow))
    }

    /// Compiles `C` to per-flow adjacency bitmasks over `interner`'s
    /// universe: `rows[i]` has bit `j` set iff flows `i` and `j` (both as
    /// interner ids, `i != j`) potentially collide.
    ///
    /// Self-pairs (a flow overlapping its own repeat) and pairs mentioning
    /// a flow outside the universe are dropped — the rows describe the
    /// conflict *graph* between distinct interned flows, the structure
    /// colored during link assignment.
    pub fn adjacency_masks(&self, interner: &FlowInterner) -> Vec<FlowSet> {
        let mut rows: Vec<FlowSet> = (0..interner.len()).map(|_| interner.empty_set()).collect();
        for p in &self.pairs {
            let (Some(i), Some(j)) = (interner.id(p.first), interner.id(p.second)) else {
                continue;
            };
            if i != j {
                rows[i].insert(j);
                rows[j].insert(i);
            }
        }
        rows
    }
}

impl FromIterator<FlowPair> for ContentionSet {
    fn from_iter<I: IntoIterator<Item = FlowPair>>(iter: I) -> Self {
        ContentionSet {
            pairs: iter.into_iter().collect(),
        }
    }
}

impl Extend<FlowPair> for ContentionSet {
    fn extend<I: IntoIterator<Item = FlowPair>>(&mut self, iter: I) {
        self.pairs.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, ProcId};

    #[test]
    fn flow_pair_is_canonical() {
        let a = Flow::from_indices(5, 6);
        let b = Flow::from_indices(1, 2);
        assert_eq!(FlowPair::new(a, b), FlowPair::new(b, a));
        assert_eq!(FlowPair::new(a, b).first(), b);
    }

    #[test]
    fn repeated_pattern_is_compressed() {
        // The same pair of overlapping flows repeated in three program
        // phases contributes a single contention pair (the paper's
        // phase-parallel compression).
        let mut t = Trace::new(4);
        for phase in 0..3u64 {
            let base = phase * 100;
            t.push(Message::new(ProcId(0), ProcId(1), base, base + 10).unwrap())
                .unwrap();
            t.push(Message::new(ProcId(2), ProcId(3), base, base + 10).unwrap())
                .unwrap();
        }
        let c = ContentionSet::from_trace(&t);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn same_flow_overlapping_itself_is_recorded() {
        let mut t = Trace::new(2);
        t.push(Message::new(ProcId(0), ProcId(1), 0, 10).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(0), ProcId(1), 5, 12).unwrap())
            .unwrap();
        let c = ContentionSet::from_trace(&t);
        let f = Flow::from_indices(0, 1);
        assert!(c.conflicts(f, f));
    }

    #[test]
    fn disjoint_messages_produce_empty_set() {
        let mut t = Trace::new(4);
        t.push(Message::new(ProcId(0), ProcId(1), 0, 9).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(2), ProcId(3), 10, 19).unwrap())
            .unwrap();
        assert!(ContentionSet::from_trace(&t).is_empty());
    }

    #[test]
    fn pairs_involving_filters() {
        let mut c = ContentionSet::new();
        let f01 = Flow::from_indices(0, 1);
        let f23 = Flow::from_indices(2, 3);
        let f45 = Flow::from_indices(4, 5);
        c.insert(f01, f23);
        c.insert(f23, f45);
        assert_eq!(c.pairs_involving(f01).count(), 1);
        assert_eq!(c.pairs_involving(f23).count(), 2);
        assert_eq!(c.pairs_involving(f45).count(), 1);
    }

    #[test]
    fn adjacency_masks_mirror_conflicts() {
        let f01 = Flow::from_indices(0, 1);
        let f23 = Flow::from_indices(2, 3);
        let f45 = Flow::from_indices(4, 5);
        let mut c = ContentionSet::new();
        c.insert(f01, f23);
        c.insert(f23, f45);
        c.insert(f45, f45); // self-pair: dropped from the graph rows
        let interner = FlowInterner::from_flows([f01, f23, f45]);
        let rows = c.adjacency_masks(&interner);
        assert_eq!(rows.len(), 3);
        for (i, row) in rows.iter().enumerate() {
            for j in 0..3 {
                let expect = i != j && c.conflicts(interner.flow(i), interner.flow(j));
                assert_eq!(row.contains(j), expect, "row {i} bit {j}");
            }
        }
        assert!(!rows[2].contains(2));
    }

    #[test]
    fn collect_and_extend() {
        let f01 = Flow::from_indices(0, 1);
        let f23 = Flow::from_indices(2, 3);
        let mut c: ContentionSet = [FlowPair::new(f01, f23)].into_iter().collect();
        c.extend([FlowPair::new(f01, f01)]);
        assert_eq!(c.len(), 2);
    }
}
