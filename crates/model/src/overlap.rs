//! The time-overlap relation `O` between messages (Definition 3).

use crate::{FlowSet, Message, MessageId, Trace};

/// Whether two messages potentially collide, i.e. overlap in time.
///
/// This is Definition 3 of the paper. The four disjuncts in the paper's
/// formula enumerate the ways two closed intervals can intersect; they are
/// equivalent to the single test `T_s(m1) <= T_f(m2) && T_s(m2) <= T_f(m1)`,
/// which is what [`TimeInterval::overlaps`](crate::TimeInterval::overlaps)
/// computes.
///
/// ```
/// use nocsyn_model::{overlaps, Message, ProcId};
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let a = Message::new(ProcId(0), ProcId(1), 0, 10)?;
/// let b = Message::new(ProcId(2), ProcId(3), 5, 15)?;
/// assert!(overlaps(&a, &b));
/// # Ok(())
/// # }
/// ```
pub fn overlaps(m1: &Message, m2: &Message) -> bool {
    m1.overlaps(m2)
}

/// The materialized overlap relation `O ⊆ M × M` of a trace.
///
/// Stores each unordered pair of distinct, time-overlapping messages once,
/// as `(lo, hi)` with `lo < hi`. Built with a start-time sweep in
/// `O(M log M + |O|)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OverlapRelation {
    pairs: Vec<(MessageId, MessageId)>,
}

impl OverlapRelation {
    /// Computes the overlap relation of a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut order: Vec<MessageId> = trace.message_ids().collect();
        order.sort_by_key(|&id| (trace[id].start(), trace[id].finish(), id));

        let mut pairs = Vec::new();
        // Active list of messages whose intervals may still overlap future
        // starts; pruned lazily as starts advance past their finishes.
        let mut active: Vec<MessageId> = Vec::new();
        for &id in &order {
            let start = trace[id].start();
            active.retain(|&a| trace[a].finish() >= start);
            for &a in &active {
                let (lo, hi) = if a < id { (a, id) } else { (id, a) };
                pairs.push((lo, hi));
            }
            active.push(id);
        }
        pairs.sort_unstable();
        pairs.dedup();
        OverlapRelation { pairs }
    }

    /// Number of unordered overlapping pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no two messages overlap.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether the pair `(a, b)` is in the relation.
    pub fn contains(&self, a: MessageId, b: MessageId) -> bool {
        if a == b {
            return false;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        self.pairs.binary_search(&key).is_ok()
    }

    /// Iterates over the unordered pairs, each as `(lo, hi)` with `lo < hi`.
    pub fn iter(&self) -> impl Iterator<Item = (MessageId, MessageId)> + '_ {
        self.pairs.iter().copied()
    }

    /// Compiles the relation to per-message adjacency bitsets: `rows[i]`
    /// has bit `j` set iff messages `i` and `j` overlap in time.
    ///
    /// `n_messages` fixes the universe (message ids are dense, so
    /// `trace.len()` is the natural choice); pairs mentioning an id at or
    /// beyond it are dropped. Rows are symmetric and irreflexive, the
    /// bitset form of [`OverlapRelation::contains`].
    pub fn adjacency_rows(&self, n_messages: usize) -> Vec<FlowSet> {
        let mut rows: Vec<FlowSet> = (0..n_messages).map(|_| FlowSet::new(n_messages)).collect();
        for &(a, b) in &self.pairs {
            let (i, j) = (a.0, b.0);
            if i < n_messages && j < n_messages {
                rows[i].insert(j);
                rows[j].insert(i);
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Message, ProcId};

    fn trace_of(intervals: &[(u64, u64)]) -> Trace {
        let mut t = Trace::new(2 * intervals.len());
        for (i, &(s, f)) in intervals.iter().enumerate() {
            t.push(Message::new(ProcId(2 * i), ProcId(2 * i + 1), s, f).unwrap())
                .unwrap();
        }
        t
    }

    #[test]
    fn empty_trace_has_empty_relation() {
        let t = Trace::new(4);
        let o = OverlapRelation::from_trace(&t);
        assert!(o.is_empty());
    }

    #[test]
    fn chain_of_overlaps() {
        // [0,10], [5,15], [12,20]: pairs (0,1) and (1,2) but not (0,2).
        let t = trace_of(&[(0, 10), (5, 15), (12, 20)]);
        let o = OverlapRelation::from_trace(&t);
        assert_eq!(o.len(), 2);
        assert!(o.contains(MessageId(0), MessageId(1)));
        assert!(o.contains(MessageId(2), MessageId(1)));
        assert!(!o.contains(MessageId(0), MessageId(2)));
        assert!(!o.contains(MessageId(0), MessageId(0)));
    }

    #[test]
    fn shared_endpoint_counts_as_overlap() {
        let t = trace_of(&[(0, 10), (10, 20)]);
        let o = OverlapRelation::from_trace(&t);
        assert_eq!(o.len(), 1);
    }

    #[test]
    fn all_concurrent_messages_form_complete_relation() {
        let t = trace_of(&[(0, 10), (0, 10), (0, 10), (0, 10)]);
        let o = OverlapRelation::from_trace(&t);
        assert_eq!(o.len(), 6); // C(4,2)
    }

    #[test]
    fn adjacency_rows_mirror_contains() {
        let t = trace_of(&[(0, 10), (5, 15), (12, 20), (100, 110)]);
        let o = OverlapRelation::from_trace(&t);
        let rows = o.adjacency_rows(t.len());
        assert_eq!(rows.len(), 4);
        for a in t.message_ids() {
            for b in t.message_ids() {
                assert_eq!(
                    rows[a.0].contains(b.0),
                    o.contains(a, b),
                    "row {a:?} bit {b:?}"
                );
            }
        }
    }

    #[test]
    fn sweep_matches_quadratic_reference() {
        // Deterministic pseudo-random intervals; compare against the naive
        // O(M^2) definition from the paper.
        let mut intervals = Vec::new();
        let mut x = 12345u64;
        for _ in 0..60 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let s = (x >> 33) % 200;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let d = (x >> 33) % 50;
            intervals.push((s, s + d));
        }
        let t = trace_of(&intervals);
        let o = OverlapRelation::from_trace(&t);
        for a in t.message_ids() {
            for b in t.message_ids() {
                if a == b {
                    continue;
                }
                assert_eq!(
                    o.contains(a, b),
                    overlaps(&t[a], &t[b]),
                    "mismatch for {a:?} {b:?}"
                );
            }
        }
    }
}
