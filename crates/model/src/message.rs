//! Messages: the atoms of a communication pattern (Definition 2).

use std::fmt;

use crate::{Flow, ModelError, ProcId, Time, TimeInterval};

/// Default payload size in bytes when none is specified.
///
/// The paper (Section 1, citing Vetter & Mueller) observes that scientific
/// point-to-point payloads run to thousands of bytes; 4 KiB is a
/// representative default.
pub const DEFAULT_PAYLOAD_BYTES: u32 = 4096;

/// A single message of a communication pattern.
///
/// Per Definition 2 of the paper, a message is characterized by its source
/// `S(m)`, destination `D(m)`, starting time `T_s(m)` at which it leaves the
/// source, and finishing time `T_f(m)` at which it is completely absorbed by
/// the destination. We additionally carry a payload size in bytes, which the
/// contention model ignores but the flit-level simulator consumes.
///
/// ```
/// use nocsyn_model::{Message, ProcId};
/// # fn main() -> Result<(), nocsyn_model::ModelError> {
/// let m = Message::new(ProcId(0), ProcId(3), 10, 25)?.with_bytes(1024);
/// assert_eq!(m.flow().src, ProcId(0));
/// assert_eq!(m.interval().duration(), 15);
/// assert_eq!(m.bytes(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Message {
    flow: Flow,
    interval: TimeInterval,
    bytes: u32,
}

impl Message {
    /// Creates a message from `src` to `dst` live over `[start, finish]`,
    /// with the default payload size.
    ///
    /// # Errors
    ///
    /// * [`ModelError::SelfLoop`] if `src == dst` — the system model routes
    ///   between distinct end-nodes only.
    /// * [`ModelError::InvertedInterval`] if `finish < start`.
    pub fn new(
        src: ProcId,
        dst: ProcId,
        start: impl Into<Time>,
        finish: impl Into<Time>,
    ) -> Result<Self, ModelError> {
        if src == dst {
            return Err(ModelError::SelfLoop { proc: src });
        }
        Ok(Message {
            flow: Flow::new(src, dst),
            interval: TimeInterval::new(start, finish)?,
            bytes: DEFAULT_PAYLOAD_BYTES,
        })
    }

    /// Creates a message for an existing flow.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Message::new`].
    pub fn for_flow(
        flow: Flow,
        start: impl Into<Time>,
        finish: impl Into<Time>,
    ) -> Result<Self, ModelError> {
        Message::new(flow.src, flow.dst, start, finish)
    }

    /// Sets the payload size in bytes.
    #[must_use]
    pub fn with_bytes(mut self, bytes: u32) -> Self {
        self.bytes = bytes;
        self
    }

    /// The ordered source–destination pair of this message.
    pub const fn flow(&self) -> Flow {
        self.flow
    }

    /// The source end-node, `S(m)`.
    pub const fn src(&self) -> ProcId {
        self.flow.src
    }

    /// The destination end-node, `D(m)`.
    pub const fn dst(&self) -> ProcId {
        self.flow.dst
    }

    /// The live interval `[T_s(m), T_f(m)]`.
    pub const fn interval(&self) -> TimeInterval {
        self.interval
    }

    /// The starting time `T_s(m)`.
    pub const fn start(&self) -> Time {
        self.interval.start()
    }

    /// The finishing time `T_f(m)`.
    pub const fn finish(&self) -> Time {
        self.interval.finish()
    }

    /// Payload size in bytes.
    pub const fn bytes(&self) -> u32 {
        self.bytes
    }

    /// Whether this message overlaps another in time (Definition 3).
    pub fn overlaps(&self, other: &Message) -> bool {
        self.interval.overlaps(&other.interval)
    }

    /// Returns a copy of this message shifted later in time by `ticks`.
    ///
    /// Both endpoints saturate at [`Time::MAX`], so shifting a message
    /// whose times came from untrusted input (e.g. `finish=` near
    /// `u64::MAX`) clamps to the horizon instead of overflowing.
    #[must_use]
    pub fn shifted(&self, ticks: u64) -> Message {
        Message {
            flow: self.flow,
            interval: self.interval.shifted(ticks),
            bytes: self.bytes,
        }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} over {} ({} B)",
            self.flow.src, self.flow.dst, self.interval, self.bytes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_self_loop() {
        assert!(matches!(
            Message::new(ProcId(2), ProcId(2), 0, 1),
            Err(ModelError::SelfLoop { proc: ProcId(2) })
        ));
    }

    #[test]
    fn rejects_inverted_interval() {
        assert!(Message::new(ProcId(0), ProcId(1), 5, 2).is_err());
    }

    #[test]
    fn accessors_round_trip() {
        let m = Message::new(ProcId(1), ProcId(4), 3, 9)
            .unwrap()
            .with_bytes(64);
        assert_eq!(m.src(), ProcId(1));
        assert_eq!(m.dst(), ProcId(4));
        assert_eq!(m.start(), Time::new(3));
        assert_eq!(m.finish(), Time::new(9));
        assert_eq!(m.bytes(), 64);
        assert_eq!(m.flow(), Flow::from_indices(1, 4));
    }

    #[test]
    fn overlap_matches_interval_semantics() {
        let a = Message::new(ProcId(0), ProcId(1), 0, 10).unwrap();
        let b = Message::new(ProcId(2), ProcId(3), 10, 20).unwrap();
        let c = Message::new(ProcId(4), ProcId(5), 11, 20).unwrap();
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn shifted_preserves_flow_and_payload() {
        let m = Message::new(ProcId(0), ProcId(1), 0, 10)
            .unwrap()
            .with_bytes(7);
        let s = m.shifted(5);
        assert_eq!(s.flow(), m.flow());
        assert_eq!(s.bytes(), 7);
        assert_eq!(s.start(), Time::new(5));
        assert_eq!(s.finish(), Time::new(15));
    }

    #[test]
    fn default_payload_applies() {
        let m = Message::new(ProcId(0), ProcId(1), 0, 1).unwrap();
        assert_eq!(m.bytes(), DEFAULT_PAYLOAD_BYTES);
    }

    #[test]
    fn boundary_times_shift_without_overflow() {
        // Times straight off the trust boundary: finish at the horizon.
        let m = Message::new(ProcId(0), ProcId(1), u64::MAX - 1, u64::MAX).unwrap();
        let s = m.shifted(u64::MAX);
        assert_eq!(s.start(), Time::MAX);
        assert_eq!(s.finish(), Time::MAX);
        assert_eq!(s.interval().duration(), 0);
        assert!(s.overlaps(&m.shifted(5)));
    }
}
