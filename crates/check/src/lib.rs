//! A minimal, fully deterministic property-testing harness.
//!
//! This crate replaces the external `proptest` dependency with the small
//! subset the workspace actually uses, so the whole build-and-test
//! pipeline runs offline:
//!
//! * composable **generators** ([`Gen`]) for integers, tuples, vectors and
//!   choices, with **greedy shrinking** of failing inputs;
//! * a configurable **case count** (default 64, `NOCSYN_CHECK_CASES`
//!   override);
//! * **deterministic seeds**: every property derives its base seed from
//!   its own name, so runs are reproducible with no configuration at all;
//! * **replay**: a failure report prints the base seed, and setting
//!   `NOCSYN_CHECK_SEED=<seed>` regenerates the identical case sequence.
//!
//! # Writing a property
//!
//! ```
//! use nocsyn_check::{check, vec_of, usize_in, check_assert};
//!
//! #[allow(clippy::needless_doctest_main)]
//! fn reverse_twice_is_identity() {
//!     check(
//!         "reverse_twice_is_identity",
//!         vec_of(usize_in(0..100), 0..20),
//!         |v| {
//!             let mut w = v.clone();
//!             w.reverse();
//!             w.reverse();
//!             check_assert!(w == *v, "double reverse changed {v:?}");
//!             Ok(())
//!         },
//!     );
//! }
//! # reverse_twice_is_identity();
//! ```
//!
//! Properties return `Result<(), CaseError>`: `Ok(())` passes,
//! [`CaseError::Fail`] fails (and triggers shrinking), and
//! [`CaseError::Discard`] (usually via [`check_assume!`]) skips a case
//! that does not satisfy the property's preconditions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::fmt::Debug;
use std::ops::Range;

use nocsyn_rng::{hash_str, splitmix64, Rng};

/// Why a single property case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseError {
    /// The input did not satisfy the property's preconditions; the case
    /// is skipped, not failed.
    Discard,
    /// The property is violated, with an explanation.
    Fail(String),
}

impl std::fmt::Display for CaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaseError::Discard => write!(f, "case discarded by a precondition"),
            CaseError::Fail(msg) => write!(f, "property violated: {msg}"),
        }
    }
}

impl std::error::Error for CaseError {}

impl CaseError {
    /// A short, stable, kebab-case identifier for the error class, never
    /// embedding input-derived values (same convention as
    /// `ModelError::fingerprint` in `nocsyn-model`).
    pub fn fingerprint(&self) -> &'static str {
        match self {
            CaseError::Discard => "discard",
            CaseError::Fail(_) => "fail",
        }
    }
}

/// Outcome of evaluating one generated case.
pub type CaseResult = Result<(), CaseError>;

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! check_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::CaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::CaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! check_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::CaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if l != r {
            return Err($crate::CaseError::Fail(format!($($fmt)+)));
        }
    }};
}

/// Discards the current case unless `cond` holds (precondition filter).
#[macro_export]
macro_rules! check_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::CaseError::Discard);
        }
    };
}

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

/// A reproducible value generator with greedy shrinking.
///
/// `generate` must be a pure function of the rng stream, and `shrink`
/// must propose values strictly "smaller" than its input (the runner
/// guards against non-terminating shrink loops, but convergence quality
/// is the generator's job).
pub trait Gen {
    /// The generated value type.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Rng) -> Self::Value;

    /// Proposes simpler candidate values; empty when fully shrunk.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

/// Uniform integer in a half-open range, shrinking toward the lower
/// bound. Built by [`usize_in`], [`u64_in`] and [`u32_in`].
#[derive(Debug, Clone, Copy)]
pub struct IntGen<T> {
    lo: T,
    hi: T, // exclusive
}

macro_rules! int_gen {
    ($t:ty, $ctor:ident) => {
        /// Uniform integer in `range`, shrinking toward `range.start`.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        pub fn $ctor(range: Range<$t>) -> IntGen<$t> {
            assert!(range.start < range.end, "empty generator range");
            IntGen {
                lo: range.start,
                hi: range.end,
            }
        }

        impl Gen for IntGen<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut Rng) -> $t {
                rng.gen_range(self.lo..self.hi)
            }

            fn shrink(&self, value: &$t) -> Vec<$t> {
                let v = *value;
                if v == self.lo {
                    return Vec::new();
                }
                let mut out = vec![self.lo];
                let mid = self.lo + (v - self.lo) / 2;
                if mid != self.lo && mid != v {
                    out.push(mid);
                }
                if v - 1 != self.lo && Some(&(v - 1)) != out.last() {
                    out.push(v - 1);
                }
                out
            }
        }
    };
}

int_gen!(usize, usize_in);
int_gen!(u64, u64_in);
int_gen!(u32, u32_in);

/// Vector of values from `elem`, with length drawn from `len`; shrinks by
/// dropping elements (toward the minimum length) and then by shrinking
/// individual elements. Built by [`vec_of`].
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize, // exclusive
}

/// Vector generator: length uniform in `len`, elements from `elem`.
///
/// # Panics
///
/// Panics if `len` is empty.
pub fn vec_of<G: Gen>(elem: G, len: Range<usize>) -> VecGen<G> {
    assert!(len.start < len.end, "empty length range");
    VecGen {
        elem,
        min_len: len.start,
        max_len: len.end,
    }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut Rng) -> Self::Value {
        let len = rng.gen_range(self.min_len..self.max_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        let mut out = Vec::new();
        // Structural shrinks first: halve, then drop single elements.
        if value.len() > self.min_len {
            let half = value.len() / 2;
            if half >= self.min_len && half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in (0..value.len()).rev() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        // Element-wise shrinks: first candidate per position.
        for (i, elem) in value.iter().enumerate() {
            if let Some(smaller) = self.elem.shrink(elem).into_iter().next() {
                let mut v = value.clone();
                v[i] = smaller;
                out.push(v);
            }
        }
        out
    }
}

/// One of a fixed set of alternatives, shrinking toward earlier entries.
/// Built by [`choice`].
#[derive(Debug, Clone)]
pub struct ChoiceGen<T> {
    items: Vec<T>,
}

/// Uniformly picks one of `items`; shrinks toward the front of the list,
/// so order alternatives simplest-first.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn choice<T: Clone + Debug>(items: impl Into<Vec<T>>) -> ChoiceGen<T> {
    let items = items.into();
    assert!(!items.is_empty(), "choice over no alternatives");
    ChoiceGen { items }
}

impl<T: Clone + Debug + PartialEq> Gen for ChoiceGen<T> {
    type Value = T;

    fn generate(&self, rng: &mut Rng) -> T {
        rng.choose(&self.items)
            .expect("non-empty by construction")
            .clone()
    }

    fn shrink(&self, value: &T) -> Vec<T> {
        match self.items.iter().position(|i| i == value) {
            Some(0) | None => Vec::new(),
            Some(i) => self.items[..i].to_vec(),
        }
    }
}

/// Arbitrary byte vectors with length drawn from `len`; shrinks by
/// dropping bytes and then by zeroing them. Built by [`bytes_of`].
///
/// The workhorse generator for fuzz-style properties ("no input
/// byte-sequence panics this parser") written as ordinary `check` tests.
#[derive(Debug, Clone, Copy)]
pub struct BytesGen {
    min_len: usize,
    max_len: usize, // exclusive
}

/// Arbitrary bytes: length uniform in `len`, each byte uniform in
/// `0..=255`.
///
/// # Panics
///
/// Panics if `len` is empty.
pub fn bytes_of(len: Range<usize>) -> BytesGen {
    assert!(len.start < len.end, "empty length range");
    BytesGen {
        min_len: len.start,
        max_len: len.end,
    }
}

impl Gen for BytesGen {
    type Value = Vec<u8>;

    fn generate(&self, rng: &mut Rng) -> Vec<u8> {
        let len = rng.gen_range(self.min_len..self.max_len);
        (0..len).map(|_| rng.gen_range(0u32..256) as u8).collect()
    }

    fn shrink(&self, value: &Vec<u8>) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        if value.len() > self.min_len {
            let half = value.len() / 2;
            if half >= self.min_len && half < value.len() {
                out.push(value[..half].to_vec());
            }
            for i in (0..value.len()).rev() {
                let mut v = value.clone();
                v.remove(i);
                out.push(v);
            }
        }
        for (i, &b) in value.iter().enumerate() {
            if b != 0 {
                let mut v = value.clone();
                v[i] = 0;
                out.push(v);
            }
        }
        out
    }
}

/// Arbitrary UTF-8 strings with a char count drawn from `len`; shrinks by
/// dropping chars and then by simplifying them to `'a'`. Built by
/// [`string_of`].
///
/// The character mix is deliberately parser-hostile: raw grammar tokens
/// (`procs`, `phase`, `->`, `=`), digits, whitespace including `\r` and
/// `\n`, comment markers, and occasional multi-byte scalars — so
/// properties over text parsers explore both near-valid and wild inputs.
#[derive(Debug, Clone, Copy)]
pub struct StringGen {
    min_len: usize,
    max_len: usize, // exclusive
}

/// Arbitrary UTF-8 and raw-token strings: length (in chars) uniform in
/// `len`.
///
/// # Panics
///
/// Panics if `len` is empty.
pub fn string_of(len: Range<usize>) -> StringGen {
    assert!(len.start < len.end, "empty length range");
    StringGen {
        min_len: len.start,
        max_len: len.end,
    }
}

/// Grammar-ish fragments `StringGen` splices between random characters.
const STRING_TOKENS: &[&str] = &[
    "procs",
    "phase",
    "repeat",
    "msg",
    "->",
    "=",
    "bytes",
    "compute",
    "start",
    "finish",
    "#",
    " ",
    "\n",
    "\r\n",
    "\t",
    "0",
    "1",
    "9",
    "18446744073709551615",
    "99999999999999999999",
    "-1",
];

impl Gen for StringGen {
    type Value = String;

    fn generate(&self, rng: &mut Rng) -> String {
        let len = rng.gen_range(self.min_len..self.max_len);
        let mut out = String::new();
        for _ in 0..len {
            match rng.gen_range(0u32..10) {
                // Whole grammar-ish tokens, to reach deep parser states.
                0..=3 => out.push_str(STRING_TOKENS[rng.gen_range(0..STRING_TOKENS.len())]),
                // Printable ASCII.
                4..=7 => out.push(char::from(rng.gen_range(0x20u32..0x7f) as u8)),
                // Arbitrary non-surrogate scalar (multi-byte UTF-8).
                _ => loop {
                    if let Some(c) = char::from_u32(rng.gen_range(0u32..0x11_0000)) {
                        out.push(c);
                        break;
                    }
                },
            }
        }
        out
    }

    fn shrink(&self, value: &String) -> Vec<String> {
        let chars: Vec<char> = value.chars().collect();
        let mut out = Vec::new();
        if chars.len() > self.min_len {
            let half = chars.len() / 2;
            if half >= self.min_len && half < chars.len() {
                out.push(chars[..half].iter().collect());
            }
            for i in (0..chars.len()).rev() {
                let mut v = chars.clone();
                v.remove(i);
                out.push(v.into_iter().collect());
            }
        }
        for (i, &c) in chars.iter().enumerate() {
            if c != 'a' {
                let mut v = chars.clone();
                v[i] = 'a';
                out.push(v.into_iter().collect());
            }
        }
        out
    }
}

macro_rules! tuple_gen {
    ($($g:ident => $idx:tt),+) => {
        impl<$($g: Gen),+> Gen for ($($g,)+) {
            type Value = ($($g::Value,)+);

            fn generate(&self, rng: &mut Rng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink(&value.$idx) {
                        let mut v = value.clone();
                        v.$idx = candidate;
                        out.push(v);
                    }
                )+
                out
            }
        }
    };
}

tuple_gen!(A => 0);
tuple_gen!(A => 0, B => 1);
tuple_gen!(A => 0, B => 1, C => 2);
tuple_gen!(A => 0, B => 1, C => 2, D => 3);

// ---------------------------------------------------------------------
// Runner
// ---------------------------------------------------------------------

/// Default number of cases per property (without any override).
pub const DEFAULT_CASES: usize = 64;

/// Hard cap on greedy shrink steps, to bound worst-case shrink time.
const MAX_SHRINK_STEPS: usize = 2_000;

/// Runs `prop` against [`DEFAULT_CASES`] generated cases (or the
/// `NOCSYN_CHECK_CASES` override), panicking with a replay recipe on the
/// first — greedily shrunk — failure.
///
/// The base seed is `hash_str(name)` unless `NOCSYN_CHECK_SEED` is set;
/// the same base seed always produces the identical case sequence.
///
/// # Panics
///
/// Panics when the property fails.
pub fn check<G: Gen>(name: &str, gen: G, prop: impl Fn(&G::Value) -> CaseResult) {
    check_n(name, DEFAULT_CASES, gen, prop);
}

/// Like [`check`] with an explicit case count (still subject to the
/// `NOCSYN_CHECK_CASES` environment override — useful for deep soaks).
///
/// # Panics
///
/// Panics when the property fails.
pub fn check_n<G: Gen>(name: &str, cases: usize, gen: G, prop: impl Fn(&G::Value) -> CaseResult) {
    let cases = match std::env::var("NOCSYN_CHECK_CASES") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("NOCSYN_CHECK_CASES is not a number: {v:?}")),
        Err(_) => cases,
    };
    let base_seed = match std::env::var("NOCSYN_CHECK_SEED") {
        Ok(v) => v
            .parse()
            .unwrap_or_else(|_| panic!("NOCSYN_CHECK_SEED is not a u64: {v:?}")),
        Err(_) => hash_str(name),
    };

    let mut discarded = 0usize;
    for case in 0..cases {
        let mut state = base_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let case_seed = splitmix64(&mut state);
        let mut rng = Rng::seed_from_u64(case_seed);
        let value = gen.generate(&mut rng);
        match prop(&value) {
            Ok(()) => {}
            Err(CaseError::Discard) => discarded += 1,
            Err(CaseError::Fail(msg)) => {
                let (shrunk, steps, final_msg) = shrink_failure(&gen, value, msg, &prop);
                panic!(
                    "property '{name}' failed at case {case}/{cases} \
                     (base seed {base_seed})\n  \
                     input (after {steps} shrink steps): {shrunk:?}\n  \
                     error: {final_msg}\n  \
                     replay: NOCSYN_CHECK_SEED={base_seed} cargo test {name}"
                );
            }
        }
    }
    // A property that discards nearly everything tests nothing; surface
    // it instead of silently passing.
    assert!(
        discarded * 2 <= cases || cases < 4,
        "property '{name}' discarded {discarded} of {cases} cases; \
         tighten its generator instead of assuming this much"
    );
}

/// Greedy descent: repeatedly replace the failing value with the first
/// shrink candidate that still fails, until no candidate fails or the
/// step budget runs out.
fn shrink_failure<G: Gen>(
    gen: &G,
    mut value: G::Value,
    mut msg: String,
    prop: &impl Fn(&G::Value) -> CaseResult,
) -> (G::Value, usize, String) {
    let mut steps = 0;
    'outer: while steps < MAX_SHRINK_STEPS {
        for candidate in gen.shrink(&value) {
            if let Err(CaseError::Fail(m)) = prop(&candidate) {
                value = candidate;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (value, steps, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        check("passing_property", usize_in(0..100), |_| {
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), DEFAULT_CASES);
    }

    #[test]
    fn failing_property_panics_with_replay_recipe() {
        let result = std::panic::catch_unwind(|| {
            check("failing_property", usize_in(0..1_000), |&v| {
                check_assert!(v < 10, "value {v} too large");
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(
            msg.contains("NOCSYN_CHECK_SEED="),
            "no replay recipe: {msg}"
        );
        assert!(msg.contains("failing_property"), "no test name: {msg}");
    }

    #[test]
    fn shrinking_reaches_the_minimal_counterexample() {
        // Property: v < 42. The minimal failure is exactly 42, and the
        // int shrinker must find it from any starting failure.
        let result = std::panic::catch_unwind(|| {
            check("shrink_to_42", usize_in(0..100_000), |&v| {
                check_assert!(v < 42);
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains(": 42\n"), "did not shrink to 42: {msg}");
    }

    #[test]
    fn vec_shrinking_reduces_length() {
        // Any vec with >= 3 elements fails; minimal counterexample has
        // exactly 3.
        let result = std::panic::catch_unwind(|| {
            check("vec_shrink", vec_of(usize_in(0..10), 0..50), |v| {
                check_assert!(v.len() < 3, "too long: {v:?}");
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        // The three surviving elements each shrink to 0.
        assert!(msg.contains("[0, 0, 0]"), "not minimal: {msg}");
    }

    #[test]
    fn same_name_same_sequence() {
        let collect = |name: &str| {
            // Discard-free property that records every generated input.
            let vals = std::cell::RefCell::new(Vec::new());
            check_n(name, 16, (usize_in(0..1_000), u64_in(0..1_000)), |v| {
                vals.borrow_mut().push(*v);
                Ok(())
            });
            vals.into_inner()
        };
        assert_eq!(collect("stable_name"), collect("stable_name"));
        assert_ne!(collect("stable_name"), collect("other_name"));
    }

    #[test]
    fn discards_are_tolerated_in_moderation() {
        check("moderate_discards", usize_in(0..100), |&v| {
            check_assume!(v % 3 != 0);
            check_assert!(v % 3 != 0);
            Ok(())
        });
    }

    #[test]
    fn excessive_discards_are_reported() {
        let result = std::panic::catch_unwind(|| {
            check("all_discarded", usize_in(0..100), |_| {
                Err(CaseError::Discard)
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("discarded"), "unexpected: {msg}");
    }

    #[test]
    fn choice_shrinks_toward_front() {
        let g = choice(["small", "medium", "large"]);
        assert_eq!(g.shrink(&"large"), vec!["small", "medium"]);
        assert!(g.shrink(&"small").is_empty());
    }

    #[test]
    fn tuple_generation_and_shrinking_compose() {
        let g = (usize_in(0..10), u32_in(0..10));
        let mut rng = Rng::seed_from_u64(1);
        let v = g.generate(&mut rng);
        assert!(v.0 < 10 && v.1 < 10);
        for (a, b) in g.shrink(&v) {
            // Exactly one component changes per candidate.
            assert!((a != v.0) ^ (b != v.1), "candidate ({a}, {b}) from {v:?}");
        }
    }

    #[test]
    fn bytes_generation_and_shrinking() {
        let g = bytes_of(0..64);
        let mut rng = Rng::seed_from_u64(2);
        let v = g.generate(&mut rng);
        assert!(v.len() < 64);
        // Shrinking a minimal-length all-zero vector proposes nothing.
        assert!(g.shrink(&Vec::new()).is_empty());
        // Deterministic across identically seeded rngs.
        let mut rng2 = Rng::seed_from_u64(2);
        assert_eq!(v, g.generate(&mut rng2));
        // A failing byte property shrinks to a small witness.
        let result = std::panic::catch_unwind(|| {
            check("bytes_shrink", bytes_of(0..64), |v| {
                check_assert!(v.len() < 4, "too long: {v:?}");
                Ok(())
            });
        });
        let msg = *result.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("[0, 0, 0, 0]"), "not minimal: {msg}");
    }

    #[test]
    fn strings_are_valid_utf8_and_deterministic() {
        let g = string_of(0..40);
        let mut a = Rng::seed_from_u64(3);
        let mut b = Rng::seed_from_u64(3);
        let s = g.generate(&mut a);
        assert_eq!(s, g.generate(&mut b));
        // Shrink candidates stay valid UTF-8 and get no longer (in chars).
        for cand in g.shrink(&s) {
            assert!(cand.chars().count() <= s.chars().count());
        }
        assert!(g.shrink(&String::new()).is_empty());
    }

    #[test]
    fn string_of_reaches_grammar_tokens() {
        // Over many draws the token splice path must fire: some output
        // contains a multi-char grammar token verbatim.
        let g = string_of(5..30);
        let mut rng = Rng::seed_from_u64(4);
        let hit = (0..200).any(|_| {
            let s = g.generate(&mut rng);
            STRING_TOKENS
                .iter()
                .filter(|t| t.len() > 2)
                .any(|t| s.contains(*t))
        });
        assert!(hit, "token splicing never fired in 200 draws");
    }

    #[test]
    fn int_shrink_proposes_strictly_smaller() {
        let g = usize_in(5..100);
        for cand in g.shrink(&50) {
            assert!((5..50).contains(&cand));
        }
        assert!(g.shrink(&5).is_empty());
    }
}
