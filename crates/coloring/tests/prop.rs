//! Property-based tests of the coloring suite's ordering invariants:
//! clique bound ≤ exact chromatic number ≤ DSATUR ≤ max degree + 1.

use proptest::prelude::*;

use nocsyn_coloring::{exact_chromatic, greedy_dsatur, two_color, ConflictGraph};

/// Strategy: a random undirected graph as (n, edge list).
fn graph_strategy() -> impl Strategy<Value = ConflictGraph> {
    (2usize..14).prop_flat_map(|n| {
        prop::collection::vec((0..n, 0..n), 0..n * 3).prop_map(move |raw| {
            let edges: Vec<(usize, usize)> =
                raw.into_iter().filter(|&(a, b)| a != b).collect();
            ConflictGraph::from_edges(n, &edges)
        })
    })
}

proptest! {
    #[test]
    fn chromatic_sandwich(graph in graph_strategy()) {
        let exact = exact_chromatic(&graph);
        let greedy = greedy_dsatur(&graph);

        prop_assert!(exact.is_proper(&graph));
        prop_assert!(greedy.is_proper(&graph));

        // Lower bound: any clique; upper bounds: DSATUR and Brooks-ish.
        prop_assert!(graph.greedy_clique_bound() <= exact.n_colors());
        prop_assert!(exact.n_colors() <= greedy.n_colors());
        let max_degree = (0..graph.n()).map(|v| graph.degree(v)).max().unwrap_or(0);
        prop_assert!(greedy.n_colors() <= max_degree + 1);
    }

    #[test]
    fn two_color_agrees_with_exact(graph in graph_strategy()) {
        match two_color(&graph) {
            Some(c) => {
                prop_assert!(c.is_proper(&graph));
                prop_assert!(exact_chromatic(&graph).n_colors() <= 2);
            }
            None => prop_assert!(exact_chromatic(&graph).n_colors() >= 3),
        }
    }

    /// Removing an edge never increases the chromatic number.
    #[test]
    fn chromatic_is_edge_monotone(n in 3usize..10, seed in 0u64..1_000) {
        let mut x = seed;
        let mut edges = Vec::new();
        for i in 0..n {
            for j in i + 1..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                if (x >> 61) % 2 == 0 {
                    edges.push((i, j));
                }
            }
        }
        prop_assume!(!edges.is_empty());
        let full = exact_chromatic(&ConflictGraph::from_edges(n, &edges)).n_colors();
        let mut reduced = edges.clone();
        reduced.pop();
        let fewer = exact_chromatic(&ConflictGraph::from_edges(n, &reduced)).n_colors();
        prop_assert!(fewer <= full);
    }
}
