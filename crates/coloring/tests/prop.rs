//! Property-based tests of the coloring suite's ordering invariants:
//! clique bound ≤ exact chromatic number ≤ DSATUR ≤ max degree + 1, on
//! the in-repo `nocsyn-check` harness.

use nocsyn_check::{check, check_assert, check_assume, u64_in, usize_in, vec_of, Gen, VecGen};

use nocsyn_coloring::{exact_chromatic, greedy_dsatur, two_color, ConflictGraph};

/// Raw material for a random undirected graph: a vertex count in `2..14`
/// plus candidate edges over the *maximum* vertex range, reduced modulo
/// the actual count at build time (the harness has no dependent
/// generation; the modulo fold keeps coverage equivalent).
fn graph_gen() -> (
    nocsyn_check::IntGen<usize>,
    VecGen<impl Gen<Value = (usize, usize)>>,
) {
    (
        usize_in(2..14),
        vec_of((usize_in(0..14), usize_in(0..14)), 0..42),
    )
}

fn build_graph(n: usize, raw: &[(usize, usize)]) -> ConflictGraph {
    let edges: Vec<(usize, usize)> = raw
        .iter()
        .map(|&(a, b)| (a % n, b % n))
        .filter(|&(a, b)| a != b)
        .collect();
    ConflictGraph::from_edges(n, &edges)
}

#[test]
fn chromatic_sandwich() {
    check("chromatic_sandwich", graph_gen(), |(n, raw)| {
        let graph = build_graph(*n, raw);
        let exact = exact_chromatic(&graph);
        let greedy = greedy_dsatur(&graph);

        check_assert!(exact.is_proper(&graph));
        check_assert!(greedy.is_proper(&graph));

        // Lower bound: any clique; upper bounds: DSATUR and Brooks-ish.
        check_assert!(graph.greedy_clique_bound() <= exact.n_colors());
        check_assert!(exact.n_colors() <= greedy.n_colors());
        let max_degree = (0..graph.n()).map(|v| graph.degree(v)).max().unwrap_or(0);
        check_assert!(greedy.n_colors() <= max_degree + 1);
        Ok(())
    });
}

#[test]
fn two_color_agrees_with_exact() {
    check("two_color_agrees_with_exact", graph_gen(), |(n, raw)| {
        let graph = build_graph(*n, raw);
        match two_color(&graph) {
            Some(c) => {
                check_assert!(c.is_proper(&graph));
                check_assert!(exact_chromatic(&graph).n_colors() <= 2);
            }
            None => check_assert!(exact_chromatic(&graph).n_colors() >= 3),
        }
        Ok(())
    });
}

/// Removing an edge never increases the chromatic number.
#[test]
fn chromatic_is_edge_monotone() {
    check(
        "chromatic_is_edge_monotone",
        (usize_in(3..10), u64_in(0..1_000)),
        |&(n, seed)| {
            let mut x = seed;
            let mut edges = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    if (x >> 61) % 2 == 0 {
                        edges.push((i, j));
                    }
                }
            }
            check_assume!(!edges.is_empty());
            let full = exact_chromatic(&ConflictGraph::from_edges(n, &edges)).n_colors();
            let mut reduced = edges.clone();
            reduced.pop();
            let fewer = exact_chromatic(&ConflictGraph::from_edges(n, &reduced)).n_colors();
            check_assert!(fewer <= full);
            Ok(())
        },
    );
}
