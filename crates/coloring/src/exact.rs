//! Exact chromatic number by branch and bound — the paper's "formal
//! coloring", run once at topology finalization.

use crate::{greedy_dsatur, Coloring, ConflictGraph};

/// Computes an optimal proper coloring of `graph` by depth-first branch and
/// bound.
///
/// Vertices are assigned in descending-degree order; at each step a vertex
/// may take any color already in use or one fresh color (standard symmetry
/// breaking), and branches whose color count reaches the incumbent are
/// pruned. The incumbent starts at the DSATUR solution and the search stops
/// early when it matches the greedy clique lower bound.
///
/// Conflict graphs at finalization are small (the paper's algorithm only
/// formally colors pipes it expects to need ≤ 2 links; we run exact
/// coloring on every pipe for robustness), so exponential worst case is not
/// a concern in practice. For safety the search is capped at ~2 million
/// nodes, falling back to the DSATUR coloring if exceeded — the result is
/// then still proper, merely possibly suboptimal.
pub fn exact_chromatic(graph: &ConflictGraph) -> Coloring {
    let n = graph.n();
    if n == 0 {
        return Coloring::new(Vec::new());
    }
    let incumbent = greedy_dsatur(graph);
    let lower = graph.greedy_clique_bound();
    if incumbent.n_colors() <= lower {
        return incumbent;
    }

    // Order vertices by descending degree for earlier pruning.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));

    let mut search = Search {
        graph,
        order: &order,
        assignment: vec![usize::MAX; n],
        best: incumbent.colors().to_vec(),
        best_count: incumbent.n_colors(),
        lower,
        budget: 2_000_000,
    };
    search.dfs(0, 0);
    Coloring::new(search.best)
}

struct Search<'a> {
    graph: &'a ConflictGraph,
    order: &'a [usize],
    assignment: Vec<usize>,
    best: Vec<usize>,
    best_count: usize,
    lower: usize,
    budget: usize,
}

impl Search<'_> {
    /// Extends the partial assignment at position `depth` with `used`
    /// colors already in play.
    fn dfs(&mut self, depth: usize, used: usize) {
        if self.budget == 0 || self.best_count <= self.lower {
            return;
        }
        self.budget -= 1;

        if depth == self.order.len() {
            // Complete proper coloring with `used` colors (< best_count by
            // construction of the branching bound).
            self.best = self.assignment.clone();
            self.best_count = used;
            return;
        }

        let v = self.order[depth];
        let max_color = (used + 1).min(self.best_count - 1);
        for color in 0..max_color {
            let conflict = self.graph.neighbors(v).any(|u| self.assignment[u] == color);
            if conflict {
                continue;
            }
            self.assignment[v] = color;
            self.dfs(depth + 1, used.max(color + 1));
            self.assignment[v] = usize::MAX;
            if self.best_count <= self.lower {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chromatic(n: usize, edges: &[(usize, usize)]) -> usize {
        let g = ConflictGraph::from_edges(n, edges);
        let c = exact_chromatic(&g);
        assert!(c.is_proper(&g));
        c.n_colors()
    }

    #[test]
    fn known_chromatic_numbers() {
        assert_eq!(chromatic(0, &[]), 0);
        assert_eq!(chromatic(4, &[]), 1);
        assert_eq!(chromatic(2, &[(0, 1)]), 2);
        // Odd cycle C5.
        assert_eq!(chromatic(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]), 3);
        // Even cycle C6.
        assert_eq!(
            chromatic(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]),
            2
        );
        // K4.
        assert_eq!(
            chromatic(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]),
            4
        );
    }

    #[test]
    fn wheel_graphs() {
        // W5 (C5 + hub): chromatic number 4; W6 (C6 + hub): 3.
        let mut w5: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        w5.extend((0..5).map(|i| (i, 5)));
        assert_eq!(chromatic(6, &w5), 4);

        let mut w6: Vec<(usize, usize)> = (0..6).map(|i| (i, (i + 1) % 6)).collect();
        w6.extend((0..6).map(|i| (i, 6)));
        assert_eq!(chromatic(7, &w6), 3);
    }

    #[test]
    fn petersen_graph_is_three_chromatic() {
        let outer: Vec<(usize, usize)> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        let spokes: Vec<(usize, usize)> = (0..5).map(|i| (i, i + 5)).collect();
        let inner: Vec<(usize, usize)> = (0..5).map(|i| (i + 5, (i + 2) % 5 + 5)).collect();
        let edges: Vec<_> = outer.into_iter().chain(spokes).chain(inner).collect();
        assert_eq!(chromatic(10, &edges), 3);
    }

    #[test]
    fn exact_never_exceeds_dsatur() {
        let mut x = 7u64;
        for trial in 0..25 {
            let n = 4 + trial % 12;
            let mut edges = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if (x >> 59).is_multiple_of(3) {
                        edges.push((i, j));
                    }
                }
            }
            let g = ConflictGraph::from_edges(n, &edges);
            let exact = exact_chromatic(&g);
            let greedy = greedy_dsatur(&g);
            assert!(exact.is_proper(&g));
            assert!(exact.n_colors() <= greedy.n_colors());
            assert!(exact.n_colors() >= g.greedy_clique_bound());
        }
    }
}
