//! Polynomial 2-coloring.
//!
//! Section 3.3 of the paper notes that once partitioning spreads traffic
//! thin enough, pipes need at most two links and "the coloring problem
//! becomes solvable in polynomial time". This module is that polynomial
//! case: a BFS bipartiteness test.

use std::collections::VecDeque;

use crate::{Coloring, ConflictGraph};

/// Attempts to properly color `graph` with at most two colors.
///
/// Returns `Some` coloring iff the graph is bipartite (no odd cycle);
/// isolated vertices take color 0, and a graph with no edges uses a single
/// color. Runs in `O(V + E)`.
pub fn two_color(graph: &ConflictGraph) -> Option<Coloring> {
    let n = graph.n();
    let mut colors: Vec<Option<usize>> = vec![None; n];
    for start in 0..n {
        if colors[start].is_some() {
            continue;
        }
        colors[start] = Some(0);
        let mut queue = VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            let cv = colors[v].expect("queued vertices are colored");
            for u in graph.neighbors(v) {
                match colors[u] {
                    None => {
                        colors[u] = Some(1 - cv);
                        queue.push_back(u);
                    }
                    Some(cu) if cu == cv => return None,
                    Some(_) => {}
                }
            }
        }
    }
    Some(Coloring::new(
        colors
            .into_iter()
            .map(|c| c.expect("all components visited"))
            .collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact_chromatic;

    #[test]
    fn path_is_bipartite() {
        let g = ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let c = two_color(&g).expect("paths are bipartite");
        assert!(c.is_proper(&g));
        assert_eq!(c.n_colors(), 2);
    }

    #[test]
    fn odd_cycle_is_not() {
        let g = ConflictGraph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]);
        assert!(two_color(&g).is_none());
    }

    #[test]
    fn edgeless_graph_uses_one_color() {
        let g = ConflictGraph::from_edges(3, &[]);
        let c = two_color(&g).unwrap();
        assert_eq!(c.n_colors(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = ConflictGraph::from_edges(0, &[]);
        assert_eq!(two_color(&g).unwrap().n_colors(), 0);
    }

    #[test]
    fn disconnected_components_handled() {
        // Two disjoint edges and an isolated vertex.
        let g = ConflictGraph::from_edges(5, &[(0, 1), (2, 3)]);
        let c = two_color(&g).unwrap();
        assert!(c.is_proper(&g));
        assert_eq!(c.n_colors(), 2);
    }

    #[test]
    fn agrees_with_exact_on_random_graphs() {
        let mut x = 31u64;
        for _ in 0..30 {
            let n = 4 + (x as usize) % 8;
            let mut edges = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if (x >> 61) == 0 {
                        edges.push((i, j));
                    }
                }
            }
            let g = ConflictGraph::from_edges(n, &edges);
            let exact = exact_chromatic(&g).n_colors();
            match two_color(&g) {
                Some(c) => {
                    assert!(c.is_proper(&g));
                    assert!(c.n_colors() <= 2);
                    assert!(exact <= 2);
                }
                None => assert!(exact > 2),
            }
        }
    }
}
