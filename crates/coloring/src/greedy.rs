//! DSATUR greedy coloring: a fast, good upper bound.

use crate::{Coloring, ConflictGraph};

/// Colors `graph` with the DSATUR heuristic (Brélaz 1979): repeatedly pick
/// the uncolored vertex with the most distinctly-colored neighbors
/// (saturation), breaking ties by degree then index, and give it the lowest
/// feasible color.
///
/// DSATUR is exact on bipartite graphs and typically within one color of
/// optimal on the small, dense conflict graphs pipe sizing produces. The
/// result is always a *proper* coloring; its color count is an upper bound
/// on the chromatic number.
pub fn greedy_dsatur(graph: &ConflictGraph) -> Coloring {
    let n = graph.n();
    let mut colors: Vec<Option<usize>> = vec![None; n];
    // saturation[v]: bitmask (by Vec<u64>) of neighbor colors, plus count.
    let words = n.div_ceil(64).max(1);
    let mut neighbor_colors: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
    let mut saturation = vec![0usize; n];

    for _ in 0..n {
        // Select the most saturated uncolored vertex.
        let v = (0..n)
            .filter(|&v| colors[v].is_none())
            .max_by_key(|&v| (saturation[v], graph.degree(v), std::cmp::Reverse(v)))
            .expect("an uncolored vertex remains");

        // Lowest color absent from v's neighborhood.
        let mut color = 0;
        while neighbor_colors[v][color / 64] & (1 << (color % 64)) != 0 {
            color += 1;
        }
        colors[v] = Some(color);

        for u in graph.neighbors(v) {
            if colors[u].is_none() {
                let bit = 1u64 << (color % 64);
                if neighbor_colors[u][color / 64] & bit == 0 {
                    neighbor_colors[u][color / 64] |= bit;
                    saturation[u] += 1;
                }
            }
        }
    }

    Coloring::new(
        colors
            .into_iter()
            .map(|c| c.expect("all vertices colored"))
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_uses_no_colors() {
        let g = ConflictGraph::from_edges(0, &[]);
        assert_eq!(greedy_dsatur(&g).n_colors(), 0);
    }

    #[test]
    fn edgeless_graph_uses_one_color() {
        let g = ConflictGraph::from_edges(5, &[]);
        let c = greedy_dsatur(&g);
        assert_eq!(c.n_colors(), 1);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let mut edges = Vec::new();
        for i in 0..6 {
            for j in i + 1..6 {
                edges.push((i, j));
            }
        }
        let g = ConflictGraph::from_edges(6, &edges);
        let c = greedy_dsatur(&g);
        assert_eq!(c.n_colors(), 6);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn even_cycle_is_two_colored() {
        let edges: Vec<(usize, usize)> = (0..8).map(|i| (i, (i + 1) % 8)).collect();
        let g = ConflictGraph::from_edges(8, &edges);
        let c = greedy_dsatur(&g);
        assert_eq!(c.n_colors(), 2); // DSATUR is exact on bipartite graphs
        assert!(c.is_proper(&g));
    }

    #[test]
    fn odd_cycle_is_three_colored() {
        let edges: Vec<(usize, usize)> = (0..7).map(|i| (i, (i + 1) % 7)).collect();
        let g = ConflictGraph::from_edges(7, &edges);
        let c = greedy_dsatur(&g);
        assert_eq!(c.n_colors(), 3);
        assert!(c.is_proper(&g));
    }

    #[test]
    fn coloring_is_always_proper_on_random_graphs() {
        // Deterministic LCG-generated random graphs.
        let mut x = 99u64;
        for trial in 0..20 {
            let n = 5 + trial % 10;
            let mut edges = Vec::new();
            for i in 0..n {
                for j in i + 1..n {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if (x >> 60).is_multiple_of(2) {
                        edges.push((i, j));
                    }
                }
            }
            let g = ConflictGraph::from_edges(n, &edges);
            let c = greedy_dsatur(&g);
            assert!(c.is_proper(&g), "improper coloring on trial {trial}");
            assert!(c.n_colors() >= g.greedy_clique_bound());
        }
    }
}
