//! The paper's `Fast_Color` procedure (Section 3.3 and Appendix).
//!
//! Solving a coloring problem for every candidate partition move would be
//! prohibitively expensive (and NP-hard in general). The paper's key
//! complexity lever is to *estimate* the links a pipe needs with a tight
//! lower bound instead: communications that belong to the same maximum
//! clique (contention period) and cross the same pipe direction pairwise
//! conflict, so they form a clique in the pipe's conflict graph — no
//! coloring can use fewer colors than the largest such intersection. The
//! bound is computed in `O(KL)` over `K` cliques of size ≤ `L`.

use std::collections::BTreeSet;

use nocsyn_model::{CliqueSet, Flow, FlowSet};

/// Lower-bounds the links needed by *one direction* of a pipe carrying
/// `crossing`: the maximum, over every maximum clique, of how many clique
/// members cross.
pub fn fast_color_directed(cliques: &CliqueSet, crossing: &BTreeSet<Flow>) -> usize {
    cliques.max_overlap_with(|f| crossing.contains(&f))
}

/// The paper's `Fast_Color(Pipe P)`: estimates the number of full-duplex
/// links a pipe needs given the communications crossing it forward
/// (`forward`) and backward (`backward`).
///
/// Each direction is bounded separately ([`fast_color_directed`]); since a
/// full-duplex link serves both directions independently, the pipe needs
/// the maximum of the two.
///
/// ```
/// use std::collections::BTreeSet;
/// use nocsyn_coloring::fast_color;
/// use nocsyn_model::{Clique, CliqueSet, Flow};
///
/// // One contention period with 4 concurrent flows.
/// let cliques = CliqueSet::from_cliques([Clique::from([(0, 8), (1, 9), (8, 0), (9, 1)])]);
/// let forward: BTreeSet<Flow> =
///     [Flow::from_indices(0, 8), Flow::from_indices(1, 9)].into();
/// let backward: BTreeSet<Flow> =
///     [Flow::from_indices(8, 0), Flow::from_indices(9, 1)].into();
/// // Two simultaneous crossings each way -> 2 links suffice at minimum.
/// assert_eq!(fast_color(&cliques, &forward, &backward), 2);
/// ```
pub fn fast_color(
    cliques: &CliqueSet,
    forward: &BTreeSet<Flow>,
    backward: &BTreeSet<Flow>,
) -> usize {
    fast_color_directed(cliques, forward).max(fast_color_directed(cliques, backward))
}

/// Bitset form of [`fast_color_directed`]: the clique masks come from
/// [`CliqueSet::compile_masks`] and `crossing` is a [`FlowSet`] over the
/// same interner, so each clique costs one AND + popcount pass instead of
/// a tree probe per member.
///
/// Computes the identical integer as the predicate form — `|mask ∩
/// crossing|` is the same count whichever representation holds the sets —
/// which is what keeps bitset-backed synthesis bit-identical.
pub fn fast_color_directed_masks(clique_masks: &[FlowSet], crossing: &FlowSet) -> usize {
    clique_masks
        .iter()
        .map(|m| m.intersection_len(crossing))
        .max()
        .unwrap_or(0)
}

/// Bitset form of [`fast_color`]: per-direction [`fast_color_directed_masks`],
/// maximum of the two.
pub fn fast_color_masks(clique_masks: &[FlowSet], forward: &FlowSet, backward: &FlowSet) -> usize {
    fast_color_directed_masks(clique_masks, forward)
        .max(fast_color_directed_masks(clique_masks, backward))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_chromatic, ConflictGraph};
    use nocsyn_model::{Clique, ContentionSet, FlowPair};

    fn flows(pairs: &[(usize, usize)]) -> BTreeSet<Flow> {
        pairs.iter().map(|&p| Flow::from(p)).collect()
    }

    #[test]
    fn empty_inputs_need_zero_links() {
        let k = CliqueSet::new();
        assert_eq!(fast_color(&k, &BTreeSet::new(), &BTreeSet::new()), 0);
        let k2 = CliqueSet::from_cliques([Clique::from([(0, 1)])]);
        assert_eq!(fast_color(&k2, &BTreeSet::new(), &BTreeSet::new()), 0);
    }

    #[test]
    fn directions_are_independent() {
        let k = CliqueSet::from_cliques([Clique::from([(0, 4), (1, 5), (4, 0)])]);
        let fwd = flows(&[(0, 4), (1, 5)]);
        let bwd = flows(&[(4, 0)]);
        assert_eq!(fast_color_directed(&k, &fwd), 2);
        assert_eq!(fast_color_directed(&k, &bwd), 1);
        assert_eq!(fast_color(&k, &fwd, &bwd), 2);
    }

    #[test]
    fn paper_cut_example_shape() {
        // Mirrors the paper's Cut 1 vs Cut 2 discussion (Fig. 2): more
        // messages crossing a cut does not imply more links if they fall in
        // different contention periods.
        let k = CliqueSet::from_cliques([
            Clique::from([(9, 10), (1, 2)]),
            Clique::from([(9, 11), (3, 4)]),
            Clique::from([(8, 14), (4, 13), (7, 10)]),
        ]);
        // Five messages cross this cut, but at most three are concurrent.
        let crossing = flows(&[(9, 10), (9, 11), (8, 14), (4, 13), (7, 10)]);
        assert_eq!(fast_color_directed(&k, &crossing), 3);
    }

    #[test]
    fn fast_color_lower_bounds_exact_coloring() {
        // Build a contention set whose conflict graph we can color exactly
        // and confirm the clique bound never exceeds the chromatic number.
        let periods = [
            vec![(0, 4), (1, 5), (2, 6)],
            vec![(0, 4), (3, 7)],
            vec![(1, 5), (2, 6), (3, 7)],
        ];
        let k = CliqueSet::from_cliques(
            periods
                .iter()
                .map(|p| p.iter().map(|&q| Flow::from(q)).collect::<Clique>()),
        );
        let crossing: BTreeSet<Flow> = periods.iter().flatten().map(|&q| Flow::from(q)).collect();

        // Contention set: pairs co-resident in a period.
        let mut c = ContentionSet::new();
        for p in &periods {
            for i in 0..p.len() {
                for j in i + 1..p.len() {
                    c.extend([FlowPair::new(Flow::from(p[i]), Flow::from(p[j]))]);
                }
            }
        }
        let graph = ConflictGraph::from_flows(crossing.iter().copied().collect(), &c);
        let chi = exact_chromatic(&graph).n_colors();
        let bound = fast_color_directed(&k, &crossing);
        assert!(bound <= chi, "bound {bound} exceeds chromatic number {chi}");
        assert_eq!(bound, 3);
        // The three periods pairwise cover every flow pair, so the conflict
        // graph is K4 and the true chromatic number is 4: the fast bound is
        // a *lower* bound and can be loose — exactly why the paper re-runs
        // formal coloring at finalization.
        assert_eq!(chi, 4);
    }

    #[test]
    fn bound_counts_only_crossing_members() {
        let k = CliqueSet::from_cliques([Clique::from([(0, 1), (2, 3), (4, 5), (6, 7)])]);
        let crossing = flows(&[(0, 1), (4, 5)]);
        assert_eq!(fast_color_directed(&k, &crossing), 2);
    }

    #[test]
    fn mask_form_matches_predicate_form() {
        use nocsyn_model::FlowInterner;

        let k = CliqueSet::from_cliques([
            Clique::from([(9, 10), (1, 2)]),
            Clique::from([(9, 11), (3, 4)]),
            Clique::from([(8, 14), (4, 13), (7, 10)]),
        ]);
        let interner = FlowInterner::from_flows(k.all_flows());
        let masks = k.compile_masks(&interner);

        let fwd = flows(&[(9, 10), (9, 11), (8, 14), (4, 13), (7, 10)]);
        let bwd = flows(&[(1, 2), (3, 4)]);
        let fwd_mask = interner.set_of(fwd.iter().copied());
        let bwd_mask = interner.set_of(bwd.iter().copied());

        assert_eq!(
            fast_color_directed_masks(&masks, &fwd_mask),
            fast_color_directed(&k, &fwd)
        );
        assert_eq!(
            fast_color_directed_masks(&masks, &bwd_mask),
            fast_color_directed(&k, &bwd)
        );
        assert_eq!(
            fast_color_masks(&masks, &fwd_mask, &bwd_mask),
            fast_color(&k, &fwd, &bwd)
        );
        assert_eq!(fast_color_directed_masks(&[], &fwd_mask), 0);
    }
}
