//! Conflict-graph coloring for pipe sizing.
//!
//! During synthesis, the number of links a pipe needs for contention-free
//! operation equals the chromatic number of the pipe's *conflict graph*
//! (vertices = communications crossing the pipe in one direction, edges =
//! potential temporal conflicts; Section 3.1 of Ho & Pinkston, HPCA 2003).
//! This crate provides:
//!
//! * [`ConflictGraph`] — the graph itself, built from a flow set and a
//!   contention set.
//! * [`greedy_dsatur`] — fast upper bound (DSATUR heuristic).
//! * [`exact_chromatic`] — exact chromatic number by branch and bound, used
//!   at topology finalization (the paper's "formal coloring").
//! * [`two_color`] — polynomial 2-coloring for the ≤2-link pipes the
//!   finalization step expects (Section 3.3).
//! * [`fast_color`] — the paper's `Fast_Color` procedure: a clique-derived
//!   lower bound computed in `O(KL)` without solving any coloring problem.
//!
//! # Example
//!
//! ```
//! use nocsyn_coloring::{exact_chromatic, greedy_dsatur, ConflictGraph};
//! use nocsyn_model::{Flow, Message, ProcId, Trace};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Three mutually overlapping messages -> a triangle conflict graph.
//! let mut t = Trace::new(6);
//! t.push(Message::new(ProcId(0), ProcId(1), 0, 10)?)?;
//! t.push(Message::new(ProcId(2), ProcId(3), 0, 10)?)?;
//! t.push(Message::new(ProcId(4), ProcId(5), 0, 10)?)?;
//!
//! let flows: Vec<Flow> = t.flows().into_iter().collect();
//! let graph = ConflictGraph::from_flows(flows, &t.contention_set());
//! assert_eq!(greedy_dsatur(&graph).n_colors(), 3);
//! assert_eq!(exact_chromatic(&graph).n_colors(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod bipartite;
mod exact;
mod fast;
mod graph;
mod greedy;

pub use bipartite::two_color;
pub use exact::exact_chromatic;
pub use fast::{fast_color, fast_color_directed, fast_color_directed_masks, fast_color_masks};
pub use graph::{Coloring, ConflictGraph};
pub use greedy::greedy_dsatur;
