//! The conflict graph of a set of communications.

use std::fmt;

use nocsyn_model::{ContentionSet, Flow};

/// An undirected graph whose vertices are communications (flows) and whose
/// edges join pairs that potentially conflict in time.
///
/// Adjacency is stored as per-vertex bitsets; conflict graphs are small
/// (bounded by the flows crossing one pipe), so dense storage wins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictGraph {
    flows: Vec<Flow>,
    /// `adj[i]` holds one bit per vertex, packed into 64-bit words.
    adj: Vec<Vec<u64>>,
    n_edges: usize,
}

impl ConflictGraph {
    /// Builds the conflict graph over `flows`, joining two flows when the
    /// contention set marks them as potentially colliding.
    ///
    /// A flow paired with *itself* in the contention set (a pipelined
    /// repeat) cannot be represented as a self-edge in a coloring problem;
    /// per the paper's model such repeats are carried by the same vertex.
    pub fn from_flows(flows: Vec<Flow>, contention: &ContentionSet) -> Self {
        let n = flows.len();
        let words = n.div_ceil(64);
        let mut adj = vec![vec![0u64; words]; n];
        let mut n_edges = 0;
        for i in 0..n {
            for j in i + 1..n {
                if contention.conflicts(flows[i], flows[j]) {
                    adj[i][j / 64] |= 1 << (j % 64);
                    adj[j][i / 64] |= 1 << (i % 64);
                    n_edges += 1;
                }
            }
        }
        ConflictGraph {
            flows,
            adj,
            n_edges,
        }
    }

    /// Builds a graph from an explicit vertex count and edge list (vertex
    /// identities only; useful for tests and generic coloring).
    ///
    /// Flows are synthesized as `(i, i + n)` placeholders.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is out of range or a self-loop.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let flows = (0..n).map(|i| Flow::from_indices(i, i + n)).collect();
        let words = n.div_ceil(64);
        let mut adj = vec![vec![0u64; words]; n];
        let mut n_edges = 0;
        for &(i, j) in edges {
            assert!(i < n && j < n && i != j, "bad edge ({i}, {j}) for n = {n}");
            if adj[i][j / 64] & (1 << (j % 64)) == 0 {
                adj[i][j / 64] |= 1 << (j % 64);
                adj[j][i / 64] |= 1 << (i % 64);
                n_edges += 1;
            }
        }
        ConflictGraph {
            flows,
            adj,
            n_edges,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.flows.len()
    }

    /// Number of edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// The flow at vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn flow(&self, i: usize) -> Flow {
        self.flows[i]
    }

    /// Whether vertices `i` and `j` are adjacent.
    pub fn adjacent(&self, i: usize, j: usize) -> bool {
        self.adj[i][j / 64] & (1 << (j % 64)) != 0
    }

    /// Degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.adj[i].iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Iterates over the neighbors of vertex `i` in increasing order.
    pub fn neighbors(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.adj[i]
            .iter()
            .enumerate()
            .flat_map(|(w, &bits)| BitIter { bits, base: w * 64 })
    }

    /// A greedy lower bound on the clique number: grows a clique from each
    /// vertex in descending-degree order. Used as the starting lower bound
    /// for branch and bound.
    pub fn greedy_clique_bound(&self) -> usize {
        let n = self.n();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(self.degree(v)));
        let mut best = usize::from(n > 0);
        for &start in order.iter().take(16.min(n)) {
            let mut clique = vec![start];
            for &v in &order {
                if v != start && clique.iter().all(|&u| self.adjacent(u, v)) {
                    clique.push(v);
                }
            }
            best = best.max(clique.len());
        }
        best
    }
}

impl fmt::Display for ConflictGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "conflict graph: {} vertices, {} edges",
            self.n(),
            self.n_edges
        )?;
        for i in 0..self.n() {
            let nb: Vec<String> = self.neighbors(i).map(|j| j.to_string()).collect();
            writeln!(f, "  {} ({}): [{}]", i, self.flows[i], nb.join(", "))?;
        }
        Ok(())
    }
}

struct BitIter {
    bits: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = usize;
    fn next(&mut self) -> Option<usize> {
        if self.bits == 0 {
            return None;
        }
        let tz = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.base + tz)
    }
}

/// A proper coloring of a [`ConflictGraph`]: `color(i)` is the link index
/// assigned to vertex `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<usize>,
    n_colors: usize,
}

impl Coloring {
    /// Creates a coloring from per-vertex assignments.
    pub fn new(colors: Vec<usize>) -> Self {
        let n_colors = colors.iter().copied().max().map_or(0, |m| m + 1);
        Coloring { colors, n_colors }
    }

    /// The color (link index) of vertex `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn color(&self, i: usize) -> usize {
        self.colors[i]
    }

    /// Number of distinct colors used.
    pub fn n_colors(&self) -> usize {
        self.n_colors
    }

    /// Per-vertex color slice.
    pub fn colors(&self) -> &[usize] {
        &self.colors
    }

    /// Whether this coloring is proper for `graph` (no edge joins two
    /// same-colored vertices) and covers every vertex.
    pub fn is_proper(&self, graph: &ConflictGraph) -> bool {
        if self.colors.len() != graph.n() {
            return false;
        }
        for i in 0..graph.n() {
            for j in graph.neighbors(i) {
                if j > i && self.colors[i] == self.colors[j] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::{Message, ProcId, Trace};

    fn triangle() -> ConflictGraph {
        ConflictGraph::from_edges(3, &[(0, 1), (1, 2), (0, 2)])
    }

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let g = triangle();
        assert_eq!(g.n(), 3);
        assert_eq!(g.n_edges(), 3);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g.adjacent(i, j), i != j);
            }
        }
        assert_eq!(g.degree(0), 2);
    }

    #[test]
    fn duplicate_edges_counted_once() {
        let g = ConflictGraph::from_edges(2, &[(0, 1), (1, 0), (0, 1)]);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn neighbors_across_word_boundary() {
        // 70 vertices: star centered at 0 touching 64..70.
        let edges: Vec<(usize, usize)> = (64..70).map(|j| (0, j)).collect();
        let g = ConflictGraph::from_edges(70, &edges);
        let nb: Vec<usize> = g.neighbors(0).collect();
        assert_eq!(nb, (64..70).collect::<Vec<_>>());
        assert_eq!(g.degree(0), 6);
        assert!(g.adjacent(67, 0));
    }

    #[test]
    fn from_flows_uses_contention_set() {
        let mut t = Trace::new(6);
        t.push(Message::new(ProcId(0), ProcId(1), 0, 10).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(2), ProcId(3), 5, 15).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(4), ProcId(5), 20, 30).unwrap())
            .unwrap();
        let flows: Vec<Flow> = t.flows().into_iter().collect();
        let g = ConflictGraph::from_flows(flows, &t.contention_set());
        assert_eq!(g.n(), 3);
        assert_eq!(g.n_edges(), 1);
    }

    #[test]
    fn clique_bound_on_triangle_plus_pendant() {
        let g = ConflictGraph::from_edges(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]);
        assert_eq!(g.greedy_clique_bound(), 3);
    }

    #[test]
    fn clique_bound_trivial_cases() {
        assert_eq!(ConflictGraph::from_edges(0, &[]).greedy_clique_bound(), 0);
        assert_eq!(ConflictGraph::from_edges(3, &[]).greedy_clique_bound(), 1);
    }

    #[test]
    fn coloring_properness() {
        let g = triangle();
        assert!(Coloring::new(vec![0, 1, 2]).is_proper(&g));
        assert!(!Coloring::new(vec![0, 0, 1]).is_proper(&g));
        assert!(!Coloring::new(vec![0, 1]).is_proper(&g)); // wrong length
        assert_eq!(Coloring::new(vec![0, 1, 2]).n_colors(), 3);
        assert_eq!(Coloring::new(vec![]).n_colors(), 0);
    }
}
