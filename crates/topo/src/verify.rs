//! Theorem 1: the sufficient condition for contention freedom.

use std::fmt;

use nocsyn_model::{ContentionSet, Flow};

use crate::{Channel, ConflictSet, RouteTable};

/// One violation of the contention-free condition: a pair of flows that is
/// both in the application's potential contention set `C` and in the
/// network's resource conflict set `R`, with the channels they fight over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContentionWitness {
    /// First flow of the colliding pair.
    pub flow_a: Flow,
    /// Second flow of the colliding pair.
    pub flow_b: Flow,
    /// The directed channels shared by their routes.
    pub shared: Vec<Channel>,
}

impl fmt::Display for ContentionWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} and {} share", self.flow_a, self.flow_b)?;
        for ch in &self.shared {
            write!(f, " {ch}")?;
        }
        Ok(())
    }
}

/// Outcome of checking Theorem 1 over a concrete application and network.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ContentionReport {
    witnesses: Vec<ContentionWitness>,
}

impl ContentionReport {
    /// Builds a report from pre-computed witnesses. Crate-internal: the
    /// incremental checker constructs reports that must be
    /// indistinguishable from a [`verify_contention_free`] run, and
    /// keeping this private preserves "a report came from a check".
    pub(crate) fn from_witnesses(witnesses: Vec<ContentionWitness>) -> Self {
        ContentionReport { witnesses }
    }

    /// Whether `C ∩ R = ∅`, i.e. the sufficient condition for
    /// contention-free communication holds.
    pub fn is_contention_free(&self) -> bool {
        self.witnesses.is_empty()
    }

    /// The violating pairs, if any.
    pub fn witnesses(&self) -> &[ContentionWitness] {
        &self.witnesses
    }

    /// Number of violating pairs.
    pub fn len(&self) -> usize {
        self.witnesses.len()
    }

    /// Whether there are no violations (alias of
    /// [`ContentionReport::is_contention_free`] for collection symmetry).
    pub fn is_empty(&self) -> bool {
        self.witnesses.is_empty()
    }
}

impl fmt::Display for ContentionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_contention_free() {
            write!(f, "contention-free: C ∩ R = ∅")
        } else {
            writeln!(
                f,
                "{} potential contention(s) mapped to shared links:",
                self.len()
            )?;
            for w in &self.witnesses {
                writeln!(f, "  {w}")?;
            }
            Ok(())
        }
    }
}

/// Checks Theorem 1 of the paper: the application with potential
/// communication contention set `contention` is contention-free on the
/// network realized by `routes` if `C ∩ R = ∅`.
///
/// Instead of materializing all of `R`, each pair of `C` is tested directly
/// against the two routes — `C` is the smaller set by construction and every
/// element of the intersection must come from it.
///
/// Flows in `C` with no route in the table are ignored (they carry no
/// traffic on this network); synthesis guarantees every application flow is
/// routed before verification.
///
/// ```
/// use nocsyn_model::{Message, ProcId, Trace};
/// use nocsyn_topo::{regular, verify_contention_free};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut trace = Trace::new(4);
/// trace.push(Message::new(ProcId(0), ProcId(3), 0, 10)?)?;
/// trace.push(Message::new(ProcId(1), ProcId(3), 0, 10)?)?;
///
/// let (_, crossbar_routes) = regular::crossbar(4)?;
/// // Two messages into one destination share its ejection link even on a
/// // crossbar: no network can make this pattern contention-free.
/// let report = verify_contention_free(&trace.contention_set(), &crossbar_routes);
/// assert!(!report.is_contention_free());
/// # Ok(())
/// # }
/// ```
pub fn verify_contention_free(contention: &ContentionSet, routes: &RouteTable) -> ContentionReport {
    let mut witnesses = Vec::new();
    for pair in contention.iter() {
        let (a, b) = (pair.first(), pair.second());
        let (Some(ra), Some(rb)) = (routes.route(a), routes.route(b)) else {
            continue;
        };
        let shared = ra.shared_channels(rb);
        if !shared.is_empty() {
            witnesses.push(ContentionWitness {
                flow_a: a,
                flow_b: b,
                shared,
            });
        }
    }
    ContentionReport { witnesses }
}

/// Convenience: checks Theorem 1 against a pre-materialized conflict set
/// instead of raw routes (no witness channels available this way).
pub fn intersects(contention: &ContentionSet, conflicts: &ConflictSet) -> bool {
    contention
        .iter()
        .any(|p| conflicts.conflicts(p.first(), p.second()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular;
    use nocsyn_model::{Message, ProcId, Trace};

    fn concurrent_trace(flows: &[(usize, usize)], n: usize) -> Trace {
        let mut t = Trace::new(n);
        for &(s, d) in flows {
            t.push(Message::new(ProcId(s), ProcId(d), 0, 10).unwrap())
                .unwrap();
        }
        t
    }

    #[test]
    fn crossbar_is_contention_free_for_permutations() {
        let t = concurrent_trace(&[(0, 1), (1, 0), (2, 3), (3, 2)], 4);
        let (_, routes) = regular::crossbar(4).unwrap();
        let report = verify_contention_free(&t.contention_set(), &routes);
        assert!(report.is_contention_free());
        assert!(report.is_empty());
    }

    #[test]
    fn mesh_column_sharing_is_witnessed() {
        // On a 2x2 DOR mesh, 0->3 and 1->3 share the column channel into
        // switch 3 and the ejection link of proc 3.
        let t = concurrent_trace(&[(0, 3), (1, 3)], 4);
        let (_, routes) = regular::mesh(2, 2).unwrap();
        let report = verify_contention_free(&t.contention_set(), &routes);
        assert!(!report.is_contention_free());
        assert_eq!(report.len(), 1);
        let w = &report.witnesses()[0];
        assert!(!w.shared.is_empty());
    }

    #[test]
    fn sequential_messages_never_contend() {
        let mut t = Trace::new(4);
        t.push(Message::new(ProcId(0), ProcId(3), 0, 10).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(1), ProcId(3), 20, 30).unwrap())
            .unwrap();
        let (_, routes) = regular::mesh(2, 2).unwrap();
        let report = verify_contention_free(&t.contention_set(), &routes);
        assert!(report.is_contention_free());
    }

    #[test]
    fn unrouted_flows_are_ignored() {
        let t = concurrent_trace(&[(0, 3), (1, 3)], 4);
        let report = verify_contention_free(&t.contention_set(), &RouteTable::new());
        assert!(report.is_contention_free());
    }

    #[test]
    fn intersects_agrees_with_witness_check() {
        let t = concurrent_trace(&[(0, 3), (1, 3), (2, 0)], 4);
        let c = t.contention_set();
        for make in [regular::crossbar, |n| regular::mesh(2, n / 2)] {
            let (_, routes) = make(4).unwrap();
            let r = ConflictSet::from_routes(&routes);
            assert_eq!(
                intersects(&c, &r),
                !verify_contention_free(&c, &routes).is_contention_free()
            );
        }
    }
}
