//! Structural diffs between networks: what a run-time reconfiguration
//! must change.
//!
//! The paper's introduction motivates reconfigurable fabrics (FPGAs,
//! optical networks) whose "physical or logical topology ... may be made
//! to match the requirements of a particular application". Reconfiguring
//! from the network of application A to that of application B costs
//! whatever differs; [`NetworkDelta`] quantifies it for two networks over
//! the same processor set with comparable switch indices (e.g. the output
//! of warm-started incremental synthesis).

use std::collections::BTreeMap;
use std::fmt;

use nocsyn_model::ProcId;

use crate::Network;

/// The edit script between two networks: per switch pair, how many
/// parallel links to add or remove; plus which processors change home.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetworkDelta {
    links_added: BTreeMap<(usize, usize), usize>,
    links_removed: BTreeMap<(usize, usize), usize>,
    switches_added: usize,
    moved_procs: Vec<ProcId>,
}

impl NetworkDelta {
    /// Computes the delta transforming `from` into `to`.
    ///
    /// Switch indices are compared positionally, so the result is
    /// meaningful when both networks come from placement-stable synthesis
    /// (see `synthesize_incremental` in `nocsyn-synth`).
    ///
    /// # Panics
    ///
    /// Panics if the two networks disagree on processor count.
    pub fn between(from: &Network, to: &Network) -> NetworkDelta {
        assert_eq!(
            from.n_procs(),
            to.n_procs(),
            "reconfiguration preserves the processor set"
        );
        let max_switches = from.n_switches().max(to.n_switches());
        let mut links_added = BTreeMap::new();
        let mut links_removed = BTreeMap::new();
        for a in 0..max_switches {
            for b in a + 1..max_switches {
                let count = |net: &Network| {
                    if a < net.n_switches() && b < net.n_switches() {
                        net.links_between(a.into(), b.into())
                    } else {
                        0
                    }
                };
                let (before, after) = (count(from), count(to));
                if after > before {
                    links_added.insert((a, b), after - before);
                } else if before > after {
                    links_removed.insert((a, b), before - after);
                }
            }
        }
        let moved_procs = (0..from.n_procs())
            .map(ProcId)
            .filter(|&p| from.switch_of(p).ok() != to.switch_of(p).ok())
            .collect();
        NetworkDelta {
            links_added,
            links_removed,
            switches_added: to.n_switches().saturating_sub(from.n_switches()),
            moved_procs,
        }
    }

    /// Total parallel links to add.
    pub fn n_links_added(&self) -> usize {
        self.links_added.values().sum()
    }

    /// Total parallel links to remove.
    pub fn n_links_removed(&self) -> usize {
        self.links_removed.values().sum()
    }

    /// New switches the target needs.
    pub fn n_switches_added(&self) -> usize {
        self.switches_added
    }

    /// Processors whose home switch changes.
    pub fn moved_procs(&self) -> &[ProcId] {
        &self.moved_procs
    }

    /// Whether the two networks are already identical in structure.
    pub fn is_empty(&self) -> bool {
        self.links_added.is_empty()
            && self.links_removed.is_empty()
            && self.switches_added == 0
            && self.moved_procs.is_empty()
    }

    /// Total edit cost: links touched plus processor re-attachments (each
    /// re-attachment rewires one NI link).
    pub fn cost(&self) -> usize {
        self.n_links_added() + self.n_links_removed() + self.moved_procs.len()
    }

    /// Iterates over `(switch pair, links to add)`.
    pub fn added(&self) -> impl Iterator<Item = ((usize, usize), usize)> + '_ {
        self.links_added.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates over `(switch pair, links to remove)`.
    pub fn removed(&self) -> impl Iterator<Item = ((usize, usize), usize)> + '_ {
        self.links_removed.iter().map(|(&k, &v)| (k, v))
    }
}

impl fmt::Display for NetworkDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "no reconfiguration required");
        }
        writeln!(
            f,
            "reconfiguration: +{} links, -{} links, +{} switches, {} procs moved",
            self.n_links_added(),
            self.n_links_removed(),
            self.switches_added,
            self.moved_procs.len()
        )?;
        for ((a, b), n) in &self.links_added {
            writeln!(f, "  add {n} link(s) S{a} -- S{b}")?;
        }
        for ((a, b), n) in &self.links_removed {
            writeln!(f, "  remove {n} link(s) S{a} -- S{b}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular;

    #[test]
    fn identical_networks_have_empty_delta() {
        let (a, _) = regular::mesh(2, 2).unwrap();
        let (b, _) = regular::mesh(2, 2).unwrap();
        let d = NetworkDelta::between(&a, &b);
        assert!(d.is_empty());
        assert_eq!(d.cost(), 0);
        assert_eq!(d.to_string(), "no reconfiguration required");
    }

    #[test]
    fn mesh_to_torus_adds_wrap_links() {
        let (mesh, _) = regular::mesh(3, 3).unwrap();
        let (torus, _) = regular::torus(3, 3).unwrap();
        let d = NetworkDelta::between(&mesh, &torus);
        assert_eq!(d.n_links_added(), 6); // 3 row wraps + 3 column wraps
        assert_eq!(d.n_links_removed(), 0);
        assert_eq!(d.n_switches_added(), 0);
        assert!(d.moved_procs().is_empty());
        assert_eq!(d.cost(), 6);
        // And the reverse removes them.
        let back = NetworkDelta::between(&torus, &mesh);
        assert_eq!(back.n_links_removed(), 6);
        assert_eq!(back.n_links_added(), 0);
    }

    #[test]
    fn parallel_link_counts_diff_by_multiplicity() {
        let mut a = Network::new(0);
        let s0 = a.add_switch();
        let s1 = a.add_switch();
        a.add_link(s0, s1).unwrap();
        let mut b = Network::new(0);
        let t0 = b.add_switch();
        let t1 = b.add_switch();
        b.add_link(t0, t1).unwrap();
        b.add_link(t0, t1).unwrap();
        b.add_link(t0, t1).unwrap();
        let d = NetworkDelta::between(&a, &b);
        assert_eq!(d.n_links_added(), 2);
        assert_eq!(d.added().next(), Some(((0, 1), 2)));
    }

    #[test]
    fn moved_procs_are_detected() {
        use nocsyn_model::ProcId;
        let mut a = Network::new(2);
        let a0 = a.add_switch();
        let a1 = a.add_switch();
        a.add_link(a0, a1).unwrap();
        a.attach(ProcId(0), a0).unwrap();
        a.attach(ProcId(1), a1).unwrap();
        let mut b = Network::new(2);
        let b0 = b.add_switch();
        let b1 = b.add_switch();
        b.add_link(b0, b1).unwrap();
        b.attach(ProcId(0), b0).unwrap();
        b.attach(ProcId(1), b0).unwrap(); // proc 1 moved
        let d = NetworkDelta::between(&a, &b);
        assert_eq!(d.moved_procs(), &[ProcId(1)]);
        assert_eq!(d.cost(), 1);
    }

    #[test]
    #[should_panic(expected = "processor set")]
    fn proc_count_mismatch_panics() {
        let (a, _) = regular::crossbar(2).unwrap();
        let (b, _) = regular::crossbar(3).unwrap();
        let _ = NetworkDelta::between(&a, &b);
    }
}
