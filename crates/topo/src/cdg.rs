//! Channel dependency graph (CDG) analysis: static deadlock freedom.
//!
//! The paper handles deadlock dynamically ("detection and regressive
//! recovery") and reports that none occurred. This module explains *why*
//! for a concrete routing: wormhole routing is deadlock-free if the
//! channel dependency graph — a directed graph whose vertices are
//! directed channels and whose edges connect consecutive channels of some
//! route — is acyclic (Dally & Seitz's classic condition). Source-routed
//! tables over tree-like generated topologies usually satisfy it
//! outright.

use std::collections::BTreeSet;

use crate::{Channel, RouteTable};

/// The channel dependency graph of a route table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChannelDependencyGraph {
    /// Directed edges between channels, deduplicated and sorted.
    edges: Vec<(Channel, Channel)>,
    nodes: BTreeSet<Channel>,
}

impl ChannelDependencyGraph {
    /// Builds the CDG of every consecutive channel pair across all routes.
    pub fn from_routes(routes: &RouteTable) -> Self {
        let mut edges = BTreeSet::new();
        let mut nodes = BTreeSet::new();
        for (_, route) in routes.iter() {
            let hops = route.hops();
            nodes.extend(hops.iter().copied());
            for w in hops.windows(2) {
                edges.insert((w[0], w[1]));
            }
        }
        ChannelDependencyGraph {
            edges: edges.into_iter().collect(),
            nodes,
        }
    }

    /// Number of distinct channels appearing in any route.
    pub fn n_channels(&self) -> usize {
        self.nodes.len()
    }

    /// Number of distinct dependencies.
    pub fn n_dependencies(&self) -> usize {
        self.edges.len()
    }

    /// Whether the dependency graph is acyclic — the sufficient condition
    /// for deadlock-free wormhole routing.
    ///
    /// Returns `Ok(())` when acyclic, or `Err(cycle)` with one offending
    /// channel cycle (first channel repeated at the end) as a witness.
    pub fn check_acyclic(&self) -> Result<(), Vec<Channel>> {
        // Iterative DFS with colors over the (small) channel set.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let nodes: Vec<Channel> = self.nodes.iter().copied().collect();
        let index = |c: Channel| nodes.binary_search(&c).expect("edges use known nodes");
        let mut succ: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for &(a, b) in &self.edges {
            succ[index(a)].push(index(b));
        }
        let mut color = vec![Color::White; nodes.len()];
        let mut parent: Vec<usize> = vec![usize::MAX; nodes.len()];

        for start in 0..nodes.len() {
            if color[start] != Color::White {
                continue;
            }
            // DFS stack of (node, next-successor cursor).
            let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
            color[start] = Color::Gray;
            while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
                if *cursor < succ[v].len() {
                    let next = succ[v][*cursor];
                    *cursor += 1;
                    match color[next] {
                        Color::White => {
                            color[next] = Color::Gray;
                            parent[next] = v;
                            stack.push((next, 0));
                        }
                        Color::Gray => {
                            // Reconstruct the cycle next -> ... -> v -> next.
                            let mut cycle = vec![nodes[next]];
                            let mut at = v;
                            while at != next {
                                cycle.push(nodes[at]);
                                at = parent[at];
                            }
                            cycle.push(nodes[next]);
                            cycle.reverse();
                            return Err(cycle);
                        }
                        Color::Black => {}
                    }
                } else {
                    color[v] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }
}

/// Convenience: whether `routes` is statically deadlock-free under the
/// CDG-acyclicity condition.
///
/// ```
/// use nocsyn_topo::{is_deadlock_free, regular};
/// # fn main() -> Result<(), nocsyn_topo::TopoError> {
/// // Dimension-order routing on a mesh is the textbook acyclic case.
/// let (_, routes) = regular::mesh(3, 3)?;
/// assert!(is_deadlock_free(&routes));
/// # Ok(())
/// # }
/// ```
pub fn is_deadlock_free(routes: &RouteTable) -> bool {
    ChannelDependencyGraph::from_routes(routes)
        .check_acyclic()
        .is_ok()
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use crate::{regular, Network, Route};
    use nocsyn_model::{Flow, ProcId};

    #[test]
    fn dor_mesh_is_acyclic() {
        for (r, c) in [(2, 2), (3, 3), (2, 4)] {
            let (_, routes) = regular::mesh(r, c).unwrap();
            assert!(is_deadlock_free(&routes), "{r}x{c} mesh");
        }
    }

    #[test]
    fn crossbar_is_acyclic() {
        let (_, routes) = regular::crossbar(6).unwrap();
        assert!(is_deadlock_free(&routes));
    }

    #[test]
    fn torus_wraparound_cycles_are_detected() {
        // Unrestricted minimal routing on a ≥5-long ring creates the
        // classic wraparound cycle in the CDG.
        let (_, routes) = regular::torus(1, 5).unwrap();
        let cdg = ChannelDependencyGraph::from_routes(&routes);
        let cycle = cdg.check_acyclic().expect_err("ring must cycle");
        assert!(cycle.len() >= 3);
        assert_eq!(cycle.first(), cycle.last());
    }

    #[test]
    fn manufactured_three_ring_cycles() {
        // The same 3-switch ring the simulator deadlock test uses.
        let mut net = Network::new(6);
        let s: Vec<_> = (0..3).map(|_| net.add_switch()).collect();
        let l01 = net.add_link(s[0], s[1]).unwrap();
        let l12 = net.add_link(s[1], s[2]).unwrap();
        let l20 = net.add_link(s[2], s[0]).unwrap();
        for p in 0..3 {
            net.attach(ProcId(p), s[p]).unwrap();
        }
        for p in 3..6 {
            net.attach(ProcId(p), s[p - 3]).unwrap();
        }
        let inj = |p: usize| net.injection_channel(ProcId(p)).unwrap();
        let ej = |p: usize| net.ejection_channel(ProcId(p)).unwrap();
        let mut routes = RouteTable::new();
        routes.insert(
            Flow::from_indices(0, 5),
            Route::new(vec![
                inj(0),
                Channel::forward(l01),
                Channel::forward(l12),
                ej(5),
            ]),
        );
        routes.insert(
            Flow::from_indices(1, 3),
            Route::new(vec![
                inj(1),
                Channel::forward(l12),
                Channel::forward(l20),
                ej(3),
            ]),
        );
        routes.insert(
            Flow::from_indices(2, 4),
            Route::new(vec![
                inj(2),
                Channel::forward(l20),
                Channel::forward(l01),
                ej(4),
            ]),
        );
        assert!(!is_deadlock_free(&routes));
    }

    #[test]
    fn empty_table_is_trivially_free() {
        assert!(is_deadlock_free(&RouteTable::new()));
        let cdg = ChannelDependencyGraph::from_routes(&RouteTable::new());
        assert_eq!(cdg.n_channels(), 0);
        assert_eq!(cdg.n_dependencies(), 0);
    }

    #[test]
    fn dependency_counts() {
        let (_, routes) = regular::crossbar(3).unwrap();
        let cdg = ChannelDependencyGraph::from_routes(&routes);
        // 3 procs: 3 injection + 3 ejection channels; each route is one
        // inject->eject dependency, 6 ordered pairs total.
        assert_eq!(cdg.n_channels(), 6);
        assert_eq!(cdg.n_dependencies(), 6);
    }
}
