//! Identifier newtypes for network elements.

use std::fmt;

use nocsyn_model::ProcId;
/// Identifier of a switch within a [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SwitchId(pub usize);

impl SwitchId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for SwitchId {
    fn from(i: usize) -> Self {
        SwitchId(i)
    }
}

impl fmt::Display for SwitchId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// Identifier of a physical (full-duplex) link within a
/// [`Network`](crate::Network).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LinkId(pub usize);

impl LinkId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl From<usize> for LinkId {
    fn from(i: usize) -> Self {
        LinkId(i)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// A vertex of the system graph: either a switch or a processor end-node
/// (Definition 1 puts both in `N`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum NodeRef {
    /// A switch vertex.
    Switch(SwitchId),
    /// A processor / network-interface vertex.
    Proc(ProcId),
}

impl NodeRef {
    /// The switch id, if this vertex is a switch.
    pub fn as_switch(self) -> Option<SwitchId> {
        match self {
            NodeRef::Switch(s) => Some(s),
            NodeRef::Proc(_) => None,
        }
    }

    /// The processor id, if this vertex is a processor.
    pub fn as_proc(self) -> Option<ProcId> {
        match self {
            NodeRef::Proc(p) => Some(p),
            NodeRef::Switch(_) => None,
        }
    }
}

impl From<SwitchId> for NodeRef {
    fn from(s: SwitchId) -> Self {
        NodeRef::Switch(s)
    }
}

impl From<ProcId> for NodeRef {
    fn from(p: ProcId) -> Self {
        NodeRef::Proc(p)
    }
}

impl fmt::Display for NodeRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeRef::Switch(s) => write!(f, "{s}"),
            NodeRef::Proc(p) => write!(f, "{p}"),
        }
    }
}

/// Traversal direction over a full-duplex link.
///
/// Links are stored once with endpoints `(a, b)`; the two directions are
/// independent resources (the paper colors each pipe direction separately,
/// footnote 1 assumes full-duplex links).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Direction {
    /// From endpoint `a` to endpoint `b`.
    Forward,
    /// From endpoint `b` to endpoint `a`.
    Backward,
}

impl Direction {
    /// The opposite direction.
    #[must_use]
    pub const fn reversed(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }
}

/// A directed channel: one direction of one physical link — the unit of
/// resource over which contention is modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Channel {
    /// The physical link.
    pub link: LinkId,
    /// Which direction of the link.
    pub dir: Direction,
}

impl Channel {
    /// Creates a channel over `link` in `dir`.
    pub const fn new(link: LinkId, dir: Direction) -> Self {
        Channel { link, dir }
    }

    /// The forward channel of `link`.
    pub const fn forward(link: LinkId) -> Self {
        Channel::new(link, Direction::Forward)
    }

    /// The backward channel of `link`.
    pub const fn backward(link: LinkId) -> Self {
        Channel::new(link, Direction::Backward)
    }

    /// The opposite-direction channel of the same link.
    #[must_use]
    pub const fn reversed(self) -> Channel {
        Channel::new(self.link, self.dir.reversed())
    }
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.dir {
            Direction::Forward => write!(f, "{}+", self.link),
            Direction::Backward => write!(f, "{}-", self.link),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direction_reversal_is_involutive() {
        assert_eq!(Direction::Forward.reversed().reversed(), Direction::Forward);
        assert_eq!(
            Channel::forward(LinkId(3)).reversed(),
            Channel::backward(LinkId(3))
        );
    }

    #[test]
    fn noderef_projections() {
        let s: NodeRef = SwitchId(2).into();
        let p: NodeRef = ProcId(5).into();
        assert_eq!(s.as_switch(), Some(SwitchId(2)));
        assert_eq!(s.as_proc(), None);
        assert_eq!(p.as_proc(), Some(ProcId(5)));
        assert_eq!(p.as_switch(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(SwitchId(1).to_string(), "S1");
        assert_eq!(LinkId(2).to_string(), "L2");
        assert_eq!(Channel::forward(LinkId(2)).to_string(), "L2+");
        assert_eq!(Channel::backward(LinkId(2)).to_string(), "L2-");
        assert_eq!(NodeRef::from(ProcId(0)).to_string(), "P0");
    }

    #[test]
    fn channels_of_same_link_differ_by_direction() {
        let f = Channel::forward(LinkId(0));
        let b = Channel::backward(LinkId(0));
        assert_ne!(f, b);
        assert_eq!(f.link, b.link);
    }
}
