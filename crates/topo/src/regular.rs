//! Regular baseline topologies: crossbar, 2-D mesh, 2-D torus, and
//! fully-connected networks, each paired with its deterministic route table.
//!
//! These are the comparison points of the paper's evaluation (Section 4):
//! the non-blocking crossbar is the performance ideal, the mesh (with
//! dimension-order routing) and torus are the resource baselines.

use nocsyn_model::{Flow, ProcId};

use crate::{Channel, LinkId, Network, Route, RouteTable, SwitchId, TopoError};

/// Builds the "mega-switch": a single crossbar switch with every processor
/// attached. Non-blocking by construction — its conflict set contains only
/// injection/ejection sharing, which no topology can avoid.
///
/// Returns the network and the all-pairs route table.
///
/// # Errors
///
/// [`TopoError::DegenerateShape`] if `n_procs == 0`.
pub fn crossbar(n_procs: usize) -> Result<(Network, RouteTable), TopoError> {
    if n_procs == 0 {
        return Err(TopoError::DegenerateShape {
            what: "crossbar with zero processors",
        });
    }
    let mut net = Network::new(n_procs);
    let hub = net.add_switch();
    for p in 0..n_procs {
        net.attach(ProcId(p), hub)?;
    }
    let routes = all_pairs_routes(&net, |_, _| Vec::new())?;
    Ok((net, routes))
}

/// Builds a fully-connected switched network: one switch per processor and
/// a dedicated link between every switch pair. Routes are always the single
/// direct hop.
///
/// # Errors
///
/// [`TopoError::DegenerateShape`] if `n_procs == 0`.
#[allow(clippy::needless_range_loop)] // index symmetry with the pair table
pub fn fully_connected(n_procs: usize) -> Result<(Network, RouteTable), TopoError> {
    if n_procs == 0 {
        return Err(TopoError::DegenerateShape {
            what: "fully-connected with zero processors",
        });
    }
    let mut net = Network::new(n_procs);
    let switches: Vec<SwitchId> = (0..n_procs).map(|_| net.add_switch()).collect();
    let mut pair_link = vec![vec![None; n_procs]; n_procs];
    for i in 0..n_procs {
        for j in i + 1..n_procs {
            let l = net.add_link(switches[i], switches[j])?;
            pair_link[i][j] = Some(l);
        }
    }
    for p in 0..n_procs {
        net.attach(ProcId(p), switches[p])?;
    }
    let routes = all_pairs_routes(&net, |s, d| {
        let (i, j) = (s.index(), d.index());
        if i < j {
            vec![Channel::forward(pair_link[i][j].expect("all pairs linked"))]
        } else {
            vec![Channel::backward(
                pair_link[j][i].expect("all pairs linked"),
            )]
        }
    })?;
    Ok((net, routes))
}

/// A 2-D mesh of processor tiles with dimension-order (X-then-Y) routing.
///
/// Tile `(r, c)` hosts processor `r * cols + c` on its own switch; switches
/// are joined to their east and south neighbors. This is the paper's
/// RAW-style baseline.
///
/// # Errors
///
/// [`TopoError::DegenerateShape`] if either dimension is zero.
pub fn mesh(rows: usize, cols: usize) -> Result<(Network, RouteTable), TopoError> {
    let (net, xy, _) = grid(rows, cols, false)?;
    Ok((net, xy))
}

/// A 2-D torus: a mesh plus wrap-around links in both dimensions, routed
/// dimension-order along the shorter way around each ring (ties broken
/// toward increasing coordinates).
///
/// Wrap-around links only exist where they are distinct from mesh links
/// (i.e. for dimensions of length ≥ 3), matching the physical layout the
/// paper charges double link area for.
///
/// # Errors
///
/// [`TopoError::DegenerateShape`] if either dimension is zero.
pub fn torus(rows: usize, cols: usize) -> Result<(Network, RouteTable), TopoError> {
    let (net, xy, _) = grid(rows, cols, true)?;
    Ok((net, xy))
}

/// A 2-D torus together with *both* dimension orders of minimal routing:
/// the X-then-Y table and the Y-then-X table over the same network.
///
/// The pair feeds the simulator's approximation of the paper's "true fully
/// adaptive routing" on the torus: at injection, a packet picks whichever
/// minimal route is currently less congested.
///
/// # Errors
///
/// [`TopoError::DegenerateShape`] if either dimension is zero.
pub fn torus_with_alternates(
    rows: usize,
    cols: usize,
) -> Result<(Network, RouteTable, RouteTable), TopoError> {
    grid(rows, cols, true)
}

/// A 2-D mesh with both dimension orders of DOR (see
/// [`torus_with_alternates`]).
///
/// # Errors
///
/// [`TopoError::DegenerateShape`] if either dimension is zero.
pub fn mesh_with_alternates(
    rows: usize,
    cols: usize,
) -> Result<(Network, RouteTable, RouteTable), TopoError> {
    grid(rows, cols, false)
}

/// Shared mesh/torus builder; returns the X-then-Y and Y-then-X route
/// tables.
fn grid(
    rows: usize,
    cols: usize,
    wrap: bool,
) -> Result<(Network, RouteTable, RouteTable), TopoError> {
    if rows == 0 || cols == 0 {
        return Err(TopoError::DegenerateShape {
            what: "grid with a zero dimension",
        });
    }
    let n = rows * cols;
    let mut net = Network::new(n);
    let switch = |r: usize, c: usize| SwitchId(r * cols + c);
    for _ in 0..n {
        net.add_switch();
    }

    // h_links[r][c]: eastward link from (r, c) to (r, c+1); the wrap link
    // from the last column back to column 0 is stored at c = cols-1.
    let mut h_links = vec![vec![None; cols]; rows];
    let mut v_links = vec![vec![None; cols]; rows];
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                h_links[r][c] = Some(net.add_link(switch(r, c), switch(r, c + 1))?);
            } else if wrap && cols >= 3 {
                h_links[r][c] = Some(net.add_link(switch(r, c), switch(r, 0))?);
            }
            if r + 1 < rows {
                v_links[r][c] = Some(net.add_link(switch(r, c), switch(r + 1, c))?);
            } else if wrap && rows >= 3 {
                v_links[r][c] = Some(net.add_link(switch(r, c), switch(0, c))?);
            }
        }
    }
    for p in 0..n {
        net.attach(ProcId(p), SwitchId(p))?;
    }

    // Step one hop in a ring dimension; returns the channel and the new
    // coordinate. `forward` moves toward increasing coordinate.
    let ring_step = |coord: usize, len: usize, forward: bool, links: &dyn Fn(usize) -> LinkId| {
        if forward {
            let ch = Channel::forward(links(coord));
            ((coord + 1) % len, ch)
        } else {
            let prev = (coord + len - 1) % len;
            let ch = Channel::backward(links(prev));
            (prev, ch)
        }
    };

    let dor_hops = |s: SwitchId, d: SwitchId, y_first: bool| {
        let (mut r, mut c) = (s.index() / cols, s.index() % cols);
        let (dr, dc) = (d.index() / cols, d.index() % cols);
        let mut hops = Vec::new();
        let step_x = |r: usize, c: &mut usize, hops: &mut Vec<Channel>| {
            while *c != dc {
                let forward = ring_direction(*c, dc, cols, wrap);
                let (nc, ch) = ring_step(*c, cols, forward, &|cc| {
                    h_links[r][cc].expect("x-step link exists")
                });
                hops.push(ch);
                *c = nc;
            }
        };
        let step_y = |c: usize, r: &mut usize, hops: &mut Vec<Channel>| {
            while *r != dr {
                let forward = ring_direction(*r, dr, rows, wrap);
                let (nr, ch) = ring_step(*r, rows, forward, &|rr| {
                    v_links[rr][c].expect("y-step link exists")
                });
                hops.push(ch);
                *r = nr;
            }
        };
        if y_first {
            step_y(c, &mut r, &mut hops);
            step_x(r, &mut c, &mut hops);
        } else {
            step_x(r, &mut c, &mut hops);
            step_y(c, &mut r, &mut hops);
        }
        hops
    };
    let xy = all_pairs_routes(&net, |s, d| dor_hops(s, d, false))?;
    let yx = all_pairs_routes(&net, |s, d| dor_hops(s, d, true))?;
    Ok((net, xy, yx))
}

/// Whether to move toward increasing coordinates from `from` to `to` in a
/// ring of length `len`. Without wrap the answer is simply `to > from`;
/// with wrap we take the shorter way, ties toward increasing.
fn ring_direction(from: usize, to: usize, len: usize, wrap: bool) -> bool {
    if !wrap || len < 3 {
        return to > from;
    }
    let ahead = (to + len - from) % len; // hops going forward
    ahead <= len - ahead
}

/// Builds routes for every ordered processor pair: injection channel, the
/// switch-level hops supplied by `mid` (from source switch to destination
/// switch), then the ejection channel.
fn all_pairs_routes<F>(net: &Network, mut mid: F) -> Result<RouteTable, TopoError>
where
    F: FnMut(SwitchId, SwitchId) -> Vec<Channel>,
{
    let mut table = RouteTable::new();
    for s in 0..net.n_procs() {
        for d in 0..net.n_procs() {
            if s == d {
                continue;
            }
            let flow = Flow::from_indices(s, d);
            let mut hops = vec![net.injection_channel(flow.src)?];
            hops.extend(mid(net.switch_of(flow.src)?, net.switch_of(flow.dst)?));
            hops.push(net.ejection_channel(flow.dst)?);
            let route = Route::new(hops);
            route.validate(net, flow)?;
            table.insert(flow, route);
        }
    }
    Ok(table)
}

/// Number of switch-to-switch links a `rows x cols` mesh uses (the analytic
/// closed form, handy for area baselines).
pub fn mesh_link_count(rows: usize, cols: usize) -> usize {
    rows * cols.saturating_sub(1) + cols * rows.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConflictSet;

    #[test]
    fn crossbar_shape() {
        let (net, routes) = crossbar(8).unwrap();
        assert_eq!(net.n_switches(), 1);
        assert_eq!(net.n_network_links(), 0);
        assert_eq!(net.degree(SwitchId(0)), 8);
        assert_eq!(routes.len(), 8 * 7);
        assert!(routes.iter().all(|(_, r)| r.len() == 2));
        routes.validate(&net).unwrap();
        // The only conflicts on a crossbar are unavoidable endpoint-link
        // sharing: pairs with a common source or destination.
        let r = ConflictSet::from_routes(&routes);
        for p in r.iter() {
            let (a, b) = (p.first(), p.second());
            assert!(
                a.src == b.src || a.dst == b.dst,
                "unexpected conflict {a} vs {b}"
            );
        }
        assert!(!r.conflicts(Flow::from_indices(0, 1), Flow::from_indices(2, 3)));
    }

    #[test]
    fn degenerate_shapes_error() {
        assert!(crossbar(0).is_err());
        assert!(fully_connected(0).is_err());
        assert!(mesh(0, 4).is_err());
        assert!(torus(4, 0).is_err());
    }

    #[test]
    fn mesh_shape_and_routes() {
        let (net, routes) = mesh(4, 4).unwrap();
        assert_eq!(net.n_switches(), 16);
        assert_eq!(net.n_network_links(), mesh_link_count(4, 4));
        assert_eq!(net.max_degree(), 5); // interior: 4 neighbors + 1 proc
        assert!(net.is_strongly_connected());
        routes.validate(&net).unwrap();
        // DOR: 0 -> 5 goes east then south = 2 switch hops.
        assert_eq!(routes.route(Flow::from_indices(0, 5)).unwrap().len(), 4);
    }

    #[test]
    fn mesh_dor_is_x_then_y() {
        let (net, routes) = mesh(3, 3).unwrap();
        // 0 (0,0) -> 8 (2,2): x hops first. After injection, the first two
        // channels are horizontal links in row 0.
        let route = routes.route(Flow::from_indices(0, 8)).unwrap();
        assert_eq!(route.len(), 6);
        // Verify the intermediate switches: 0 -> 1 -> 2 -> 5 -> 8.
        let mut at = net.switch_of(ProcId(0)).unwrap();
        let mut path = vec![at];
        for &ch in &route.hops()[1..route.len() - 1] {
            let (_, head) = net.channel_endpoints(ch).unwrap();
            at = head.as_switch().unwrap();
            path.push(at);
        }
        let idx: Vec<usize> = path.iter().map(|s| s.index()).collect();
        assert_eq!(idx, vec![0, 1, 2, 5, 8]);
    }

    #[test]
    fn torus_wrap_links_exist_for_len3() {
        let (mesh_net, _) = mesh(3, 3).unwrap();
        let (torus_net, routes) = torus(3, 3).unwrap();
        assert_eq!(
            torus_net.n_network_links(),
            mesh_net.n_network_links() + 3 + 3
        );
        routes.validate(&torus_net).unwrap();
        assert!(torus_net.is_strongly_connected());
    }

    #[test]
    fn torus_len2_has_no_duplicate_wrap() {
        // For a 2-long dimension the wrap link would duplicate the mesh
        // link, so it is omitted.
        let (net, routes) = torus(2, 2).unwrap();
        assert_eq!(net.n_network_links(), mesh_link_count(2, 2));
        routes.validate(&net).unwrap();
    }

    #[test]
    fn torus_routes_take_shorter_way() {
        let (net, routes) = torus(4, 4).unwrap();
        // 0 (0,0) -> 3 (0,3): wrap westward is 1 hop vs 3 eastward.
        let route = routes.route(Flow::from_indices(0, 3)).unwrap();
        assert_eq!(route.len(), 3);
        route.validate(&net, Flow::from_indices(0, 3)).unwrap();
    }

    #[test]
    fn torus_tie_goes_forward() {
        let (net, routes) = torus(4, 4).unwrap();
        // 0 (0,0) -> 2 (0,2): 2 hops either way; forward (eastward) wins.
        let route = routes.route(Flow::from_indices(0, 2)).unwrap();
        assert_eq!(route.len(), 4);
        let (_, head) = net.channel_endpoints(route.hops()[1]).unwrap();
        assert_eq!(head.as_switch().unwrap().index(), 1);
    }

    #[test]
    fn fully_connected_routes_are_direct() {
        let (net, routes) = fully_connected(5).unwrap();
        assert_eq!(net.n_network_links(), 10);
        assert!(routes.iter().all(|(_, r)| r.len() == 3));
        routes.validate(&net).unwrap();
        // Distinct flows between distinct pairs never share channels
        // except at endpoints.
        let r = ConflictSet::from_routes(&routes);
        assert!(!r.conflicts(Flow::from_indices(0, 1), Flow::from_indices(2, 3)));
        // Same source shares the injection link.
        assert!(r.conflicts(Flow::from_indices(0, 1), Flow::from_indices(0, 2)));
    }

    #[test]
    fn single_tile_grid() {
        // 1x1 mesh: one switch, one proc, no flows.
        let (net, routes) = mesh(1, 1).unwrap();
        assert_eq!(net.n_switches(), 1);
        assert!(routes.is_empty());
        assert!(net.is_strongly_connected());
    }

    #[test]
    fn rectangular_mesh_routes_validate() {
        let (net, routes) = mesh(2, 5).unwrap();
        routes.validate(&net).unwrap();
        assert_eq!(routes.len(), 10 * 9);
    }

    #[test]
    fn ring_direction_logic() {
        // No wrap: direction is the sign of (to - from).
        assert!(ring_direction(0, 3, 4, false));
        assert!(!ring_direction(3, 0, 4, false));
        // Wrap: 0 -> 3 in len 4 is shorter backward.
        assert!(!ring_direction(0, 3, 4, true));
        // Tie in len 4: 0 -> 2 goes forward.
        assert!(ring_direction(0, 2, 4, true));
    }
}
