//! Graphviz DOT export for networks and route overlays.
//!
//! Generated (irregular) topologies are hard to review as adjacency
//! lists; `to_dot` renders the system graph — switches as boxes,
//! processors as circles, parallel links as parallel edges — ready for
//! `dot -Tsvg`.

use std::fmt::Write as _;

use nocsyn_model::Flow;

use crate::{Network, NodeRef, Route, RouteTable};

/// Renders `net` as an undirected Graphviz graph.
///
/// Switches appear as `S<n>` boxes and processors as `P<n>` circles;
/// every physical link is one edge, so parallel pipe links show as
/// parallel edges.
///
/// ```
/// use nocsyn_topo::{regular, to_dot};
/// # fn main() -> Result<(), nocsyn_topo::TopoError> {
/// let (net, _) = regular::mesh(2, 2)?;
/// let dot = to_dot(&net);
/// assert!(dot.starts_with("graph network {"));
/// assert!(dot.contains("S0 -- S1"));
/// # Ok(())
/// # }
/// ```
pub fn to_dot(net: &Network) -> String {
    let mut out = String::from("graph network {\n");
    out.push_str("  layout=neato;\n  overlap=false;\n");
    for s in net.switch_ids() {
        let _ = writeln!(
            out,
            "  S{} [shape=box, style=filled, fillcolor=lightsteelblue, label=\"S{} (d{})\"];",
            s.index(),
            s.index(),
            net.degree(s)
        );
    }
    for p in 0..net.n_procs() {
        let _ = writeln!(out, "  P{p} [shape=circle, fontsize=10];");
    }
    for link in net.link_ids() {
        let l = net.link(link).expect("iterating live links");
        let name = |n: NodeRef| match n {
            NodeRef::Switch(s) => format!("S{}", s.index()),
            NodeRef::Proc(p) => format!("P{}", p.index()),
        };
        let style = if l.a().as_proc().is_some() || l.b().as_proc().is_some() {
            " [style=dashed, len=0.6]"
        } else {
            ""
        };
        let _ = writeln!(out, "  {} -- {}{};", name(l.a()), name(l.b()), style);
    }
    out.push_str("}\n");
    out
}

/// Renders `net` with one flow's route highlighted (directed red edges
/// over the base graph).
pub fn route_to_dot(net: &Network, flow: Flow, route: &Route) -> String {
    let mut out = to_dot(net);
    out.truncate(out.len() - 2); // drop the closing "}\n"
    for ch in route.iter() {
        if let Ok((tail, head)) = net.channel_endpoints(ch) {
            let name = |n: NodeRef| match n {
                NodeRef::Switch(s) => format!("S{}", s.index()),
                NodeRef::Proc(p) => format!("P{}", p.index()),
            };
            let _ = writeln!(
                out,
                "  {} -- {} [color=red, penwidth=2, label=\"{flow}\", fontcolor=red];",
                name(tail),
                name(head)
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Renders `net` with per-link static load annotations (number of routed
/// flows crossing each link, both directions summed).
pub fn loaded_to_dot(net: &Network, routes: &RouteTable) -> String {
    let load = routes.channel_load();
    let mut out = String::from("graph network {\n  layout=neato;\n  overlap=false;\n");
    for s in net.switch_ids() {
        let _ = writeln!(
            out,
            "  S{} [shape=box, style=filled, fillcolor=lightsteelblue];",
            s.index()
        );
    }
    for p in 0..net.n_procs() {
        let _ = writeln!(out, "  P{p} [shape=circle, fontsize=10];");
    }
    for link in net.link_ids() {
        let l = net.link(link).expect("iterating live links");
        let name = |n: NodeRef| match n {
            NodeRef::Switch(s) => format!("S{}", s.index()),
            NodeRef::Proc(p) => format!("P{}", p.index()),
        };
        let total: usize = load
            .iter()
            .filter(|(ch, _)| ch.link == link)
            .map(|(_, n)| n)
            .sum();
        let _ = writeln!(
            out,
            "  {} -- {} [label=\"{total}\", penwidth={}];",
            name(l.a()),
            name(l.b()),
            1 + total.min(4)
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regular;

    #[test]
    fn dot_lists_every_node_and_link() {
        let (net, _) = regular::mesh(2, 2).unwrap();
        let dot = to_dot(&net);
        for s in 0..4 {
            assert!(dot.contains(&format!("S{s} ")));
            assert!(dot.contains(&format!("P{s} ")));
        }
        // 4 switch links + 4 attachments = 8 edges.
        assert_eq!(dot.matches(" -- ").count(), 8);
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn route_overlay_adds_red_edges() {
        let (net, routes) = regular::mesh(2, 2).unwrap();
        let flow = Flow::from_indices(0, 3);
        let dot = route_to_dot(&net, flow, routes.route(flow).unwrap());
        assert_eq!(
            dot.matches("penwidth=2").count(),
            routes.route(flow).unwrap().len()
        );
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn loaded_export_sums_directions() {
        let (net, routes) = regular::crossbar(3).unwrap();
        let dot = loaded_to_dot(&net, &routes);
        // Each attachment link carries 2 out + 2 in = 4 flows.
        assert!(dot.contains("label=\"4\""));
    }

    #[test]
    fn parallel_links_render_as_parallel_edges() {
        let mut net = Network::new(0);
        let a = net.add_switch();
        let b = net.add_switch();
        net.add_link(a, b).unwrap();
        net.add_link(a, b).unwrap();
        let dot = to_dot(&net);
        assert_eq!(dot.matches("S0 -- S1").count(), 2);
    }
}
