//! Source-based routes and route tables (Definition 6).

use std::collections::btree_map::Entry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{Channel, Network, NodeRef, TopoError};
use nocsyn_model::Flow;

/// An ordered path of directed channels from a source end-node to a
/// destination end-node — the value `F(n_s, n_d)` of the paper's
/// source-based routing function.
///
/// A valid route starts with the source's injection channel, ends with the
/// destination's ejection channel, and is link-connected in between (see
/// [`Route::validate`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Route {
    hops: Vec<Channel>,
}

impl Route {
    /// Creates a route from an ordered list of channels.
    pub fn new(hops: Vec<Channel>) -> Self {
        Route { hops }
    }

    /// Number of channels traversed (injection and ejection included).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether the route has no hops.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The channels in traversal order.
    pub fn hops(&self) -> &[Channel] {
        &self.hops
    }

    /// Iterates over the channels in traversal order.
    pub fn iter(&self) -> impl Iterator<Item = Channel> + '_ {
        self.hops.iter().copied()
    }

    /// Whether this route uses `channel`.
    pub fn uses(&self, channel: Channel) -> bool {
        self.hops.contains(&channel)
    }

    /// The set of channels as a sorted set (for conflict intersection).
    pub fn channel_set(&self) -> BTreeSet<Channel> {
        self.hops.iter().copied().collect()
    }

    /// Whether two routes share at least one directed channel — the
    /// *conflicting paths* relation of Definition 7.
    pub fn conflicts_with(&self, other: &Route) -> bool {
        // Routes are short (≤ diameter + 2); quadratic scan beats set
        // construction at this size.
        self.hops.iter().any(|c| other.hops.contains(c))
    }

    /// The channels shared with another route, in this route's order.
    pub fn shared_channels(&self, other: &Route) -> Vec<Channel> {
        self.hops
            .iter()
            .copied()
            .filter(|c| other.hops.contains(c))
            .collect()
    }

    /// Checks that the route is a connected walk realizing `flow` in `net`:
    /// it must depart from `flow.src`, arrive at `flow.dst`, and every hop's
    /// head must equal the next hop's tail.
    ///
    /// # Errors
    ///
    /// [`TopoError::BrokenRoute`] (with the first offending hop index) if
    /// any of those conditions fail, or [`TopoError::UnknownLink`] if a hop
    /// references a link that is not in the network.
    pub fn validate(&self, net: &Network, flow: Flow) -> Result<(), TopoError> {
        let broken = |position| TopoError::BrokenRoute { flow, position };
        if self.hops.is_empty() {
            return Err(broken(0));
        }
        let mut at = NodeRef::Proc(flow.src);
        for (i, &ch) in self.hops.iter().enumerate() {
            let (tail, head) = net.channel_endpoints(ch)?;
            if tail != at {
                return Err(broken(i));
            }
            at = head;
        }
        if at != NodeRef::Proc(flow.dst) {
            return Err(broken(self.hops.len() - 1));
        }
        Ok(())
    }
}

impl FromIterator<Channel> for Route {
    fn from_iter<I: IntoIterator<Item = Channel>>(iter: I) -> Self {
        Route {
            hops: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, ch) in self.hops.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{ch}")?;
        }
        Ok(())
    }
}

/// A deterministic source-based routing function: one [`Route`] per flow.
///
/// ```
/// use nocsyn_model::Flow;
/// use nocsyn_topo::regular;
///
/// # fn main() -> Result<(), nocsyn_topo::TopoError> {
/// let (net, routes) = regular::crossbar(4)?;
/// assert_eq!(routes.len(), 12); // all ordered pairs of 4 procs
/// routes.validate(&net)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteTable {
    routes: BTreeMap<Flow, Route>,
}

impl RouteTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) the route for `flow`; returns the previous
    /// route if one existed.
    pub fn insert(&mut self, flow: Flow, route: Route) -> Option<Route> {
        self.routes.insert(flow, route)
    }

    /// Removes the route for `flow`, returning it if one existed.
    pub fn remove(&mut self, flow: Flow) -> Option<Route> {
        self.routes.remove(&flow)
    }

    /// Inserts a route only if the flow is not yet routed.
    pub fn insert_if_absent(&mut self, flow: Flow, route: Route) -> bool {
        match self.routes.entry(flow) {
            Entry::Vacant(v) => {
                v.insert(route);
                true
            }
            Entry::Occupied(_) => false,
        }
    }

    /// The route for `flow`, if present.
    pub fn route(&self, flow: Flow) -> Option<&Route> {
        self.routes.get(&flow)
    }

    /// Number of routed flows.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// Whether no flow is routed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterates over `(flow, route)` pairs in flow order.
    pub fn iter(&self) -> impl Iterator<Item = (Flow, &Route)> + '_ {
        self.routes.iter().map(|(f, r)| (*f, r))
    }

    /// The flows routed by this table.
    pub fn flows(&self) -> impl Iterator<Item = Flow> + '_ {
        self.routes.keys().copied()
    }

    /// Validates every route against `net` (see [`Route::validate`]).
    ///
    /// # Errors
    ///
    /// The first [`TopoError`] found, if any route is broken.
    pub fn validate(&self, net: &Network) -> Result<(), TopoError> {
        for (flow, route) in self.iter() {
            route.validate(net, flow)?;
        }
        Ok(())
    }

    /// How many routed flows traverse each channel (the per-channel static
    /// load; useful for utilization reporting).
    pub fn channel_load(&self) -> BTreeMap<Channel, usize> {
        let mut load = BTreeMap::new();
        for (_, route) in self.iter() {
            for ch in route.iter() {
                *load.entry(ch).or_insert(0) += 1;
            }
        }
        load
    }

    /// Mean hop count over all routes (`0.0` when empty).
    pub fn mean_hops(&self) -> f64 {
        if self.routes.is_empty() {
            return 0.0;
        }
        let total: usize = self.routes.values().map(Route::len).sum();
        total as f64 / self.routes.len() as f64
    }
}

impl FromIterator<(Flow, Route)> for RouteTable {
    fn from_iter<I: IntoIterator<Item = (Flow, Route)>>(iter: I) -> Self {
        RouteTable {
            routes: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::ProcId;

    /// proc0 - s0 - s1 - proc1, with an extra parallel link between s0, s1.
    fn line_net() -> (Network, Vec<Channel>) {
        let mut net = Network::new(2);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        let mid = net.add_link(s0, s1).unwrap();
        net.add_link(s0, s1).unwrap();
        let a0 = net.attach(ProcId(0), s0).unwrap();
        let a1 = net.attach(ProcId(1), s1).unwrap();
        let hops = vec![
            Channel::forward(a0),
            Channel::forward(mid),
            Channel::backward(a1),
        ];
        (net, hops)
    }

    #[test]
    fn valid_route_passes_validation() {
        let (net, hops) = line_net();
        let route = Route::new(hops);
        route.validate(&net, Flow::from_indices(0, 1)).unwrap();
    }

    #[test]
    fn reversed_route_fails_validation() {
        let (net, hops) = line_net();
        let route = Route::new(hops);
        assert!(matches!(
            route.validate(&net, Flow::from_indices(1, 0)),
            Err(TopoError::BrokenRoute { position: 0, .. })
        ));
    }

    #[test]
    fn disconnected_hop_is_located() {
        let (net, mut hops) = line_net();
        hops[1] = hops[1].reversed(); // middle hop now runs s1 -> s0
        let route = Route::new(hops);
        assert!(matches!(
            route.validate(&net, Flow::from_indices(0, 1)),
            Err(TopoError::BrokenRoute { position: 1, .. })
        ));
    }

    #[test]
    fn empty_route_is_broken() {
        let (net, _) = line_net();
        assert!(Route::default()
            .validate(&net, Flow::from_indices(0, 1))
            .is_err());
    }

    #[test]
    fn route_short_of_destination_is_broken() {
        let (net, hops) = line_net();
        let route = Route::new(hops[..2].to_vec());
        assert!(route.validate(&net, Flow::from_indices(0, 1)).is_err());
    }

    #[test]
    fn conflict_detection_is_direction_sensitive() {
        let (_, hops) = line_net();
        let forward = Route::new(hops.clone());
        // A hypothetical reverse route uses the same links the other way.
        let reverse: Route = hops.iter().rev().map(|c| c.reversed()).collect();
        assert!(!forward.conflicts_with(&reverse));
        assert!(forward.conflicts_with(&forward));
        assert_eq!(forward.shared_channels(&forward).len(), 3);
    }

    #[test]
    fn table_insert_and_load() {
        let (net, hops) = line_net();
        let flow = Flow::from_indices(0, 1);
        let mut table = RouteTable::new();
        assert!(table.insert_if_absent(flow, Route::new(hops.clone())));
        assert!(!table.insert_if_absent(flow, Route::default()));
        assert_eq!(table.remove(Flow::from_indices(1, 0)), None);
        table.validate(&net).unwrap();
        let load = table.channel_load();
        assert_eq!(load.len(), 3);
        assert!(load.values().all(|&n| n == 1));
        assert!((table.mean_hops() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn collect_from_iterator() {
        let flow = Flow::from_indices(0, 1);
        let table: RouteTable = [(flow, Route::default())].into_iter().collect();
        assert_eq!(table.len(), 1);
        assert!(table.route(flow).is_some());
    }
}
