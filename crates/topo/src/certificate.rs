//! Certificate emission: extracting the Theorem-1 evidence object from a
//! routed network.
//!
//! [`build_certificate`] is the one place the per-route resource sets,
//! per-channel crossing flow sets, obligations, and contention witnesses
//! of a [`Certificate`](nocsyn_model::Certificate) are derived from real
//! routes. The emitted certificate agrees with
//! [`verify_contention_free`](crate::verify_contention_free) by
//! construction: its witness list is exactly the report's witness list,
//! rendered into channel labels.

use std::collections::BTreeMap;

use nocsyn_model::{CertWitness, Certificate, CliqueSet, ContentionSet, Digest, Flow};

use crate::RouteTable;

/// Builds the contention-freedom certificate for `routes` against an
/// application with clique set `cliques` and potential contention set
/// `contention`.
///
/// Obligations are the contention pairs with *both* ends routed — the
/// same restriction [`verify_contention_free`](crate::verify_contention_free)
/// applies — and a witness is recorded for every obligation whose resource
/// sets intersect, so `contention_free` matches the verifier's verdict on
/// the same inputs. `job` optionally binds the certificate to a serve
/// cache key (the job-fingerprint digest).
pub fn build_certificate(
    n_procs: usize,
    cliques: &CliqueSet,
    contention: &ContentionSet,
    routes: &RouteTable,
    job: Option<Digest>,
) -> Certificate {
    let mut route_map: BTreeMap<Flow, Vec<String>> = BTreeMap::new();
    for (flow, route) in routes.iter() {
        let chans: Vec<String> = route
            .channel_set()
            .iter()
            .map(|ch| ch.to_string())
            .collect();
        let mut chans = chans;
        chans.sort();
        chans.dedup();
        route_map.insert(flow, chans);
    }

    let mut crossings: BTreeMap<String, Vec<Flow>> = BTreeMap::new();
    for (flow, chans) in &route_map {
        for ch in chans {
            // Flows arrive in BTreeMap order, so each crossing list is
            // already sorted and duplicate-free.
            crossings.entry(ch.clone()).or_default().push(*flow);
        }
    }

    let mut obligations = Vec::new();
    let mut witnesses = Vec::new();
    for pair in contention.iter() {
        let (Some(ra), Some(rb)) = (route_map.get(&pair.first()), route_map.get(&pair.second()))
        else {
            continue;
        };
        obligations.push(pair);
        let shared: Vec<String> = ra
            .iter()
            .filter(|ch| rb.binary_search(ch).is_ok())
            .cloned()
            .collect();
        if !shared.is_empty() {
            witnesses.push(CertWitness { pair, shared });
        }
    }

    Certificate {
        n_procs,
        contention_free: witnesses.is_empty(),
        cliques: cliques.iter().map(|c| c.iter().collect()).collect(),
        obligations,
        routes: route_map,
        crossings,
        witnesses,
        job: job.map(|d| d.to_hex()),
        claimed_binding: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{regular, verify_contention_free};
    use nocsyn_model::{Message, ProcId, Trace};

    fn concurrent_trace(flows: &[(usize, usize)], n: usize) -> Trace {
        let mut t = Trace::new(n);
        for &(s, d) in flows {
            t.push(Message::new(ProcId(s), ProcId(d), 0, 10).unwrap())
                .unwrap();
        }
        t
    }

    #[test]
    fn certificate_verdict_matches_the_verifier() {
        for flows in [
            vec![(0usize, 1usize), (1, 0), (2, 3), (3, 2)],
            vec![(0, 3), (1, 3)],
        ] {
            let t = concurrent_trace(&flows, 4);
            let (_, routes) = regular::mesh(2, 2).unwrap();
            let contention = t.contention_set();
            let report = verify_contention_free(&contention, &routes);
            let cert = build_certificate(4, &t.maximum_clique_set(), &contention, &routes, None);
            assert_eq!(cert.contention_free, report.is_contention_free());
            assert_eq!(cert.witnesses.len(), report.len());
            assert!(cert.verify_binding());
        }
    }

    #[test]
    fn crossings_invert_routes_exactly() {
        let t = concurrent_trace(&[(0, 3), (1, 2)], 4);
        let (_, routes) = regular::torus(2, 2).unwrap();
        let cert = build_certificate(
            4,
            &t.maximum_clique_set(),
            &t.contention_set(),
            &routes,
            None,
        );
        let mut rebuilt: BTreeMap<String, Vec<Flow>> = BTreeMap::new();
        for (flow, chans) in &cert.routes {
            for ch in chans {
                rebuilt.entry(ch.clone()).or_default().push(*flow);
            }
        }
        assert_eq!(rebuilt, cert.crossings);
        // Only routed flows appear, and their resource sets are sorted.
        for chans in cert.routes.values() {
            assert!(chans.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn unrouted_contention_pairs_produce_no_obligation() {
        let t = concurrent_trace(&[(0, 3), (1, 3)], 4);
        let cert = build_certificate(
            4,
            &t.maximum_clique_set(),
            &t.contention_set(),
            &RouteTable::new(),
            None,
        );
        assert!(cert.obligations.is_empty());
        assert!(cert.contention_free);
    }
}
