//! Breadth-first shortest-path routing over the switch graph.

use std::collections::{BTreeSet, VecDeque};

use nocsyn_model::Flow;

use crate::{Channel, Direction, LinkId, Network, Route, SwitchId, TopoError};

/// Builds a minimal-hop route realizing `flow` in `net` using breadth-first
/// search over the switch graph, preferring lower-numbered links on ties
/// (deterministic, as Definition 6 requires).
///
/// # Errors
///
/// * [`TopoError::NotAttached`] if either end-node lacks a home switch.
/// * [`TopoError::Unreachable`] if no switch path exists.
pub fn shortest_route(net: &Network, flow: Flow) -> Result<Route, TopoError> {
    shortest_route_avoiding(net, flow, &BTreeSet::new(), &BTreeSet::new())
}

/// Like [`shortest_route`], but over the *surviving* subgraph of `net`:
/// links in `failed_links` and every link incident to a switch in
/// `failed_switches` are never traversed. The network itself is not
/// modified, so [`LinkId`]s and [`Channel`]s of the returned route keep
/// their original identity — which is what lets a repaired route table be
/// re-verified against the application's original contention set
/// (Theorem 1) and simulated on the original network.
///
/// # Errors
///
/// * [`TopoError::NotAttached`] if either end-node lacks a home switch.
/// * [`TopoError::Unreachable`] if an endpoint's home switch or attachment
///   link has failed, or if no surviving switch path exists.
pub fn shortest_route_avoiding(
    net: &Network,
    flow: Flow,
    failed_links: &BTreeSet<LinkId>,
    failed_switches: &BTreeSet<SwitchId>,
) -> Result<Route, TopoError> {
    let src_switch = net.switch_of(flow.src)?;
    let dst_switch = net.switch_of(flow.dst)?;
    // A dead home switch or attachment link disconnects the processor
    // outright: no route can avoid its own first or last hop.
    if failed_switches.contains(&src_switch)
        || failed_switches.contains(&dst_switch)
        || failed_links.contains(&net.attachment_link(flow.src)?)
        || failed_links.contains(&net.attachment_link(flow.dst)?)
    {
        return Err(TopoError::Unreachable { flow });
    }

    let mut hops = vec![net.injection_channel(flow.src)?];

    if src_switch != dst_switch {
        // BFS over switches; prev[s] = (switch we came from, channel used).
        let mut prev: Vec<Option<(SwitchId, Channel)>> = vec![None; net.n_switches()];
        let mut seen = vec![false; net.n_switches()];
        seen[src_switch.index()] = true;
        let mut queue = VecDeque::from([src_switch]);
        'bfs: while let Some(s) = queue.pop_front() {
            for (link, far) in net.incident(s) {
                let Some(n) = far.as_switch() else { continue };
                if seen[n.index()] || failed_links.contains(&link) || failed_switches.contains(&n) {
                    continue;
                }
                seen[n.index()] = true;
                let link_obj = net.link(link)?;
                let dir = if link_obj.a() == s.into() {
                    Direction::Forward
                } else {
                    Direction::Backward
                };
                prev[n.index()] = Some((s, Channel::new(link, dir)));
                if n == dst_switch {
                    break 'bfs;
                }
                queue.push_back(n);
            }
        }
        if !seen[dst_switch.index()] {
            return Err(TopoError::Unreachable { flow });
        }
        let mut rev = Vec::new();
        let mut at = dst_switch;
        while at != src_switch {
            let (from, ch) = prev[at.index()].expect("reached switches have predecessors");
            rev.push(ch);
            at = from;
        }
        hops.extend(rev.into_iter().rev());
    }

    hops.push(net.ejection_channel(flow.dst)?);
    Ok(Route::new(hops))
}

/// All-pairs switch hop distances via repeated BFS.
///
/// `result[a][b]` is the minimum number of switch-to-switch links between
/// switches `a` and `b`, or `usize::MAX` if unreachable.
pub fn switch_distances(net: &Network) -> Vec<Vec<usize>> {
    let n = net.n_switches();
    let mut dist = vec![vec![usize::MAX; n]; n];
    for start in net.switch_ids() {
        let row = &mut dist[start.index()];
        row[start.index()] = 0;
        let mut queue = VecDeque::from([start]);
        while let Some(s) = queue.pop_front() {
            let d = row[s.index()];
            for (_, far) in net.incident(s) {
                if let Some(nb) = far.as_switch() {
                    if row[nb.index()] == usize::MAX {
                        row[nb.index()] = d + 1;
                        queue.push_back(nb);
                    }
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::ProcId;

    /// A 3-switch line: p0-s0-s1-s2-p1, p2 on s1.
    fn line3() -> Network {
        let mut net = Network::new(3);
        let s: Vec<SwitchId> = (0..3).map(|_| net.add_switch()).collect();
        net.add_link(s[0], s[1]).unwrap();
        net.add_link(s[1], s[2]).unwrap();
        net.attach(ProcId(0), s[0]).unwrap();
        net.attach(ProcId(1), s[2]).unwrap();
        net.attach(ProcId(2), s[1]).unwrap();
        net
    }

    #[test]
    fn shortest_route_spans_the_line() {
        let net = line3();
        let flow = Flow::from_indices(0, 1);
        let route = shortest_route(&net, flow).unwrap();
        route.validate(&net, flow).unwrap();
        assert_eq!(route.len(), 4); // inject + 2 switch hops + eject
    }

    #[test]
    fn same_switch_route_is_inject_eject() {
        let mut net = Network::new(2);
        let s = net.add_switch();
        net.attach(ProcId(0), s).unwrap();
        net.attach(ProcId(1), s).unwrap();
        let flow = Flow::from_indices(0, 1);
        let route = shortest_route(&net, flow).unwrap();
        route.validate(&net, flow).unwrap();
        assert_eq!(route.len(), 2);
    }

    #[test]
    fn unreachable_pairs_error() {
        let mut net = Network::new(2);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        net.attach(ProcId(0), s0).unwrap();
        net.attach(ProcId(1), s1).unwrap();
        assert!(matches!(
            shortest_route(&net, Flow::from_indices(0, 1)),
            Err(TopoError::Unreachable { .. })
        ));
    }

    #[test]
    fn unattached_proc_errors() {
        let mut net = Network::new(2);
        let s = net.add_switch();
        net.attach(ProcId(0), s).unwrap();
        assert!(shortest_route(&net, Flow::from_indices(0, 1)).is_err());
    }

    #[test]
    fn distances_on_line() {
        let net = line3();
        let d = switch_distances(&net);
        assert_eq!(d[0][2], 2);
        assert_eq!(d[2][0], 2);
        assert_eq!(d[0][1], 1);
        assert_eq!(d[1][1], 0);
    }

    #[test]
    fn distances_mark_unreachable() {
        let mut net = Network::new(0);
        net.add_switch();
        net.add_switch();
        let d = switch_distances(&net);
        assert_eq!(d[0][1], usize::MAX);
    }

    #[test]
    fn avoiding_detours_around_a_failed_link() {
        // Line of 4 switches plus a direct shortcut s0-s3; killing the
        // shortcut forces the long way round.
        let mut net = Network::new(2);
        let s: Vec<SwitchId> = (0..4).map(|_| net.add_switch()).collect();
        net.add_link(s[0], s[1]).unwrap();
        net.add_link(s[1], s[2]).unwrap();
        net.add_link(s[2], s[3]).unwrap();
        let shortcut = net.add_link(s[0], s[3]).unwrap();
        net.attach(ProcId(0), s[0]).unwrap();
        net.attach(ProcId(1), s[3]).unwrap();
        let flow = Flow::from_indices(0, 1);
        let failed = BTreeSet::from([shortcut]);
        let route = shortest_route_avoiding(&net, flow, &failed, &BTreeSet::new()).unwrap();
        route.validate(&net, flow).unwrap();
        assert_eq!(route.len(), 5); // inject + 3 line hops + eject
        assert!(route.hops().iter().all(|ch| ch.link != shortcut));
    }

    #[test]
    fn avoiding_detours_around_a_failed_switch() {
        // Square s0-s1-s3 / s0-s2-s3: killing s1 forces the s2 side.
        let mut net = Network::new(2);
        let s: Vec<SwitchId> = (0..4).map(|_| net.add_switch()).collect();
        net.add_link(s[0], s[1]).unwrap();
        net.add_link(s[1], s[3]).unwrap();
        net.add_link(s[0], s[2]).unwrap();
        net.add_link(s[2], s[3]).unwrap();
        net.attach(ProcId(0), s[0]).unwrap();
        net.attach(ProcId(1), s[3]).unwrap();
        let flow = Flow::from_indices(0, 1);
        let failed = BTreeSet::from([s[1]]);
        let route = shortest_route_avoiding(&net, flow, &BTreeSet::new(), &failed).unwrap();
        route.validate(&net, flow).unwrap();
        for &ch in route.hops() {
            let (a, b) = net.channel_endpoints(ch).unwrap();
            assert_ne!(a, s[1].into());
            assert_ne!(b, s[1].into());
        }
    }

    #[test]
    fn avoiding_reports_disconnection() {
        let net = line3();
        let flow = Flow::from_indices(0, 1);
        // The only s0-s1 link is the first hop of every 0 -> 1 route.
        let cut = BTreeSet::from([LinkId(0)]);
        assert!(matches!(
            shortest_route_avoiding(&net, flow, &cut, &BTreeSet::new()),
            Err(TopoError::Unreachable { .. })
        ));
        // A failed endpoint home switch is unroutable outright.
        let dead_home = BTreeSet::from([SwitchId(0)]);
        assert!(matches!(
            shortest_route_avoiding(&net, flow, &BTreeSet::new(), &dead_home),
            Err(TopoError::Unreachable { .. })
        ));
        // A failed attachment link, likewise.
        let nic = BTreeSet::from([net.attachment_link(ProcId(1)).unwrap()]);
        assert!(matches!(
            shortest_route_avoiding(&net, flow, &nic, &BTreeSet::new()),
            Err(TopoError::Unreachable { .. })
        ));
    }

    #[test]
    fn avoiding_nothing_matches_shortest_route() {
        let net = line3();
        for (a, b) in [(0usize, 1usize), (1, 0), (0, 2), (2, 1)] {
            let flow = Flow::from_indices(a, b);
            assert_eq!(
                shortest_route(&net, flow).unwrap(),
                shortest_route_avoiding(&net, flow, &BTreeSet::new(), &BTreeSet::new()).unwrap()
            );
        }
    }

    #[test]
    fn route_is_minimal_with_shortcut() {
        // Line of 4 switches plus a direct shortcut s0-s3.
        let mut net = Network::new(2);
        let s: Vec<SwitchId> = (0..4).map(|_| net.add_switch()).collect();
        net.add_link(s[0], s[1]).unwrap();
        net.add_link(s[1], s[2]).unwrap();
        net.add_link(s[2], s[3]).unwrap();
        net.add_link(s[0], s[3]).unwrap();
        net.attach(ProcId(0), s[0]).unwrap();
        net.attach(ProcId(1), s[3]).unwrap();
        let flow = Flow::from_indices(0, 1);
        let route = shortest_route(&net, flow).unwrap();
        assert_eq!(route.len(), 3); // inject + shortcut + eject
        route.validate(&net, flow).unwrap();
    }
}
