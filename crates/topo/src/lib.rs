//! Network topology substrate for on-chip interconnect synthesis.
//!
//! Implements the *system* and *path conflict* halves of the Ho & Pinkston
//! (HPCA 2003) model:
//!
//! * [`Network`] — a strongly-connected directed multigraph of switches and
//!   processors (Definition 1). Switch pairs may be joined by multiple
//!   parallel links; every processor attaches to exactly one switch through
//!   one full-duplex link.
//! * [`Route`] / [`RouteTable`] — a deterministic *source-based routing
//!   function* `F : P × P → P(L)` (Definition 6), mapping each flow to an
//!   ordered path of directed [`Channel`]s.
//! * [`ConflictSet`] — the *network resource conflict set* `R`
//!   (Definition 7): flow pairs whose routing paths share a channel.
//! * [`verify_contention_free`] — Theorem 1: `C ∩ R = ∅ ⇒ contention-free`,
//!   with witnesses when the check fails.
//! * [`IncrementalChecker`] — the same verdict maintained under
//!   single-route edits via bitset footprints, re-testing only the
//!   contention pairs the edited flow touches.
//! * [`regular`] — generators for the baseline topologies of the paper's
//!   evaluation: 2-D mesh with dimension-order routing, 2-D torus, and the
//!   fully-connected crossbar ("mega-switch").
//!
//! # Example
//!
//! ```
//! use nocsyn_model::Flow;
//! use nocsyn_topo::regular;
//!
//! # fn main() -> Result<(), nocsyn_topo::TopoError> {
//! // A 4x4 mesh of processor tiles with dimension-order routing.
//! let (net, routes) = regular::mesh(4, 4)?;
//! assert_eq!(net.n_switches(), 16);
//! assert!(net.is_strongly_connected());
//!
//! let route = routes.route(Flow::from_indices(0, 15)).unwrap();
//! // 0 -> 3 along x, then down to 15: 6 switch-to-switch hops + inject/eject.
//! assert_eq!(route.len(), 8);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cdg;
mod certificate;
mod conflict;
mod diff;
pub mod dot;
mod error;
mod ids;
mod incremental;
mod network;
pub mod regular;
mod route;
mod shortest;
mod verify;

pub use cdg::{is_deadlock_free, ChannelDependencyGraph};
pub use certificate::build_certificate;
pub use conflict::ConflictSet;
pub use diff::NetworkDelta;
pub use dot::{loaded_to_dot, route_to_dot, to_dot};
pub use error::TopoError;
pub use ids::{Channel, Direction, LinkId, NodeRef, SwitchId};
pub use incremental::IncrementalChecker;
pub use network::{Link, Network, Switch};
pub use route::{Route, RouteTable};
pub use shortest::{shortest_route, shortest_route_avoiding, switch_distances};
pub use verify::{intersects, verify_contention_free, ContentionReport, ContentionWitness};
