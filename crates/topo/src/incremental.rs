//! Incremental Theorem-1 checking: delta updates to `C ∩ R` under route
//! edits.
//!
//! [`verify_contention_free`](crate::verify_contention_free) recomputes
//! the whole intersection `C ∩ R` from scratch — the right tool for a
//! one-shot check, and the oracle everything here is measured against.
//! Reroute-heavy callers (fault repair sweeps, search loops) instead
//! edit one route at a time, and a single-flow edit can only change the
//! verdict of the contention pairs that *mention* that flow. The
//! [`IncrementalChecker`] exploits exactly that:
//!
//! * every routed flow carries a [`RouteSet`] *footprint* — a dense
//!   bitset over channel ids interned by a [`ResourceInterner`]
//!   (key = `link * 2 + direction`);
//! * the violated subset of `C` is kept as a sorted set of
//!   [`FlowPair`]s, repaired after each edit by re-testing only the
//!   pairs adjacent to the edited flow (bitset AND, word-at-a-time);
//! * [`IncrementalChecker::report`] materializes the witnesses from the
//!   live routes, producing a [`ContentionReport`] **equal** to what
//!   `verify_contention_free` would return on the same table — same
//!   pairs, same order, same shared-channel lists.
//!
//! The cost of an edit is `O(route length + pairs touching the flow)`
//! instead of `O(|C| · route length)`, which is what makes per-scenario
//! re-verification affordable in the fault sweep.

use std::collections::{BTreeMap, BTreeSet};

use nocsyn_model::{ContentionSet, Flow, FlowPair, ResourceInterner, RouteSet};

use crate::verify::ContentionReport;
use crate::{Channel, ContentionWitness, Direction, Route, RouteTable};

/// The opaque interner key of a directed channel: two resources per
/// physical link, forward in the even slot.
fn channel_key(ch: Channel) -> u64 {
    let dir_bit = match ch.dir {
        Direction::Forward => 0,
        Direction::Backward => 1,
    };
    (ch.link.index() as u64) * 2 + dir_bit
}

/// Maintains the Theorem-1 verdict `C ∩ R = ∅` across single-route
/// edits, with answers identical to a from-scratch
/// [`verify_contention_free`](crate::verify_contention_free) run.
///
/// ```
/// use nocsyn_model::{Message, ProcId, Trace};
/// use nocsyn_topo::{regular, IncrementalChecker};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut trace = Trace::new(4);
/// trace.push(Message::new(ProcId(0), ProcId(3), 0, 10)?)?;
/// trace.push(Message::new(ProcId(1), ProcId(3), 0, 10)?)?;
///
/// let (_, routes) = regular::mesh(2, 2)?;
/// let mut checker = IncrementalChecker::with_routes(&trace.contention_set(), &routes);
/// // Two overlapping messages into one destination share its ejection
/// // link; dropping either route clears the conflict.
/// assert!(!checker.is_contention_free());
/// checker.clear_route(nocsyn_model::Flow::from_indices(0, 3));
/// assert!(checker.is_contention_free());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalChecker {
    contention: ContentionSet,
    /// Contention pairs indexed by the flows they mention (self-pairs
    /// appear once). Built once; `C` is fixed for the checker's life.
    neighbors: BTreeMap<Flow, Vec<FlowPair>>,
    interner: ResourceInterner,
    routes: RouteTable,
    /// One footprint per *routed* flow (keys mirror `routes` exactly).
    footprints: BTreeMap<Flow, RouteSet>,
    /// The violated subset of `C`, kept sorted so reports iterate in
    /// the same order as the exact checker.
    violations: BTreeSet<FlowPair>,
}

impl IncrementalChecker {
    /// Creates a checker for `contention` with no routes installed
    /// (vacuously contention-free).
    pub fn new(contention: &ContentionSet) -> Self {
        let mut neighbors: BTreeMap<Flow, Vec<FlowPair>> = BTreeMap::new();
        for pair in contention.iter() {
            neighbors.entry(pair.first()).or_default().push(pair);
            if pair.second() != pair.first() {
                neighbors.entry(pair.second()).or_default().push(pair);
            }
        }
        IncrementalChecker {
            contention: contention.clone(),
            neighbors,
            interner: ResourceInterner::new(),
            routes: RouteTable::new(),
            footprints: BTreeMap::new(),
            violations: BTreeSet::new(),
        }
    }

    /// Creates a checker preloaded with every route of `routes`.
    pub fn with_routes(contention: &ContentionSet, routes: &RouteTable) -> Self {
        let mut checker = IncrementalChecker::new(contention);
        for (flow, route) in routes.iter() {
            checker.set_route(flow, route.clone());
        }
        checker
    }

    /// The contention set the checker was built over.
    pub fn contention(&self) -> &ContentionSet {
        &self.contention
    }

    /// The current route table.
    pub fn routes(&self) -> &RouteTable {
        &self.routes
    }

    /// The current route of `flow`, if any.
    pub fn route(&self, flow: Flow) -> Option<&Route> {
        self.routes.route(flow)
    }

    /// Installs (or replaces) the route for `flow`, returning the
    /// previous route; only contention pairs mentioning `flow` are
    /// re-evaluated.
    pub fn set_route(&mut self, flow: Flow, route: Route) -> Option<Route> {
        let mut footprint = RouteSet::new();
        for ch in route.iter() {
            footprint.insert(self.interner.intern(channel_key(ch)));
        }
        self.footprints.insert(flow, footprint);
        let previous = self.routes.insert(flow, route);
        self.refresh_flow(flow);
        previous
    }

    /// Removes the route for `flow` (making it unrouted, hence ignored
    /// by Theorem 1), returning it if one existed.
    pub fn clear_route(&mut self, flow: Flow) -> Option<Route> {
        self.footprints.remove(&flow);
        let previous = self.routes.remove(flow);
        self.refresh_flow(flow);
        previous
    }

    /// Whether `C ∩ R = ∅` for the current table.
    pub fn is_contention_free(&self) -> bool {
        self.violations.is_empty()
    }

    /// Number of violated contention pairs.
    pub fn n_violations(&self) -> usize {
        self.violations.len()
    }

    /// The violated pairs, in lexicographic ([`FlowPair`]) order.
    pub fn violations(&self) -> impl Iterator<Item = FlowPair> + '_ {
        self.violations.iter().copied()
    }

    /// Materializes the full [`ContentionReport`] for the current
    /// table — equal to `verify_contention_free(contention, routes())`.
    pub fn report(&self) -> ContentionReport {
        let witnesses = self
            .violations
            .iter()
            .map(|pair| {
                let (a, b) = (pair.first(), pair.second());
                let (Some(ra), Some(rb)) = (self.routes.route(a), self.routes.route(b)) else {
                    unreachable!("violated pairs have both flows routed");
                };
                ContentionWitness {
                    flow_a: a,
                    flow_b: b,
                    shared: ra.shared_channels(rb),
                }
            })
            .collect();
        ContentionReport::from_witnesses(witnesses)
    }

    /// Re-evaluates every contention pair that mentions `flow` against
    /// the current footprints. A pair is violated iff both its flows
    /// are routed and their footprints share a channel; for a self-pair
    /// that degenerates to "routed with a non-empty route", matching
    /// the exact checker's `shared_channels(self)` semantics.
    fn refresh_flow(&mut self, flow: Flow) {
        let Some(pairs) = self.neighbors.get(&flow) else {
            return;
        };
        for pair in pairs {
            let violated = match (
                self.footprints.get(&pair.first()),
                self.footprints.get(&pair.second()),
            ) {
                (Some(a), Some(b)) => a.intersects(b),
                _ => false,
            };
            if violated {
                self.violations.insert(*pair);
            } else {
                self.violations.remove(pair);
            }
        }
    }

    /// Full-recompute oracle: the incremental state must equal what a
    /// from-scratch pass over the current table derives. Debug/test
    /// builds only — it costs exactly the work the checker exists to
    /// avoid.
    #[cfg(any(test, debug_assertions))]
    pub fn assert_consistent(&self) {
        let exact = crate::verify_contention_free(&self.contention, &self.routes);
        assert_eq!(
            self.report(),
            exact,
            "incremental report diverged from verify_contention_free"
        );
        assert_eq!(
            self.footprints.len(),
            self.routes.len(),
            "footprint keys out of sync with the route table"
        );
        for (flow, route) in self.routes.iter() {
            let mut expect = RouteSet::new();
            for ch in route.iter() {
                let id = self
                    .interner
                    .id(channel_key(ch))
                    .expect("every routed channel is interned");
                expect.insert(id);
            }
            assert_eq!(
                self.footprints.get(&flow),
                Some(&expect),
                "stale footprint for {flow}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{regular, shortest_route, verify_contention_free};
    use nocsyn_model::{Message, ProcId, Trace};

    fn concurrent_trace(flows: &[(usize, usize)], n: usize) -> Trace {
        let mut t = Trace::new(n);
        for &(s, d) in flows {
            t.push(Message::new(ProcId(s), ProcId(d), 0, 10).unwrap())
                .unwrap();
        }
        t
    }

    #[test]
    fn preloaded_checker_matches_exact_verdict() {
        let t = concurrent_trace(&[(0, 3), (1, 3), (2, 0)], 4);
        let c = t.contention_set();
        for make in [regular::crossbar, |n| regular::mesh(2, n / 2)] {
            let (_, routes) = make(4).unwrap();
            let checker = IncrementalChecker::with_routes(&c, &routes);
            checker.assert_consistent();
            assert_eq!(checker.report(), verify_contention_free(&c, &routes));
            assert_eq!(
                checker.is_contention_free(),
                verify_contention_free(&c, &routes).is_contention_free()
            );
        }
    }

    #[test]
    fn edits_track_the_exact_checker() {
        let t = concurrent_trace(&[(0, 3), (1, 3)], 4);
        let c = t.contention_set();
        let (net, routes) = regular::mesh(2, 2).unwrap();
        let mut checker = IncrementalChecker::with_routes(&c, &routes);
        assert!(!checker.is_contention_free());

        let colliding = Flow::from_indices(1, 3);
        let removed = checker.clear_route(colliding).expect("was routed");
        checker.assert_consistent();
        assert!(checker.is_contention_free());

        let prev = checker.set_route(colliding, removed);
        assert_eq!(prev, None);
        checker.assert_consistent();
        assert!(!checker.is_contention_free());
        assert_eq!(checker.n_violations(), 1);
        assert_eq!(checker.violations().count(), 1);

        // Replacing with the same shortest route changes nothing.
        let same = shortest_route(&net, colliding).unwrap();
        checker.set_route(colliding, same);
        checker.assert_consistent();
    }

    #[test]
    fn self_pair_witnesses_the_whole_route() {
        // A flow overlapping its own repeat conflicts with itself on
        // every channel of its route, exactly as the exact checker says.
        let mut t = Trace::new(2);
        t.push(Message::new(ProcId(0), ProcId(1), 0, 10).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(0), ProcId(1), 5, 12).unwrap())
            .unwrap();
        let c = t.contention_set();
        let (_, routes) = regular::crossbar(2).unwrap();
        let checker = IncrementalChecker::with_routes(&c, &routes);
        checker.assert_consistent();
        assert!(!checker.is_contention_free());
        let report = checker.report();
        let flow = Flow::from_indices(0, 1);
        assert_eq!(report.witnesses()[0].flow_a, flow);
        assert_eq!(
            report.witnesses()[0].shared.len(),
            routes.route(flow).unwrap().len()
        );
    }

    #[test]
    fn unrouted_contention_flows_are_ignored() {
        let t = concurrent_trace(&[(0, 3), (1, 3)], 4);
        let checker = IncrementalChecker::new(&t.contention_set());
        assert!(checker.is_contention_free());
        assert!(checker.routes().is_empty());
        checker.assert_consistent();
    }
}
