//! The network resource conflict set `R` (Definition 7).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{Channel, RouteTable};
use nocsyn_model::{Flow, FlowPair};

/// The set of flow pairs whose routing paths share at least one directed
/// channel.
///
/// The paper defines `R` over all of `P⁴`; materializing it for the flows
/// an application actually uses is sufficient, because Theorem 1 only ever
/// intersects `R` with the application's contention set `C`. Pairs of a
/// flow with itself are included implicitly: a flow always conflicts with
/// itself (it reuses its own path), so [`ConflictSet::conflicts`] returns
/// `true` for identical flows without storing them.
///
/// Unlike the paper's idealized statement that a crossbar's conflict set is
/// empty, this implementation also counts the injection/ejection link of
/// each end-node as a resource: two flows sharing a source (or destination)
/// conflict on *any* topology. The paper can ignore those because its
/// contention periods are partial permutations, in which endpoint sharing
/// never happens simultaneously — Theorem 1's intersection with `C` then
/// yields the same verdict either way.
///
/// ```
/// use nocsyn_model::Flow;
/// use nocsyn_topo::{regular, ConflictSet};
///
/// # fn main() -> Result<(), nocsyn_topo::TopoError> {
/// let (_, routes) = regular::crossbar(4)?;
/// let r = ConflictSet::from_routes(&routes);
/// // Crossbar: distinct-endpoint flows never conflict...
/// assert!(!r.conflicts(Flow::from_indices(0, 1), Flow::from_indices(2, 3)));
/// // ...but a shared source means a shared injection link.
/// assert!(r.conflicts(Flow::from_indices(0, 1), Flow::from_indices(0, 2)));
///
/// let (_, mesh_routes) = regular::mesh(2, 2)?;
/// let r = ConflictSet::from_routes(&mesh_routes);
/// // 0->3 (x then y) and 1->3 (straight down) share the column channel.
/// assert!(r.conflicts(Flow::from_indices(0, 3), Flow::from_indices(1, 3)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConflictSet {
    pairs: BTreeSet<FlowPair>,
}

impl ConflictSet {
    /// Creates an empty conflict set (that of a non-blocking network).
    pub fn new() -> Self {
        Self::default()
    }

    /// Computes `R` over the flows routed by `routes`, by inverting the
    /// table into a channel → flows index so the cost is proportional to
    /// actual sharing rather than all flow pairs.
    pub fn from_routes(routes: &RouteTable) -> Self {
        let mut by_channel: BTreeMap<Channel, Vec<Flow>> = BTreeMap::new();
        for (flow, route) in routes.iter() {
            for ch in route.iter() {
                by_channel.entry(ch).or_default().push(flow);
            }
        }
        let mut pairs = BTreeSet::new();
        for flows in by_channel.values() {
            for i in 0..flows.len() {
                for j in i + 1..flows.len() {
                    pairs.insert(FlowPair::new(flows[i], flows[j]));
                }
            }
        }
        ConflictSet { pairs }
    }

    /// Whether the routes of `a` and `b` share a channel. Identical flows
    /// always conflict.
    pub fn conflicts(&self, a: Flow, b: Flow) -> bool {
        a == b || self.pairs.contains(&FlowPair::new(a, b))
    }

    /// Number of distinct conflicting pairs (identical-flow pairs not
    /// counted).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether no two distinct flows conflict.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Iterates over the conflicting pairs in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = FlowPair> + '_ {
        self.pairs.iter().copied()
    }
}

impl fmt::Display for ConflictSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "conflict set: {} pairs", self.pairs.len())?;
        for p in &self.pairs {
            writeln!(f, "  {p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{regular, Network, Route};
    use nocsyn_model::ProcId;

    #[test]
    fn shared_injection_link_conflicts() {
        // Two flows from the same source must share the injection channel.
        let mut net = Network::new(3);
        let s = net.add_switch();
        for p in 0..3 {
            net.attach(ProcId(p), s).unwrap();
        }
        let mut routes = RouteTable::new();
        for flow in [Flow::from_indices(0, 1), Flow::from_indices(0, 2)] {
            routes.insert(flow, crate::shortest_route(&net, flow).unwrap());
        }
        let r = ConflictSet::from_routes(&routes);
        assert!(r.conflicts(Flow::from_indices(0, 1), Flow::from_indices(0, 2)));
    }

    #[test]
    fn identical_flows_always_conflict() {
        let r = ConflictSet::new();
        let f = Flow::from_indices(0, 1);
        assert!(r.conflicts(f, f));
        assert!(r.is_empty());
    }

    #[test]
    fn opposite_directions_do_not_conflict() {
        // p0 <-> p1 over one link: the two directions are separate channels.
        let (_, routes) = regular::crossbar(2).unwrap();
        let r = ConflictSet::from_routes(&routes);
        assert!(!r.conflicts(Flow::from_indices(0, 1), Flow::from_indices(1, 0)));
    }

    #[test]
    fn from_routes_matches_pairwise_reference() {
        let (_, routes) = regular::mesh(2, 2).unwrap();
        let r = ConflictSet::from_routes(&routes);
        let flows: Vec<Flow> = routes.flows().collect();
        for &a in &flows {
            for &b in &flows {
                if a == b {
                    continue;
                }
                let expected = routes
                    .route(a)
                    .unwrap()
                    .conflicts_with(routes.route(b).unwrap());
                assert_eq!(r.conflicts(a, b), expected, "mismatch for {a} vs {b}");
            }
        }
    }

    #[test]
    fn empty_table_gives_empty_set() {
        assert!(ConflictSet::from_routes(&RouteTable::new()).is_empty());
    }

    #[test]
    fn manual_route_sharing_is_found() {
        let mut net = Network::new(4);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        let mid = net.add_link(s0, s1).unwrap();
        let a: Vec<_> = (0..4)
            .map(|p| net.attach(ProcId(p), if p < 2 { s0 } else { s1 }).unwrap())
            .collect();
        // Both flows cross the single middle link forward.
        let f1 = Flow::from_indices(0, 2);
        let f2 = Flow::from_indices(1, 3);
        let mut routes = RouteTable::new();
        routes.insert(
            f1,
            Route::new(vec![
                Channel::forward(a[0]),
                Channel::forward(mid),
                Channel::backward(a[2]),
            ]),
        );
        routes.insert(
            f2,
            Route::new(vec![
                Channel::forward(a[1]),
                Channel::forward(mid),
                Channel::backward(a[3]),
            ]),
        );
        routes.validate(&net).unwrap();
        let r = ConflictSet::from_routes(&routes);
        assert!(r.conflicts(f1, f2));
        assert_eq!(r.len(), 1);
    }
}
