//! The system graph: switches, processors, and full-duplex links.

use std::fmt;

use crate::{Channel, Direction, LinkId, NodeRef, SwitchId, TopoError};
use nocsyn_model::ProcId;

/// A full-duplex physical link joining two vertices of the system graph.
///
/// Switch–switch links carry network traffic; processor–switch links are
/// the injection/ejection attachment of an end-node (created by
/// [`Network::attach`]). Multiple parallel links between the same switch
/// pair are allowed — that is precisely how the synthesis methodology widens
/// a "pipe".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Link {
    a: NodeRef,
    b: NodeRef,
}

impl Link {
    /// First endpoint (the tail of the [`Direction::Forward`] channel).
    pub const fn a(&self) -> NodeRef {
        self.a
    }

    /// Second endpoint (the head of the [`Direction::Forward`] channel).
    pub const fn b(&self) -> NodeRef {
        self.b
    }

    /// The endpoint opposite to `node`, if `node` is an endpoint.
    pub fn opposite(&self, node: NodeRef) -> Option<NodeRef> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// Whether `node` is one of the endpoints.
    pub fn touches(&self, node: NodeRef) -> bool {
        self.a == node || self.b == node
    }
}

/// A switch vertex and the processors attached to it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Switch {
    attached: Vec<ProcId>,
}

impl Switch {
    /// Processors attached to this switch, in attachment order.
    pub fn attached(&self) -> &[ProcId] {
        &self.attached
    }
}

/// A strongly-connected directed multigraph of switches and processors
/// (Definition 1 of the paper).
///
/// The graph is stored undirected (full-duplex links); each link exposes two
/// independent directed [`Channel`]s. Every processor attaches to exactly
/// one switch via one link.
///
/// ```
/// use nocsyn_model::ProcId;
/// use nocsyn_topo::Network;
///
/// # fn main() -> Result<(), nocsyn_topo::TopoError> {
/// let mut net = Network::new(2);
/// let s0 = net.add_switch();
/// let s1 = net.add_switch();
/// net.add_link(s0, s1)?;
/// net.attach(ProcId(0), s0)?;
/// net.attach(ProcId(1), s1)?;
/// assert!(net.is_strongly_connected());
/// assert_eq!(net.degree(s0), 2); // one network port + one processor port
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Network {
    n_procs: usize,
    switches: Vec<Switch>,
    links: Vec<Link>,
    /// Per-switch incident links (including processor attachments).
    switch_links: Vec<Vec<LinkId>>,
    /// Per-processor attachment: `(switch, attachment link)`.
    attachment: Vec<Option<(SwitchId, LinkId)>>,
}

impl Network {
    /// Creates a network over `n_procs` processors with no switches yet.
    pub fn new(n_procs: usize) -> Self {
        Network {
            n_procs,
            switches: Vec::new(),
            links: Vec::new(),
            switch_links: Vec::new(),
            attachment: vec![None; n_procs],
        }
    }

    /// Number of processors.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.switches.len()
    }

    /// Number of physical links, processor attachments included.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Number of switch-to-switch links (excludes processor attachments).
    pub fn n_network_links(&self) -> usize {
        self.links
            .iter()
            .filter(|l| l.a.as_switch().is_some() && l.b.as_switch().is_some())
            .count()
    }

    /// Adds a new switch and returns its id.
    pub fn add_switch(&mut self) -> SwitchId {
        let id = SwitchId(self.switches.len());
        self.switches.push(Switch::default());
        self.switch_links.push(Vec::new());
        id
    }

    /// Adds a full-duplex link between two distinct switches; parallel links
    /// are permitted.
    ///
    /// # Errors
    ///
    /// * [`TopoError::UnknownSwitch`] if either endpoint does not exist.
    /// * [`TopoError::SelfLink`] if `a == b`.
    pub fn add_link(&mut self, a: SwitchId, b: SwitchId) -> Result<LinkId, TopoError> {
        self.check_switch(a)?;
        self.check_switch(b)?;
        if a == b {
            return Err(TopoError::SelfLink { switch: a });
        }
        let id = LinkId(self.links.len());
        self.links.push(Link {
            a: a.into(),
            b: b.into(),
        });
        self.switch_links[a.index()].push(id);
        self.switch_links[b.index()].push(id);
        Ok(id)
    }

    /// Attaches processor `proc` to `switch` through a new link and returns
    /// the attachment link id. The processor is the link's `a` endpoint, so
    /// its injection channel is the link's forward direction.
    ///
    /// # Errors
    ///
    /// * [`TopoError::UnknownProc`] / [`TopoError::UnknownSwitch`] for bad
    ///   ids.
    /// * [`TopoError::AlreadyAttached`] if the processor already has a home
    ///   switch.
    pub fn attach(&mut self, proc: ProcId, switch: SwitchId) -> Result<LinkId, TopoError> {
        self.check_proc(proc)?;
        self.check_switch(switch)?;
        if let Some((s, _)) = self.attachment[proc.index()] {
            return Err(TopoError::AlreadyAttached { proc, switch: s });
        }
        let id = LinkId(self.links.len());
        self.links.push(Link {
            a: proc.into(),
            b: switch.into(),
        });
        self.switch_links[switch.index()].push(id);
        self.switches[switch.index()].attached.push(proc);
        self.attachment[proc.index()] = Some((switch, id));
        Ok(id)
    }

    /// The switch a processor is attached to.
    ///
    /// # Errors
    ///
    /// [`TopoError::NotAttached`] if the processor has no home switch, or
    /// [`TopoError::UnknownProc`] for a bad id.
    pub fn switch_of(&self, proc: ProcId) -> Result<SwitchId, TopoError> {
        self.check_proc(proc)?;
        self.attachment[proc.index()]
            .map(|(s, _)| s)
            .ok_or(TopoError::NotAttached { proc })
    }

    /// The attachment link of a processor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::switch_of`].
    pub fn attachment_link(&self, proc: ProcId) -> Result<LinkId, TopoError> {
        self.check_proc(proc)?;
        self.attachment[proc.index()]
            .map(|(_, l)| l)
            .ok_or(TopoError::NotAttached { proc })
    }

    /// The injection channel of a processor (processor → switch).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::switch_of`].
    pub fn injection_channel(&self, proc: ProcId) -> Result<Channel, TopoError> {
        Ok(Channel::forward(self.attachment_link(proc)?))
    }

    /// The ejection channel of a processor (switch → processor).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Network::switch_of`].
    pub fn ejection_channel(&self, proc: ProcId) -> Result<Channel, TopoError> {
        Ok(Channel::backward(self.attachment_link(proc)?))
    }

    /// The link with the given id.
    ///
    /// # Errors
    ///
    /// [`TopoError::UnknownLink`] for a bad id.
    pub fn link(&self, id: LinkId) -> Result<&Link, TopoError> {
        self.links
            .get(id.index())
            .ok_or(TopoError::UnknownLink { link: id })
    }

    /// The `(tail, head)` vertices of a directed channel.
    ///
    /// # Errors
    ///
    /// [`TopoError::UnknownLink`] for a bad link id.
    pub fn channel_endpoints(&self, ch: Channel) -> Result<(NodeRef, NodeRef), TopoError> {
        let link = self.link(ch.link)?;
        Ok(match ch.dir {
            Direction::Forward => (link.a, link.b),
            Direction::Backward => (link.b, link.a),
        })
    }

    /// The switch at the given id.
    ///
    /// # Errors
    ///
    /// [`TopoError::UnknownSwitch`] for a bad id.
    pub fn switch(&self, id: SwitchId) -> Result<&Switch, TopoError> {
        self.switches
            .get(id.index())
            .ok_or(TopoError::UnknownSwitch { switch: id })
    }

    /// Iterates over switch ids.
    pub fn switch_ids(&self) -> impl Iterator<Item = SwitchId> {
        (0..self.switches.len()).map(SwitchId)
    }

    /// Iterates over link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> {
        (0..self.links.len()).map(LinkId)
    }

    /// Node degree of a switch: incident link endpoints, processor
    /// attachments included. This is the quantity the paper's "maximum node
    /// degree" design constraint bounds (a degree-5 switch is a 5-port
    /// switch).
    pub fn degree(&self, switch: SwitchId) -> usize {
        self.switch_links.get(switch.index()).map_or(0, Vec::len)
    }

    /// Largest switch degree in the network (`0` with no switches).
    pub fn max_degree(&self) -> usize {
        self.switch_ids().map(|s| self.degree(s)).max().unwrap_or(0)
    }

    /// Links incident to a switch with the neighbor at their far end.
    pub fn incident(&self, switch: SwitchId) -> impl Iterator<Item = (LinkId, NodeRef)> + '_ {
        let node: NodeRef = switch.into();
        self.switch_links
            .get(switch.index())
            .into_iter()
            .flatten()
            .map(move |&l| {
                let far = self.links[l.index()]
                    .opposite(node)
                    .expect("incident list is consistent with link endpoints");
                (l, far)
            })
    }

    /// Number of parallel links directly joining switches `a` and `b`.
    pub fn links_between(&self, a: SwitchId, b: SwitchId) -> usize {
        let (na, nb): (NodeRef, NodeRef) = (a.into(), b.into());
        self.switch_links
            .get(a.index())
            .into_iter()
            .flatten()
            .filter(|&&l| {
                let link = &self.links[l.index()];
                link.touches(na) && link.touches(nb)
            })
            .count()
    }

    /// Whether the system graph is strongly connected with every processor
    /// attached (Definition 1 requires strong connectivity; with full-duplex
    /// links this reduces to undirected connectivity of the switch graph).
    pub fn is_strongly_connected(&self) -> bool {
        if self.attachment.iter().any(Option::is_none) {
            return false;
        }
        if self.switches.is_empty() {
            return self.n_procs == 0;
        }
        let mut seen = vec![false; self.switches.len()];
        let mut stack = vec![SwitchId(0)];
        seen[0] = true;
        let mut count = 1;
        while let Some(s) = stack.pop() {
            for (_, far) in self.incident(s) {
                if let Some(n) = far.as_switch() {
                    if !seen[n.index()] {
                        seen[n.index()] = true;
                        count += 1;
                        stack.push(n);
                    }
                }
            }
        }
        count == self.switches.len()
    }

    fn check_switch(&self, s: SwitchId) -> Result<(), TopoError> {
        if s.index() < self.switches.len() {
            Ok(())
        } else {
            Err(TopoError::UnknownSwitch { switch: s })
        }
    }

    fn check_proc(&self, p: ProcId) -> Result<(), TopoError> {
        if p.index() < self.n_procs {
            Ok(())
        } else {
            Err(TopoError::UnknownProc { proc: p })
        }
    }
}

impl fmt::Display for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "network: {} procs, {} switches, {} network links",
            self.n_procs,
            self.n_switches(),
            self.n_network_links()
        )?;
        for s in self.switch_ids() {
            let attached: Vec<String> = self.switches[s.index()]
                .attached
                .iter()
                .map(|p| p.to_string())
                .collect();
            writeln!(
                f,
                "  {s}: procs [{}], degree {}",
                attached.join(", "),
                self.degree(s)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_switch_net() -> Network {
        let mut net = Network::new(2);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        net.add_link(s0, s1).unwrap();
        net.attach(ProcId(0), s0).unwrap();
        net.attach(ProcId(1), s1).unwrap();
        net
    }

    #[test]
    fn degree_counts_procs_and_parallel_links() {
        let mut net = two_switch_net();
        assert_eq!(net.degree(SwitchId(0)), 2);
        net.add_link(SwitchId(0), SwitchId(1)).unwrap();
        assert_eq!(net.degree(SwitchId(0)), 3);
        assert_eq!(net.links_between(SwitchId(0), SwitchId(1)), 2);
        assert_eq!(net.max_degree(), 3);
    }

    #[test]
    fn self_link_is_rejected() {
        let mut net = Network::new(0);
        let s = net.add_switch();
        assert!(matches!(
            net.add_link(s, s),
            Err(TopoError::SelfLink { .. })
        ));
    }

    #[test]
    fn double_attachment_is_rejected() {
        let mut net = Network::new(1);
        let s0 = net.add_switch();
        let s1 = net.add_switch();
        net.attach(ProcId(0), s0).unwrap();
        assert!(matches!(
            net.attach(ProcId(0), s1),
            Err(TopoError::AlreadyAttached { .. })
        ));
    }

    #[test]
    fn unknown_ids_are_rejected() {
        let mut net = Network::new(1);
        let s = net.add_switch();
        assert!(net.add_link(s, SwitchId(7)).is_err());
        assert!(net.attach(ProcId(3), s).is_err());
        assert!(net.link(LinkId(99)).is_err());
        assert!(net.switch(SwitchId(99)).is_err());
    }

    #[test]
    fn injection_and_ejection_channels_are_opposite() {
        let net = two_switch_net();
        let inj = net.injection_channel(ProcId(0)).unwrap();
        let ej = net.ejection_channel(ProcId(0)).unwrap();
        assert_eq!(inj.reversed(), ej);
        let (tail, head) = net.channel_endpoints(inj).unwrap();
        assert_eq!(tail, NodeRef::Proc(ProcId(0)));
        assert_eq!(head, NodeRef::Switch(SwitchId(0)));
    }

    #[test]
    fn connectivity_detection() {
        let net = two_switch_net();
        assert!(net.is_strongly_connected());

        // Disconnected: two switches, no link between them.
        let mut net2 = Network::new(2);
        let s0 = net2.add_switch();
        let s1 = net2.add_switch();
        net2.attach(ProcId(0), s0).unwrap();
        net2.attach(ProcId(1), s1).unwrap();
        assert!(!net2.is_strongly_connected());

        // Unattached processor.
        let mut net3 = Network::new(1);
        net3.add_switch();
        assert!(!net3.is_strongly_connected());

        // Empty network over zero procs is trivially connected.
        assert!(Network::new(0).is_strongly_connected());
    }

    #[test]
    fn incident_reports_far_ends() {
        let net = two_switch_net();
        let far: Vec<NodeRef> = net.incident(SwitchId(0)).map(|(_, n)| n).collect();
        assert!(far.contains(&NodeRef::Switch(SwitchId(1))));
        assert!(far.contains(&NodeRef::Proc(ProcId(0))));
    }

    #[test]
    fn switch_records_attached_procs() {
        let net = two_switch_net();
        assert_eq!(net.switch(SwitchId(0)).unwrap().attached(), &[ProcId(0)]);
        assert_eq!(net.switch_of(ProcId(1)).unwrap(), SwitchId(1));
    }

    #[test]
    fn network_link_count_excludes_attachments() {
        let net = two_switch_net();
        assert_eq!(net.n_links(), 3);
        assert_eq!(net.n_network_links(), 1);
    }
}
