//! Error type for network construction and routing.

use std::error::Error;
use std::fmt;

use nocsyn_model::{Flow, ProcId};

use crate::{LinkId, SwitchId};

/// Errors produced while building networks or route tables.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TopoError {
    /// A switch id does not exist in the network.
    UnknownSwitch {
        /// The offending switch.
        switch: SwitchId,
    },
    /// A link id does not exist in the network.
    UnknownLink {
        /// The offending link.
        link: LinkId,
    },
    /// A processor id is outside the network's process count.
    UnknownProc {
        /// The offending processor.
        proc: ProcId,
    },
    /// A processor was attached to a second switch.
    AlreadyAttached {
        /// The processor in question.
        proc: ProcId,
        /// The switch it is already attached to.
        switch: SwitchId,
    },
    /// A processor has no switch attachment but one was required.
    NotAttached {
        /// The processor in question.
        proc: ProcId,
    },
    /// A route was requested between unconnected nodes.
    Unreachable {
        /// The flow that cannot be routed.
        flow: Flow,
    },
    /// A route's channel sequence is not a connected walk from the flow's
    /// source to its destination.
    BrokenRoute {
        /// The flow whose route is malformed.
        flow: Flow,
        /// Index of the first offending hop.
        position: usize,
    },
    /// A link would connect a node to itself.
    SelfLink {
        /// The switch at both endpoints.
        switch: SwitchId,
    },
    /// A topology generator was asked for an empty or degenerate shape.
    DegenerateShape {
        /// Human-readable description of the bad parameter.
        what: &'static str,
    },
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::UnknownSwitch { switch } => write!(f, "unknown switch {switch}"),
            TopoError::UnknownLink { link } => write!(f, "unknown link {link}"),
            TopoError::UnknownProc { proc } => write!(f, "unknown processor {proc}"),
            TopoError::AlreadyAttached { proc, switch } => {
                write!(f, "{proc} is already attached to {switch}")
            }
            TopoError::NotAttached { proc } => write!(f, "{proc} is not attached to any switch"),
            TopoError::Unreachable { flow } => write!(f, "no path exists for flow {flow}"),
            TopoError::BrokenRoute { flow, position } => {
                write!(f, "route for flow {flow} is disconnected at hop {position}")
            }
            TopoError::SelfLink { switch } => {
                write!(f, "link endpoints are both {switch}")
            }
            TopoError::DegenerateShape { what } => write!(f, "degenerate topology shape: {what}"),
        }
    }
}

impl Error for TopoError {}

impl TopoError {
    /// A short, stable, kebab-case identifier for the error class, never
    /// embedding input-derived values (same convention as
    /// `ModelError::fingerprint`).
    pub fn fingerprint(&self) -> &'static str {
        match self {
            TopoError::UnknownSwitch { .. } => "unknown-switch",
            TopoError::UnknownLink { .. } => "unknown-link",
            TopoError::UnknownProc { .. } => "unknown-proc",
            TopoError::AlreadyAttached { .. } => "already-attached",
            TopoError::NotAttached { .. } => "not-attached",
            TopoError::Unreachable { .. } => "unreachable",
            TopoError::BrokenRoute { .. } => "broken-route",
            TopoError::SelfLink { .. } => "self-link",
            TopoError::DegenerateShape { .. } => "degenerate-shape",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_specific() {
        let e = TopoError::Unreachable {
            flow: Flow::from_indices(1, 2),
        };
        assert_eq!(e.to_string(), "no path exists for flow (1, 2)");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TopoError>();
    }
}
