#![allow(clippy::needless_range_loop)]

//! Property-based tests of the topology substrate: generator validity,
//! route minimality, and conflict-set consistency at arbitrary sizes.

use proptest::prelude::*;

use nocsyn_model::Flow;
use nocsyn_topo::{regular, shortest_route, switch_distances, ConflictSet};

proptest! {
    /// Mesh and torus generators produce valid, strongly connected
    /// networks with fully valid route tables at any reasonable shape.
    #[test]
    fn grid_generators_are_valid(rows in 1usize..5, cols in 1usize..5) {
        for (net, routes) in [regular::mesh(rows, cols).unwrap(), regular::torus(rows, cols).unwrap()] {
            prop_assert!(net.is_strongly_connected());
            routes.validate(&net).unwrap();
            prop_assert_eq!(routes.len(), rows * cols * (rows * cols - 1));
        }
    }

    /// DOR mesh routes are minimal: hop count equals manhattan distance
    /// plus injection and ejection.
    #[test]
    fn mesh_routes_are_minimal(rows in 1usize..5, cols in 1usize..5) {
        let (_, routes) = regular::mesh(rows, cols).unwrap();
        let n = rows * cols;
        for s in 0..n {
            for d in 0..n {
                if s == d { continue; }
                let manhattan = (s / cols).abs_diff(d / cols) + (s % cols).abs_diff(d % cols);
                let route = routes.route(Flow::from_indices(s, d)).unwrap();
                prop_assert_eq!(route.len(), manhattan + 2);
            }
        }
    }

    /// Torus routes never exceed half the ring in either dimension.
    #[test]
    fn torus_routes_take_short_way(rows in 3usize..6, cols in 3usize..6) {
        let (_, routes) = regular::torus(rows, cols).unwrap();
        let n = rows * cols;
        for s in 0..n {
            for d in 0..n {
                if s == d { continue; }
                let ring = |a: usize, b: usize, len: usize| {
                    let fwd = (b + len - a) % len;
                    fwd.min(len - fwd)
                };
                let dist = ring(s / cols, d / cols, rows) + ring(s % cols, d % cols, cols);
                let route = routes.route(Flow::from_indices(s, d)).unwrap();
                prop_assert_eq!(route.len(), dist + 2);
            }
        }
    }

    /// BFS shortest routes agree with all-pairs switch distances on
    /// regular grids.
    #[test]
    fn shortest_route_agrees_with_distances(rows in 2usize..4, cols in 2usize..4) {
        let (net, _) = regular::mesh(rows, cols).unwrap();
        let dist = switch_distances(&net);
        let n = rows * cols;
        for s in 0..n {
            for d in 0..n {
                if s == d { continue; }
                let flow = Flow::from_indices(s, d);
                let route = shortest_route(&net, flow).unwrap();
                route.validate(&net, flow).unwrap();
                // inject + switch hops + eject.
                prop_assert_eq!(route.len(), dist[s][d] + 2);
            }
        }
    }

    /// The conflict set from routes equals the pairwise route-intersection
    /// reference on any grid.
    #[test]
    fn conflict_set_matches_pairwise(rows in 1usize..4, cols in 2usize..4) {
        let (_, routes) = regular::mesh(rows, cols).unwrap();
        let set = ConflictSet::from_routes(&routes);
        let flows: Vec<Flow> = routes.flows().collect();
        for (i, &a) in flows.iter().enumerate() {
            for &b in &flows[i + 1..] {
                let expected = routes.route(a).unwrap().conflicts_with(routes.route(b).unwrap());
                prop_assert_eq!(set.conflicts(a, b), expected);
            }
        }
    }

    /// Fully-connected networks conflict only at shared endpoints.
    #[test]
    fn fully_connected_conflicts_only_at_endpoints(n in 2usize..7) {
        let (_, routes) = regular::fully_connected(n).unwrap();
        let set = ConflictSet::from_routes(&routes);
        for pair in set.iter() {
            let (a, b) = (pair.first(), pair.second());
            prop_assert!(
                a.src == b.src || a.dst == b.dst,
                "non-endpoint conflict {} vs {}", a, b
            );
        }
    }
}
