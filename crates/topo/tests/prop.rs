#![allow(clippy::needless_range_loop)]

//! Property-based tests of the topology substrate: generator validity,
//! route minimality, and conflict-set consistency at arbitrary sizes, on
//! the in-repo `nocsyn-check` harness.

use nocsyn_check::{check, check_assert, check_assert_eq, usize_in};

use nocsyn_model::Flow;
use nocsyn_topo::{regular, shortest_route, switch_distances, ConflictSet};

/// Mesh and torus generators produce valid, strongly connected networks
/// with fully valid route tables at any reasonable shape.
#[test]
fn grid_generators_are_valid() {
    check(
        "grid_generators_are_valid",
        (usize_in(1..5), usize_in(1..5)),
        |&(rows, cols)| {
            for (net, routes) in [
                regular::mesh(rows, cols).unwrap(),
                regular::torus(rows, cols).unwrap(),
            ] {
                check_assert!(net.is_strongly_connected());
                routes.validate(&net).unwrap();
                check_assert_eq!(routes.len(), rows * cols * (rows * cols - 1));
            }
            Ok(())
        },
    );
}

/// DOR mesh routes are minimal: hop count equals manhattan distance plus
/// injection and ejection.
#[test]
fn mesh_routes_are_minimal() {
    check(
        "mesh_routes_are_minimal",
        (usize_in(1..5), usize_in(1..5)),
        |&(rows, cols)| {
            let (_, routes) = regular::mesh(rows, cols).unwrap();
            let n = rows * cols;
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let manhattan = (s / cols).abs_diff(d / cols) + (s % cols).abs_diff(d % cols);
                    let route = routes.route(Flow::from_indices(s, d)).unwrap();
                    check_assert_eq!(route.len(), manhattan + 2);
                }
            }
            Ok(())
        },
    );
}

/// Torus routes never exceed half the ring in either dimension.
#[test]
fn torus_routes_take_short_way() {
    check(
        "torus_routes_take_short_way",
        (usize_in(3..6), usize_in(3..6)),
        |&(rows, cols)| {
            let (_, routes) = regular::torus(rows, cols).unwrap();
            let n = rows * cols;
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let ring = |a: usize, b: usize, len: usize| {
                        let fwd = (b + len - a) % len;
                        fwd.min(len - fwd)
                    };
                    let dist = ring(s / cols, d / cols, rows) + ring(s % cols, d % cols, cols);
                    let route = routes.route(Flow::from_indices(s, d)).unwrap();
                    check_assert_eq!(route.len(), dist + 2);
                }
            }
            Ok(())
        },
    );
}

/// BFS shortest routes agree with all-pairs switch distances on regular
/// grids.
#[test]
fn shortest_route_agrees_with_distances() {
    check(
        "shortest_route_agrees_with_distances",
        (usize_in(2..4), usize_in(2..4)),
        |&(rows, cols)| {
            let (net, _) = regular::mesh(rows, cols).unwrap();
            let dist = switch_distances(&net);
            let n = rows * cols;
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let flow = Flow::from_indices(s, d);
                    let route = shortest_route(&net, flow).unwrap();
                    route.validate(&net, flow).unwrap();
                    // inject + switch hops + eject.
                    check_assert_eq!(route.len(), dist[s][d] + 2);
                }
            }
            Ok(())
        },
    );
}

/// The conflict set from routes equals the pairwise route-intersection
/// reference on any grid.
#[test]
fn conflict_set_matches_pairwise() {
    check(
        "conflict_set_matches_pairwise",
        (usize_in(1..4), usize_in(2..4)),
        |&(rows, cols)| {
            let (_, routes) = regular::mesh(rows, cols).unwrap();
            let set = ConflictSet::from_routes(&routes);
            let flows: Vec<Flow> = routes.flows().collect();
            for (i, &a) in flows.iter().enumerate() {
                for &b in &flows[i + 1..] {
                    let expected = routes
                        .route(a)
                        .unwrap()
                        .conflicts_with(routes.route(b).unwrap());
                    check_assert_eq!(set.conflicts(a, b), expected);
                }
            }
            Ok(())
        },
    );
}

/// Fully-connected networks conflict only at shared endpoints.
#[test]
fn fully_connected_conflicts_only_at_endpoints() {
    check(
        "fully_connected_conflicts_only_at_endpoints",
        usize_in(2..7),
        |&n| {
            let (_, routes) = regular::fully_connected(n).unwrap();
            let set = ConflictSet::from_routes(&routes);
            for pair in set.iter() {
                let (a, b) = (pair.first(), pair.second());
                check_assert!(
                    a.src == b.src || a.dst == b.dst,
                    "non-endpoint conflict {} vs {}",
                    a,
                    b
                );
            }
            Ok(())
        },
    );
}
