//! Clustered decomposition synthesis for patterns beyond the flat
//! annealer's reach (64–256 nodes).
//!
//! The flat Main Partitioning Algorithm explores a search space that
//! grows super-linearly with the processor count; the paper stops at the
//! 8/16-node NAS configurations. Decomposition recovers scalability the
//! way Ogras & Marculescu's long-link insertion work does for meshes:
//! divide and conquer over the *traffic* graph.
//!
//! 1. **Cut** — [`cluster_pattern`] partitions the processors into `k`
//!    balanced clusters along the flow-affinity structure (flows are the
//!    edges of the Theorem-1 clique graph, so cutting where affinity is
//!    low cuts few cliques).
//! 2. **Conquer** — each cluster becomes an independent [`AppPattern`]
//!    (internal flows relabeled, the global contention set and clique set
//!    restricted to them) synthesized through the ordinary engine
//!    portfolio.
//! 3. **Stitch** — [`stitch`] copies the per-cluster networks into one
//!    global network and routes every *cut* flow over a dedicated
//!    inter-cluster pipe between its endpoints' home switches, sized by
//!    exact coloring against the **global** contention set. Stitch pipes
//!    carry no intra-cluster traffic, so they cannot introduce new
//!    conflicts inside clusters.
//! 4. **Re-verify** — the stitched route table is re-checked against the
//!    full contention set with `verify_contention_free`; the report's
//!    `contention_free` flag (and any certificate emitted from the
//!    result) is backed by that global check, never by the construction
//!    argument alone.

use std::collections::BTreeMap;

use nocsyn_coloring::{exact_chromatic, ConflictGraph};
use nocsyn_model::{Clique, CliqueSet, ContentionSet, Flow, ProcId};
use nocsyn_topo::{verify_contention_free, Channel, LinkId, Network, NodeRef, Route, RouteTable};

use crate::{AppPattern, PipeKey, SynthError, SynthesisConfig, SynthesisReport, SynthesisResult};

/// Affinity-refinement passes over the processor assignment. The loop
/// also stops early at a fixpoint; the cap only bounds pathological
/// oscillation.
const REFINE_ROUNDS: usize = 16;

/// The default cluster count for an `n_procs`-node pattern: one cluster
/// per 16 processors (the largest size the flat annealer handles
/// comfortably), at least 2, at most 64.
pub fn auto_cluster_count(n_procs: usize) -> usize {
    (n_procs / 16).clamp(2, 64).min(n_procs.max(1))
}

/// The derived base seed of cluster `index` under request seed `base`:
/// a splitmix64 image of the pair, so sibling cluster jobs explore
/// unrelated restart portfolios while staying a pure function of
/// `(base, index)`.
pub fn cluster_seed(base: u64, index: usize) -> u64 {
    let mut state = base ^ (index as u64 + 1).wrapping_mul(0xD6E8_FEB8_6659_FD93);
    nocsyn_rng::splitmix64(&mut state)
}

/// The configuration a cluster sub-job runs under: reseeded with
/// [`cluster_seed`], and with **one port of degree headroom reserved**
/// for the stitch phase — inter-cluster pipes and connectivity bridges
/// attach to switches the cluster synthesis already finished, so the
/// cluster must stay one port under the global bound for the stitched
/// whole to meet it. The reservation floors at 2 usable ports (below
/// that no connected switch network exists at all).
pub fn cluster_config(base: &SynthesisConfig, index: usize) -> SynthesisConfig {
    let reserved = base.max_degree().saturating_sub(1).max(2);
    base.clone()
        .with_seed(cluster_seed(base.seed(), index))
        .with_max_degree(reserved)
}

/// One cluster of the decomposition: which global processors it owns and
/// the self-contained sub-pattern covering their internal traffic.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Global processor indices, ascending. Local processor `i` of
    /// [`Cluster::pattern`] is `procs[i]`.
    procs: Vec<usize>,
    /// The cluster's internal communication pattern, in local indices.
    pattern: AppPattern,
}

impl Cluster {
    /// Global processor indices owned by this cluster, ascending.
    pub fn procs(&self) -> &[usize] {
        &self.procs
    }

    /// The cluster-internal pattern (local processor indices).
    pub fn pattern(&self) -> &AppPattern {
        &self.pattern
    }
}

/// A full decomposition: the clusters plus every flow the cut severed.
#[derive(Debug, Clone)]
pub struct ClusterPlan {
    n_procs: usize,
    clusters: Vec<Cluster>,
    cut_flows: Vec<Flow>,
}

impl ClusterPlan {
    /// The clusters, in stable order.
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// Flows whose endpoints landed in different clusters (global
    /// indices, sorted).
    pub fn cut_flows(&self) -> &[Flow] {
        &self.cut_flows
    }

    /// Processor count of the decomposed pattern.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }
}

/// Scalar summary of a stitched decomposition, carried on the job
/// outcome and rendered into the `--json` report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecompositionSummary {
    /// Number of clusters synthesized.
    pub clusters: usize,
    /// Number of flows crossing cluster boundaries.
    pub cut_flows: usize,
    /// Inter-cluster links added by the stitch (coloring-sized pipes).
    pub stitch_links: usize,
    /// Processor count of the largest cluster.
    pub largest_cluster: usize,
}

/// Partitions `pattern`'s processors into (at most) `n_clusters` balanced
/// clusters along the flow-affinity structure and derives each cluster's
/// internal sub-pattern. Fully deterministic: contiguous seeding followed
/// by bounded greedy affinity refinement with lexicographic tie-breaks.
///
/// # Errors
///
/// [`SynthError::EmptyPattern`] for a pattern with no processors.
pub fn cluster_pattern(pattern: &AppPattern, n_clusters: usize) -> Result<ClusterPlan, SynthError> {
    let n = pattern.n_procs();
    if n == 0 {
        return Err(SynthError::EmptyPattern);
    }
    let k = n_clusters.clamp(1, n);

    // Flow adjacency (undirected): the affinity a processor has for a
    // cluster is how many of its flows stay internal if it joins.
    let mut neighbors: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &flow in pattern.flows() {
        neighbors[flow.src.index()].push(flow.dst.index());
        neighbors[flow.dst.index()].push(flow.src.index());
    }

    // Contiguous seeding, then greedy refinement under a balance cap.
    let mut assign: Vec<usize> = (0..n).map(|p| p * k / n).collect();
    let mut size = vec![0usize; k];
    for &c in &assign {
        size[c] += 1;
    }
    let max_size = n.div_ceil(k) + 1;
    for _ in 0..REFINE_ROUNDS {
        let mut moved = false;
        for p in 0..n {
            let cur = assign[p];
            if size[cur] <= 1 {
                continue;
            }
            let mut affinity = vec![0usize; k];
            for &q in &neighbors[p] {
                affinity[assign[q]] += 1;
            }
            let mut best = cur;
            for c in 0..k {
                if c != cur && size[c] < max_size && affinity[c] > affinity[best] {
                    best = c;
                }
            }
            if best != cur {
                size[cur] -= 1;
                size[best] += 1;
                assign[p] = best;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    // Refinement may only empty a cluster at k == n corner cases; drop
    // empties while keeping the remaining order stable.
    let mut dense = vec![usize::MAX; k];
    let mut n_live = 0;
    for c in 0..k {
        if size[c] > 0 {
            dense[c] = n_live;
            n_live += 1;
        }
    }
    for a in assign.iter_mut() {
        *a = dense[*a];
    }

    // Cluster membership and global -> local relabeling.
    let mut procs: Vec<Vec<usize>> = vec![Vec::new(); n_live];
    for (p, &c) in assign.iter().enumerate() {
        procs[c].push(p);
    }
    let mut local = vec![usize::MAX; n];
    for members in &procs {
        for (i, &p) in members.iter().enumerate() {
            local[p] = i;
        }
    }

    // Split flows into internal (relabeled per cluster) and cut (global).
    let mut internal: Vec<Vec<Flow>> = vec![Vec::new(); n_live];
    let mut cut_flows = Vec::new();
    let relabel = |flow: Flow| Flow::from_indices(local[flow.src.index()], local[flow.dst.index()]);
    let cluster_of = |flow: Flow| -> Option<usize> {
        let c = assign[flow.src.index()];
        (c == assign[flow.dst.index()]).then_some(c)
    };
    for &flow in pattern.flows() {
        match cluster_of(flow) {
            Some(c) => internal[c].push(relabel(flow)),
            None => cut_flows.push(flow),
        }
    }

    // Restrict the global contention set and clique set to each cluster's
    // internal flows: every contention pair between two internal flows
    // survives, so a contention-free sub-network is contention-free for
    // its share of the *global* pattern, not just a local approximation.
    let mut contention: Vec<ContentionSet> = vec![ContentionSet::new(); n_live];
    for pair in pattern.contention().iter() {
        if let (Some(a), Some(b)) = (cluster_of(pair.first()), cluster_of(pair.second())) {
            if a == b {
                contention[a].insert(relabel(pair.first()), relabel(pair.second()));
            }
        }
    }
    let mut cliques: Vec<Vec<Clique>> = vec![Vec::new(); n_live];
    for clique in pattern.cliques().iter() {
        let mut per_cluster: BTreeMap<usize, Clique> = BTreeMap::new();
        for flow in clique.iter() {
            if let Some(c) = cluster_of(flow) {
                per_cluster.entry(c).or_default().insert(relabel(flow));
            }
        }
        for (c, sub) in per_cluster {
            cliques[c].push(sub);
        }
    }

    let clusters = procs
        .into_iter()
        .zip(internal)
        .zip(contention.into_iter().zip(cliques))
        .map(|((members, flows), (contention, cliques))| {
            let pattern = AppPattern::from_parts(
                members.len(),
                flows,
                contention,
                CliqueSet::from_cliques(cliques).into_maximal(),
            );
            Cluster {
                procs: members,
                pattern,
            }
        })
        .collect();

    Ok(ClusterPlan {
        n_procs: n,
        clusters,
        cut_flows,
    })
}

/// Copies the per-cluster results into one global network, routes every
/// cut flow over a dedicated inter-cluster pipe (exact-colored against
/// the global contention set), restores connectivity between
/// traffic-free clusters, and re-verifies Theorem 1 on the stitched
/// route table from scratch.
///
/// `parts[i]` must be the synthesis result of `plan.clusters()[i]`.
///
/// # Errors
///
/// Propagates topology errors from network assembly ([`SynthError`]).
///
/// # Panics
///
/// Panics if `parts` does not line up with `plan` (caller bug).
pub fn stitch(
    pattern: &AppPattern,
    plan: &ClusterPlan,
    parts: &[SynthesisResult],
    config: &SynthesisConfig,
) -> Result<(SynthesisResult, DecompositionSummary), SynthError> {
    assert_eq!(
        parts.len(),
        plan.clusters.len(),
        "one synthesis result per cluster"
    );
    assert_eq!(plan.n_procs, pattern.n_procs(), "plan matches pattern");

    let mut net = Network::new(pattern.n_procs());
    let mut routes = RouteTable::new();
    let mut placement = vec![usize::MAX; pattern.n_procs()];

    // ------------------------------------------------------------------
    // Copy every cluster network (switches, links, attachments, routes)
    // with a dense switch offset and a link-id remap. Replaying links in
    // id order preserves channel directions exactly.
    // ------------------------------------------------------------------
    for (cluster, part) in plan.clusters.iter().zip(parts) {
        let offset = net.n_switches();
        for _ in 0..part.network.n_switches() {
            net.add_switch();
        }
        let mut link_map: Vec<LinkId> = Vec::with_capacity(part.network.n_links());
        for id in part.network.link_ids() {
            let link = part.network.link(id)?;
            let mapped = match (link.a(), link.b()) {
                (NodeRef::Switch(a), NodeRef::Switch(b)) => {
                    net.add_link((offset + a.index()).into(), (offset + b.index()).into())?
                }
                (NodeRef::Proc(p), NodeRef::Switch(s)) => net.attach(
                    ProcId(cluster.procs[p.index()]),
                    (offset + s.index()).into(),
                )?,
                (a, b) => unreachable!("link {a} -- {b} has no proc-side tail"),
            };
            link_map.push(mapped);
        }
        for (local, &home) in part.placement.iter().enumerate() {
            placement[cluster.procs[local]] = offset + home;
        }
        for (flow, route) in part.routes.iter() {
            let global = Flow::from_indices(
                cluster.procs[flow.src.index()],
                cluster.procs[flow.dst.index()],
            );
            let hops = route
                .iter()
                .map(|ch| Channel::new(link_map[ch.link.index()], ch.dir))
                .collect();
            let route = Route::new(hops);
            route.validate(&net, global)?;
            routes.insert(global, route);
        }
    }

    // ------------------------------------------------------------------
    // Stitch pipes: group cut flows by their endpoints' home switches and
    // size each pipe by exact coloring of both directions against the
    // GLOBAL contention set — the same finalization rule flat synthesis
    // applies, so Theorem 1 holds by the identical argument.
    // ------------------------------------------------------------------
    let mut pipe_dirs: BTreeMap<PipeKey, (Vec<Flow>, Vec<Flow>)> = BTreeMap::new();
    for &flow in &plan.cut_flows {
        let u = placement[flow.src.index()];
        let v = placement[flow.dst.index()];
        let key = PipeKey::new(u, v);
        let (fwd, bwd) = pipe_dirs.entry(key).or_default();
        if key.forward_from(u) {
            fwd.push(flow);
        } else {
            bwd.push(flow);
        }
    }
    let mut stitch_links = 0;
    for (key, (fwd, bwd)) in &pipe_dirs {
        let color_dir = |flows: &[Flow]| -> (usize, BTreeMap<Flow, usize>) {
            if flows.is_empty() {
                return (0, BTreeMap::new());
            }
            let graph = ConflictGraph::from_flows(flows.to_vec(), pattern.contention());
            let coloring = exact_chromatic(&graph);
            let map = flows
                .iter()
                .enumerate()
                .map(|(i, &f)| (f, coloring.color(i)))
                .collect();
            (coloring.n_colors(), map)
        };
        let (chi_f, forward_colors) = color_dir(fwd);
        let (chi_b, backward_colors) = color_dir(bwd);
        let width = chi_f.max(chi_b);
        let mut links = Vec::with_capacity(width);
        for _ in 0..width {
            links.push(net.add_link(key.lo().into(), key.hi().into())?);
        }
        stitch_links += width;
        for (&flow, &color) in forward_colors.iter().chain(backward_colors.iter()) {
            let forward = forward_colors.contains_key(&flow);
            let link = links[color];
            let hops = vec![
                net.injection_channel(flow.src)?,
                if forward {
                    Channel::forward(link)
                } else {
                    Channel::backward(link)
                },
                net.ejection_channel(flow.dst)?,
            ];
            let route = Route::new(hops);
            route.validate(&net, flow)?;
            routes.insert(flow, route);
        }
    }

    // Clusters with no cut traffic between them leave the switch graph
    // disconnected; bridge them degree-aware so every extra port lands
    // on the switch with the most headroom.
    let connectivity_links = bridge_components(&mut net)?;

    // ------------------------------------------------------------------
    // Global re-verification and report.
    // ------------------------------------------------------------------
    let contention = verify_contention_free(pattern.contention(), &routes);
    // Constraints are judged on the *stitched* network against the
    // caller's original config — not on the parts' verdicts, which target
    // the tighter headroom bound of [`cluster_config`]. A cluster that
    // misses its reserved-port goal by one is still a success if the
    // stitch and bridge ports fit under the real budget.
    let max_degree = net.max_degree();
    let width_ok = match config.max_pipe_width() {
        None => true,
        Some(w) => max_pipe_width(&net) <= w,
    };
    let constraints_met = max_degree <= config.max_degree() && width_ok;
    let sum = |f: fn(&SynthesisReport) -> usize| parts.iter().map(|p| f(&p.report)).sum();
    let report = SynthesisReport {
        n_switches: net.n_switches(),
        n_links: net.n_network_links(),
        max_degree,
        constraints_met,
        contention_free: contention.is_contention_free(),
        connectivity_links: connectivity_links + sum(|r| r.connectivity_links),
        rounds: sum(|r| r.rounds),
        splits: sum(|r| r.splits),
        moves_tried: sum(|r| r.moves_tried),
        moves_accepted: sum(|r| r.moves_accepted),
        reroutes_tried: sum(|r| r.reroutes_tried),
        reroutes_accepted: sum(|r| r.reroutes_accepted),
        reroutes_neutral: sum(|r| r.reroutes_neutral),
        cost_history: Vec::new(),
    };
    let summary = DecompositionSummary {
        clusters: plan.clusters.len(),
        cut_flows: plan.cut_flows.len(),
        stitch_links,
        largest_cluster: plan
            .clusters
            .iter()
            .map(|c| c.procs.len())
            .max()
            .unwrap_or(0),
    };
    Ok((
        SynthesisResult {
            network: net,
            routes,
            placement,
            report,
        },
        summary,
    ))
}

/// Widest pipe in `net`: the largest bundle of parallel switch–switch
/// links between one switch pair, covering both the parts' internal
/// pipes and the stitch pipes added here.
fn max_pipe_width(net: &Network) -> usize {
    let mut widths: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for id in net.link_ids() {
        let Ok(link) = net.link(id) else { continue };
        let (Some(a), Some(b)) = (link.a().as_switch(), link.b().as_switch()) else {
            continue;
        };
        let key = (a.index().min(b.index()), a.index().max(b.index()));
        *widths.entry(key).or_insert(0) += 1;
    }
    widths.values().copied().max().unwrap_or(0)
}

/// Joins disconnected switch components with single links, re-selecting
/// the lowest-degree switch on *both* sides before every bridge (ties to
/// the lowest index). Unlike the flat finalizer's chain — which can land
/// two bridge ports on one switch — this spreads the extra ports across
/// whatever headroom the cluster networks left, which is exactly the one
/// port [`cluster_config`] reserved. Returns how many links were added.
fn bridge_components(net: &mut Network) -> Result<usize, SynthError> {
    let n = net.n_switches();
    if n == 0 {
        return Ok(0);
    }
    let mut component = vec![usize::MAX; n];
    let mut n_components = 0;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let id = n_components;
        n_components += 1;
        let mut stack = vec![start];
        component[start] = id;
        while let Some(s) = stack.pop() {
            let neighbors: Vec<usize> = net
                .incident(s.into())
                .filter_map(|(_, far)| far.as_switch())
                .map(|sw| sw.index())
                .collect();
            for nb in neighbors {
                if component[nb] == usize::MAX {
                    component[nb] = id;
                    stack.push(nb);
                }
            }
        }
    }
    if n_components <= 1 {
        return Ok(0);
    }
    let mut connected = vec![false; n_components];
    connected[0] = true;
    let mut added = 0;
    for joining in 1..n_components {
        let min_degree = |net: &Network, keep: &dyn Fn(usize) -> bool| {
            (0..n)
                .filter(|&s| keep(s))
                .min_by_key(|&s| (net.degree(s.into()), s))
                .expect("every component id owns at least one switch")
        };
        let a = min_degree(net, &|s| connected[component[s]]);
        let b = min_degree(net, &|s| component[s] == joining);
        net.add_link(a.into(), b.into())?;
        connected[joining] = true;
        added += 1;
    }
    Ok(added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesize;
    use nocsyn_model::{Phase, PhaseSchedule};

    fn pattern16() -> AppPattern {
        // Two 8-proc halves with heavy internal traffic and a thin cut.
        let mut s = PhaseSchedule::new(16);
        s.push(
            Phase::from_flows([
                (0usize, 1usize),
                (2, 3),
                (4, 5),
                (6, 7),
                (8, 9),
                (10, 11),
                (12, 13),
                (14, 15),
            ])
            .expect("valid"),
        )
        .expect("in range");
        s.push(Phase::from_flows([(1usize, 2usize), (3, 4), (9, 10), (11, 12)]).expect("valid"))
            .expect("in range");
        s.push(Phase::from_flows([(7usize, 8usize), (15, 0)]).expect("valid"))
            .expect("in range");
        AppPattern::from_schedule(&s)
    }

    fn synthesize_plan(plan: &ClusterPlan, config: &SynthesisConfig) -> Vec<SynthesisResult> {
        plan.clusters()
            .iter()
            .enumerate()
            .map(|(i, c)| {
                synthesize(c.pattern(), &cluster_config(config, i)).expect("cluster synthesis")
            })
            .collect()
    }

    #[test]
    fn auto_cluster_count_scales_with_pattern_size() {
        assert_eq!(auto_cluster_count(1), 1);
        assert_eq!(auto_cluster_count(8), 2);
        assert_eq!(auto_cluster_count(64), 4);
        assert_eq!(auto_cluster_count(256), 16);
        assert_eq!(auto_cluster_count(4096), 64);
    }

    #[test]
    fn cluster_seeds_are_distinct_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..32 {
            let s = cluster_seed(7, i);
            assert_eq!(s, cluster_seed(7, i));
            assert!(seen.insert(s), "cluster seed collision at {i}");
        }
    }

    #[test]
    fn clustering_covers_every_processor_once() {
        let pattern = pattern16();
        let plan = cluster_pattern(&pattern, 2).expect("plan");
        let mut owned = [0usize; 16];
        for c in plan.clusters() {
            for &p in c.procs() {
                owned[p] += 1;
            }
        }
        assert!(owned.iter().all(|&n| n == 1), "partition must be exact");
        // Every pattern flow is either internal to some cluster or cut.
        let internal: usize = plan
            .clusters()
            .iter()
            .map(|c| c.pattern().flows().len())
            .sum();
        assert_eq!(internal + plan.cut_flows().len(), pattern.flows().len());
        // The affinity cut keeps the two dense halves together: only the
        // two bridge flows are cut.
        assert!(plan.cut_flows().len() <= 4, "{:?}", plan.cut_flows());
    }

    #[test]
    fn empty_pattern_is_rejected() {
        let p = AppPattern::from_parts(0, [], ContentionSet::new(), CliqueSet::new());
        assert!(matches!(
            cluster_pattern(&p, 2),
            Err(SynthError::EmptyPattern)
        ));
    }

    #[test]
    fn stitched_network_is_globally_contention_free() {
        let pattern = pattern16();
        let plan = cluster_pattern(&pattern, 2).expect("plan");
        let config = SynthesisConfig::new().with_seed(3).with_restarts(2);
        let parts = synthesize_plan(&plan, &config);
        let (result, summary) = stitch(&pattern, &plan, &parts, &config).expect("stitch");
        assert!(result.network.is_strongly_connected());
        result.routes.validate(&result.network).expect("routes");
        assert_eq!(result.routes.len(), pattern.flows().len());
        assert!(result.report.contention_free);
        // The report flag is backed by a from-scratch global check.
        let fresh = verify_contention_free(pattern.contention(), &result.routes);
        assert!(fresh.is_contention_free());
        assert_eq!(summary.clusters, 2);
        assert_eq!(summary.cut_flows, plan.cut_flows().len());
        assert!(summary.stitch_links >= 1);
        assert_eq!(summary.largest_cluster, 8);
    }

    #[test]
    fn stitch_is_deterministic() {
        let pattern = pattern16();
        let config = SynthesisConfig::new().with_seed(5).with_restarts(2);
        let run = || {
            let plan = cluster_pattern(&pattern, 3).expect("plan");
            let parts = synthesize_plan(&plan, &config);
            let (result, summary) = stitch(&pattern, &plan, &parts, &config).expect("stitch");
            (result.placement.clone(), result.report.clone(), summary)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_cluster_plan_degenerates_to_flat_shape() {
        let pattern = pattern16();
        let plan = cluster_pattern(&pattern, 1).expect("plan");
        assert_eq!(plan.clusters().len(), 1);
        assert!(plan.cut_flows().is_empty());
        let config = SynthesisConfig::new().with_seed(1).with_restarts(1);
        let parts = synthesize_plan(&plan, &config);
        let (result, summary) = stitch(&pattern, &plan, &parts, &config).expect("stitch");
        assert!(result.report.contention_free);
        assert_eq!(summary.stitch_links, 0);
        assert_eq!(summary.cut_flows, 0);
    }
}
