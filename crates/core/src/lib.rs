//! Synthesis of minimal, low-contention application-specific on-chip
//! networks — the core methodology of Ho & Pinkston, **"A Methodology for
//! Designing Efficient On-Chip Interconnects on Well-Behaved Communication
//! Patterns"** (HPCA 2003), Section 3.
//!
//! Given the communication pattern of a well-behaved application (an
//! [`AppPattern`], extracted from a timed trace or a phase schedule), the
//! [`synthesize`] entry point runs the paper's recursive-bisection
//! algorithm:
//!
//! 1. Start from a single "mega-switch" connecting every processor.
//! 2. While some switch violates the design constraints, split it: create a
//!    new switch, move half of its processors over, and locally improve the
//!    partition by greedy processor moves (bounded imbalance) and indirect
//!    route assignment (`Best_Route`).
//! 3. Size every inter-switch *pipe* with the `Fast_Color` clique bound
//!    during the search, and with formal graph coloring at finalization.
//! 4. Materialize the result as a concrete [`Network`] and [`RouteTable`]
//!    in which temporally-conflicting communications are assigned to
//!    different parallel links — making the intersection of the
//!    application's contention set with the network's conflict set empty
//!    (Theorem 1).
//!
//! # Example
//!
//! ```
//! use nocsyn_model::{Phase, PhaseSchedule};
//! use nocsyn_synth::{synthesize, AppPattern, SynthesisConfig};
//! use nocsyn_topo::verify_contention_free;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A tiny phase-parallel app on 8 processors: neighbor exchange, then a
//! // transpose-like permutation.
//! let mut sched = PhaseSchedule::new(8);
//! sched.push(Phase::from_flows([(0usize, 1usize), (2, 3), (4, 5), (6, 7)])?)?;
//! sched.push(Phase::from_flows([(1usize, 0usize), (3, 2), (5, 4), (7, 6)])?)?;
//! sched.push(Phase::from_flows([(0usize, 4usize), (1, 5), (2, 6), (3, 7)])?)?;
//!
//! let pattern = AppPattern::from_schedule(&sched);
//! let config = SynthesisConfig::new().with_max_degree(5).with_seed(7);
//! let result = synthesize(&pattern, &config)?;
//!
//! // The generated network satisfies the degree constraint and is
//! // contention-free for the application (Theorem 1).
//! assert!(result.report.constraints_met);
//! assert!(result.network.max_degree() <= 5);
//! let report = verify_contention_free(pattern.contention(), &result.routes);
//! assert!(report.is_contention_free());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod anneal;
mod config;
mod decompose;
mod error;
mod explain;
mod finalize;
mod moves;
mod pareto;
mod partition;
mod pattern;
mod report;
mod request;
mod route_opt;

pub use anneal::AcceptanceRule;
pub use config::{ColoringStrategy, SynthesisConfig};
pub use decompose::{
    auto_cluster_count, cluster_config, cluster_pattern, cluster_seed, stitch, Cluster,
    ClusterPlan, DecompositionSummary,
};
pub use error::SynthError;
pub use explain::explain;
pub use finalize::SynthesisResult;
pub use pareto::{degree_sweep, pareto_filter, ParetoPoint};
pub use partition::{Partitioning, PipeKey};
pub use pattern::AppPattern;
pub use report::SynthesisReport;
pub use request::{RequestBuildError, SynthesisMode, SynthesisRequest, SynthesisRequestBuilder};

use nocsyn_topo::{Network, RouteTable};

/// The derived seed of restart `attempt` under `config`: the base seed
/// advanced by the golden-ratio (splitmix) increment per attempt. Exposed
/// so external schedulers (the `nocsyn-engine` restart portfolio) can
/// reproduce the exact per-attempt seed schedule of [`synthesize`].
pub fn attempt_seed(config: &SynthesisConfig, attempt: usize) -> u64 {
    config
        .seed()
        .wrapping_add((attempt as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// The derived seed of `retry` of restart `attempt`: retry 0 is exactly
/// [`attempt_seed`] (a job with retries configured but none needed is
/// bit-identical to one without), and each further retry advances a
/// splitmix64 chain keyed on a *mixed* image of the attempt seed.
/// Exposed so the `nocsyn-engine` retry policy reruns a faulted attempt
/// under a fresh but *reproducible* seed — the retried result is still a
/// pure function of `(pattern, config, attempt, retry)`.
pub fn retry_seed(config: &SynthesisConfig, attempt: usize, retry: usize) -> u64 {
    let mut seed = attempt_seed(config, attempt);
    if retry == 0 {
        return seed;
    }
    // Chain from a mixed image of the attempt seed, not the raw seed:
    // `attempt_seed` strides attempts by the same golden-ratio constant
    // splitmix64 advances its state by, so raw chains from neighboring
    // attempts would alias (attempt a retry r == attempt a+1 retry r-1).
    let mut state = nocsyn_rng::splitmix64(&mut seed);
    let mut out = 0;
    for _ in 0..retry {
        out = nocsyn_rng::splitmix64(&mut state);
    }
    out
}

/// Runs restart `attempt` of the portfolio: one full deterministic pass of
/// the Main Partitioning Algorithm plus finalization, seeded with
/// [`attempt_seed`]. The result is a pure function of
/// `(pattern, config, attempt)` — independent of which thread runs it or
/// in what order attempts complete, which is what makes the parallel
/// portfolio in `nocsyn-engine` bit-identical to the sequential loop.
///
/// # Errors
///
/// Same conditions as [`synthesize`].
pub fn synthesize_attempt(
    pattern: &AppPattern,
    config: &SynthesisConfig,
    attempt: usize,
) -> Result<SynthesisResult, SynthError> {
    let run_config = config.clone().with_seed(attempt_seed(config, attempt));
    synthesize_once(pattern, &run_config)
}

/// Runs `retry` of restart `attempt` — [`synthesize_attempt`] reseeded
/// with [`retry_seed`]. Retry 0 is identical to the plain attempt.
///
/// # Errors
///
/// Same conditions as [`synthesize`].
pub fn synthesize_retry(
    pattern: &AppPattern,
    config: &SynthesisConfig,
    attempt: usize,
    retry: usize,
) -> Result<SynthesisResult, SynthError> {
    let run_config = config.clone().with_seed(retry_seed(config, attempt, retry));
    synthesize_once(pattern, &run_config)
}

/// Portfolio selection rank of a result — lower is better: constraints
/// met first, then fewest links, then fewest switches. Callers reducing
/// over attempts must break rank ties on the *attempt index* (lowest
/// wins) to reproduce [`synthesize`]'s first-best-kept semantics.
pub fn portfolio_rank(r: &SynthesisResult) -> (bool, usize, usize) {
    (
        !r.report.constraints_met, // met first
        r.report.n_links,
        r.report.n_switches,
    )
}

/// Runs the full design methodology on `pattern` under `config`, producing
/// a concrete network, a route table, and a synthesis report.
///
/// Restarts run sequentially here; the `nocsyn-engine` portfolio fans the
/// same attempt schedule ([`attempt_seed`]) across threads and reduces
/// with the same rank ([`portfolio_rank`], ties on attempt index), so
/// both paths select bit-identical results.
///
/// # Errors
///
/// Returns [`SynthError::EmptyPattern`] for a pattern with no processors.
/// A pattern whose constraints cannot be met (e.g. a degree bound smaller
/// than what any topology needs) does not error: synthesis runs to its
/// round limit and reports `constraints_met = false`.
pub fn synthesize(
    pattern: &AppPattern,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthError> {
    let mut best: Option<SynthesisResult> = None;
    // `restarts()` is clamped to >= 1 by the builder, but stay panic-free
    // even for configurations constructed by future code paths.
    for attempt in 0..config.restarts().max(1) {
        let result = synthesize_attempt(pattern, config, attempt)?;
        if best
            .as_ref()
            .is_none_or(|b| portfolio_rank(&result) < portfolio_rank(b))
        {
            best = Some(result);
        }
    }
    Ok(best.expect("at least one attempt always runs"))
}

/// One full pass of the Main Partitioning Algorithm plus finalization.
fn synthesize_once(
    pattern: &AppPattern,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthError> {
    let mut partitioning = Partitioning::megaswitch(pattern)?;
    partition::run(&mut partitioning, config);
    let mut result = finalize::materialize(&partitioning, config)?;

    // The paper's step 3: formal coloring may need more links than the
    // fast estimate, re-violating the degree constraint — in that case
    // partitioning resumes. Re-running with exact coloring makes the
    // search's degree estimates equal the finalized ones, so this loop
    // converges for any satisfiable constraint.
    let mut retries = 0;
    while !result.report.constraints_met && retries < 2 {
        let exact = config.clone().with_coloring(ColoringStrategy::Exact);
        partition::run(&mut partitioning, &exact);
        result = finalize::materialize(&partitioning, config)?;
        retries += 1;
    }
    Ok(result)
}

/// Warm-started synthesis for run-time reconfiguration: starts from an
/// existing processor placement (e.g. a previous
/// [`SynthesisResult::placement`]) instead of the mega-switch, so the new
/// network stays as close to the old one as the new pattern permits. Use
/// [`NetworkDelta::between`] on the two networks to obtain the
/// reconfiguration edit script.
///
/// Unlike [`synthesize`], this performs a single deterministic run (no
/// restarts): the whole point is continuity with the starting placement.
///
/// [`NetworkDelta::between`]: nocsyn_topo::NetworkDelta::between
///
/// # Errors
///
/// [`SynthError::EmptyPattern`] if the pattern has no processors or the
/// placement does not cover them.
pub fn synthesize_incremental(
    pattern: &AppPattern,
    placement: &[usize],
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthError> {
    let mut partitioning = Partitioning::from_assignment(pattern, placement)?;
    partition::run(&mut partitioning, config);
    let mut result = finalize::materialize(&partitioning, config)?;
    let mut retries = 0;
    while !result.report.constraints_met && retries < 2 {
        let exact = config.clone().with_coloring(ColoringStrategy::Exact);
        partition::run(&mut partitioning, &exact);
        result = finalize::materialize(&partitioning, config)?;
        retries += 1;
    }
    Ok(result)
}

/// Convenience: synthesize and return only the `(network, routes)` pair.
///
/// # Errors
///
/// Same conditions as [`synthesize`].
pub fn synthesize_network(
    pattern: &AppPattern,
    config: &SynthesisConfig,
) -> Result<(Network, RouteTable), SynthError> {
    synthesize(pattern, config).map(|r| (r.network, r.routes))
}

#[cfg(test)]
mod seed_tests {
    use super::*;

    #[test]
    fn retry_zero_is_the_attempt_seed() {
        let config = SynthesisConfig::new().with_seed(0xFEED);
        for attempt in 0..8 {
            assert_eq!(
                retry_seed(&config, attempt, 0),
                attempt_seed(&config, attempt)
            );
        }
    }

    #[test]
    fn retry_seeds_are_distinct_and_reproducible() {
        let config = SynthesisConfig::new().with_seed(7);
        let mut seen = std::collections::BTreeSet::new();
        for attempt in 0..8 {
            for retry in 0..8 {
                let s = retry_seed(&config, attempt, retry);
                assert_eq!(s, retry_seed(&config, attempt, retry));
                assert!(
                    seen.insert(s),
                    "collision at attempt {attempt} retry {retry}"
                );
            }
        }
    }
}
