//! Finalization: formal coloring and materialization of the concrete
//! network (step 3 of the Main Partitioning Algorithm).

use std::collections::BTreeMap;

use nocsyn_coloring::{exact_chromatic, ConflictGraph};
use nocsyn_model::{Certificate, Digest, Flow, ProcId};
use nocsyn_topo::{
    build_certificate, verify_contention_free, Channel, LinkId, Network, Route, RouteTable,
};

use crate::{AppPattern, Partitioning, PipeKey, SynthError, SynthesisConfig, SynthesisReport};

/// The output of [`synthesize`](crate::synthesize): the materialized
/// network, its source-routing table, the per-processor switch placement,
/// and the run report.
#[derive(Debug, Clone)]
pub struct SynthesisResult {
    /// The generated network.
    pub network: Network,
    /// Source routes for every application flow, with temporally
    /// conflicting flows assigned to distinct parallel links.
    pub routes: RouteTable,
    /// Final home switch (index in `network`) of each processor.
    pub placement: Vec<usize>,
    /// Run summary.
    pub report: SynthesisReport,
}

impl SynthesisResult {
    /// Emits the contention-freedom certificate for this result: the
    /// Theorem-1 evidence object an independent checker (`nocsyn
    /// certify`) can validate without any synthesis code. `job`
    /// optionally binds the certificate to a serve-cache key.
    pub fn certificate(&self, pattern: &AppPattern, job: Option<Digest>) -> Certificate {
        build_certificate(
            pattern.n_procs(),
            pattern.cliques(),
            pattern.contention(),
            &self.routes,
            job,
        )
    }
}

/// Per-pipe finalized sizing: exact colorings of both directions.
struct FinalPipe {
    links: usize,
    forward_colors: BTreeMap<Flow, usize>,
    backward_colors: BTreeMap<Flow, usize>,
}

/// Runs formal (exact) coloring on every pipe and materializes the
/// partitioning into a concrete [`Network`] and [`RouteTable`].
///
/// Empty switches (no processors, no traffic) are dropped; if discarding
/// empty pipes leaves the switch graph disconnected, minimal extra links
/// are added to restore strong connectivity (they carry no traffic and are
/// counted in the report).
pub(crate) fn materialize(
    p: &Partitioning,
    config: &SynthesisConfig,
) -> Result<SynthesisResult, SynthError> {
    let pattern = p.pattern();

    // ------------------------------------------------------------------
    // Formal coloring of every pipe (the search only estimated).
    // ------------------------------------------------------------------
    let mut final_pipes: BTreeMap<PipeKey, FinalPipe> = BTreeMap::new();
    for (key, _) in p.pipes() {
        let (fwd, bwd) = p.pipe_flows(key).expect("pipes() yields live keys");
        let color_dir = |set: &nocsyn_model::FlowSet| -> (usize, BTreeMap<Flow, usize>) {
            if set.is_empty() {
                return (0, BTreeMap::new());
            }
            // Ascending-id iteration is lexicographic flow order, so the
            // conflict graph and its coloring match the sorted-set era.
            let flows: Vec<Flow> = p.interner().flows_of(set).collect();
            let graph = ConflictGraph::from_flows(flows.clone(), pattern.contention());
            let coloring = exact_chromatic(&graph);
            let map = flows
                .iter()
                .enumerate()
                .map(|(i, &f)| (f, coloring.color(i)))
                .collect();
            (coloring.n_colors(), map)
        };
        let (chi_f, forward_colors) = color_dir(fwd);
        let (chi_b, backward_colors) = color_dir(bwd);
        final_pipes.insert(
            key,
            FinalPipe {
                links: chi_f.max(chi_b),
                forward_colors,
                backward_colors,
            },
        );
    }

    // ------------------------------------------------------------------
    // Live switches: keep those with processors or traffic; remap densely.
    // ------------------------------------------------------------------
    let n_old = p.n_switches();
    let mut live = vec![false; n_old];
    for (s, slot) in live.iter_mut().enumerate() {
        *slot = !p.members(s).is_empty();
    }
    for (key, fp) in &final_pipes {
        if fp.links > 0 {
            live[key.lo()] = true;
            live[key.hi()] = true;
        }
    }
    let mut remap = vec![usize::MAX; n_old];
    let mut net = Network::new(pattern.n_procs());
    for (old, is_live) in live.iter().enumerate() {
        if *is_live {
            remap[old] = net.add_switch().index();
        }
    }

    // Parallel links per pipe, ordered lo -> hi.
    let mut pipe_links: BTreeMap<PipeKey, Vec<LinkId>> = BTreeMap::new();
    for (key, fp) in &final_pipes {
        let mut ids = Vec::with_capacity(fp.links);
        for _ in 0..fp.links {
            ids.push(net.add_link(remap[key.lo()].into(), remap[key.hi()].into())?);
        }
        pipe_links.insert(*key, ids);
    }

    // Processor attachments.
    for proc in 0..pattern.n_procs() {
        let home = remap[p.home(ProcId(proc))];
        debug_assert_ne!(home, usize::MAX, "home switch of an end-node is live");
        net.attach(ProcId(proc), home.into())?;
    }

    // ------------------------------------------------------------------
    // Restore strong connectivity if empty pipes fragmented the graph.
    // ------------------------------------------------------------------
    let connectivity_links = connect_components(&mut net)?;

    // ------------------------------------------------------------------
    // Routes: walk each flow's switch path, picking the parallel link its
    // color names.
    // ------------------------------------------------------------------
    let mut routes = RouteTable::new();
    for &flow in pattern.flows() {
        let path = p.path(flow).expect("every pattern flow has a path");
        let mut hops = vec![net.injection_channel(flow.src)?];
        for w in path.windows(2) {
            let key = PipeKey::new(w[0], w[1]);
            let fp = &final_pipes[&key];
            let (color, forward) = if key.forward_from(w[0]) {
                (fp.forward_colors[&flow], true)
            } else {
                (fp.backward_colors[&flow], false)
            };
            let link = pipe_links[&key][color];
            hops.push(if forward {
                Channel::forward(link)
            } else {
                Channel::backward(link)
            });
        }
        hops.push(net.ejection_channel(flow.dst)?);
        let route = Route::new(hops);
        route.validate(&net, flow)?;
        routes.insert(flow, route);
    }

    // ------------------------------------------------------------------
    // Report.
    // ------------------------------------------------------------------
    let contention = verify_contention_free(pattern.contention(), &routes);
    let max_degree = net.max_degree();
    let width_ok = match config.max_pipe_width() {
        None => true,
        Some(w) => final_pipes.values().all(|fp| fp.links <= w),
    };
    let report = SynthesisReport {
        n_switches: net.n_switches(),
        n_links: net.n_network_links(),
        max_degree,
        constraints_met: max_degree <= config.max_degree() && width_ok,
        contention_free: contention.is_contention_free(),
        connectivity_links,
        rounds: p.stats.rounds,
        splits: p.stats.splits,
        moves_tried: p.stats.moves_tried,
        moves_accepted: p.stats.moves_accepted,
        reroutes_tried: p.stats.reroutes_tried,
        reroutes_accepted: p.stats.reroutes_accepted,
        reroutes_neutral: p.stats.reroutes_neutral,
        cost_history: p.stats.cost_history.clone(),
    };

    let placement = (0..pattern.n_procs())
        .map(|proc| remap[p.home(ProcId(proc))])
        .collect();

    Ok(SynthesisResult {
        network: net,
        routes,
        placement,
        report,
    })
}

/// Joins disconnected switch components with single links (chained in
/// component discovery order). Returns how many links were added. Shared
/// with the decomposition stitcher, which bridges traffic-free clusters
/// the same way flat finalization bridges traffic-free switch islands.
pub(crate) fn connect_components(net: &mut Network) -> Result<usize, SynthError> {
    let n = net.n_switches();
    if n == 0 {
        return Ok(0);
    }
    let mut component = vec![usize::MAX; n];
    let mut n_components = 0;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        let id = n_components;
        n_components += 1;
        let mut stack = vec![start];
        component[start] = id;
        while let Some(s) = stack.pop() {
            let neighbors: Vec<usize> = net
                .incident(s.into())
                .filter_map(|(_, far)| far.as_switch())
                .map(|sw| sw.index())
                .collect();
            for nb in neighbors {
                if component[nb] == usize::MAX {
                    component[nb] = id;
                    stack.push(nb);
                }
            }
        }
    }
    if n_components <= 1 {
        return Ok(0);
    }
    // Link the lowest-degree switch of each component to the next
    // component's, so the extra ports land where there is slack.
    let mut reps = vec![usize::MAX; n_components];
    for (s, &c) in component.iter().enumerate() {
        if reps[c] == usize::MAX || net.degree(s.into()) < net.degree(reps[c].into()) {
            reps[c] = s;
        }
    }
    for pair in reps.windows(2) {
        net.add_link(pair[0].into(), pair[1].into())?;
    }
    Ok(n_components - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{synthesize, AppPattern, ColoringStrategy};
    use nocsyn_model::{Phase, PhaseSchedule};

    fn schedule8() -> PhaseSchedule {
        let mut s = PhaseSchedule::new(8);
        s.push(Phase::from_flows([(0usize, 1usize), (2, 3), (4, 5), (6, 7)]).unwrap())
            .unwrap();
        s.push(Phase::from_flows([(1usize, 0usize), (3, 2), (5, 4), (7, 6)]).unwrap())
            .unwrap();
        s.push(Phase::from_flows([(0usize, 4usize), (1, 5), (2, 6), (3, 7)]).unwrap())
            .unwrap();
        s
    }

    #[test]
    fn synthesized_network_is_valid_and_contention_free() {
        let pattern = AppPattern::from_schedule(&schedule8());
        let config = SynthesisConfig::new().with_max_degree(5).with_seed(1);
        let result = synthesize(&pattern, &config).unwrap();
        assert!(result.network.is_strongly_connected());
        result.routes.validate(&result.network).unwrap();
        assert!(result.report.contention_free);
        assert!(result.report.constraints_met);
        assert!(result.network.max_degree() <= 5);
        assert_eq!(result.placement.len(), 8);
        // Every flow of the pattern is routed.
        assert_eq!(result.routes.len(), pattern.flows().len());
    }

    #[test]
    fn placement_matches_network_attachment() {
        let pattern = AppPattern::from_schedule(&schedule8());
        let config = SynthesisConfig::new().with_seed(3);
        let result = synthesize(&pattern, &config).unwrap();
        for proc in 0..8 {
            assert_eq!(
                result.network.switch_of(ProcId(proc)).unwrap().index(),
                result.placement[proc]
            );
        }
    }

    #[test]
    fn exact_strategy_never_needs_more_links_than_fast() {
        let pattern = AppPattern::from_schedule(&schedule8());
        let fast = synthesize(
            &pattern,
            &SynthesisConfig::new()
                .with_seed(7)
                .with_coloring(ColoringStrategy::Fast),
        )
        .unwrap();
        let exact = synthesize(
            &pattern,
            &SynthesisConfig::new()
                .with_seed(7)
                .with_coloring(ColoringStrategy::Exact),
        )
        .unwrap();
        // Both contention-free; the exact search sees true costs so its
        // result can only be at least as good on this seed's trajectory.
        assert!(fast.report.contention_free);
        assert!(exact.report.contention_free);
    }

    #[test]
    fn pipe_width_constraint_limits_parallel_links() {
        // CG@16 unconstrained uses multi-link pipes on some seeds; with
        // max width 1, every switch pair ends up joined by at most one
        // link.
        let pattern = AppPattern::from_schedule(&schedule8());
        let config = SynthesisConfig::new()
            .with_max_degree(5)
            .with_max_pipe_width(1)
            .with_seed(4)
            .with_restarts(2);
        let result = synthesize(&pattern, &config).unwrap();
        assert!(result.report.constraints_met);
        for a in result.network.switch_ids() {
            for b in result.network.switch_ids() {
                if a < b {
                    assert!(result.network.links_between(a, b) <= 1, "{a} {b}");
                }
            }
        }
        assert!(result.report.contention_free);
    }

    #[test]
    fn connect_components_bridges_islands() {
        let mut net = Network::new(0);
        for _ in 0..4 {
            net.add_switch();
        }
        net.add_link(0.into(), 1.into()).unwrap();
        // components: {0,1}, {2}, {3}
        let added = connect_components(&mut net).unwrap();
        assert_eq!(added, 2);
        // All switches now reachable.
        let mut reach = [false; 4];
        let mut stack = vec![0usize];
        reach[0] = true;
        while let Some(s) = stack.pop() {
            for (_, far) in net.incident(s.into()) {
                if let Some(sw) = far.as_switch() {
                    if !reach[sw.index()] {
                        reach[sw.index()] = true;
                        stack.push(sw.index());
                    }
                }
            }
        }
        assert!(reach.iter().all(|&r| r));
    }

    #[test]
    fn connect_components_noop_when_connected() {
        let mut net = Network::new(0);
        net.add_switch();
        net.add_switch();
        net.add_link(0.into(), 1.into()).unwrap();
        assert_eq!(connect_components(&mut net).unwrap(), 0);
        assert_eq!(connect_components(&mut Network::new(0)).unwrap(), 0);
    }
}
