//! Move-acceptance rules: greedy descent and simulated annealing.
//!
//! The paper describes its optimizer as simulated annealing, but the
//! published algorithm (Appendix) only ever commits improving moves — i.e.
//! greedy descent with a balance constraint. We implement both: greedy
//! reproduces the paper; a true annealing schedule is exposed as an
//! extension and ablation (DESIGN.md §5.2).

use nocsyn_rng::Rng;

/// Decides whether a candidate move with a given cost delta is accepted.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AcceptanceRule {
    /// Accept only strictly-improving moves (the paper's published rule).
    Greedy,
    /// Metropolis acceptance with geometric cooling: a worsening move of
    /// `Δ` is accepted with probability `exp(-Δ / T)`, and `T` is
    /// multiplied by `cooling` after every decision.
    Anneal {
        /// Initial temperature (in cost units).
        initial_temperature: f64,
        /// Geometric cooling factor in `(0, 1)`.
        cooling: f64,
    },
}

impl AcceptanceRule {
    /// A conservative annealing schedule suitable for the paper's problem
    /// sizes.
    pub fn default_anneal() -> Self {
        AcceptanceRule::Anneal {
            initial_temperature: 2.0,
            cooling: 0.95,
        }
    }
}

/// Mutable acceptance state carrying the current temperature.
#[derive(Debug, Clone)]
pub(crate) struct Acceptor {
    rule: AcceptanceRule,
    temperature: f64,
}

impl Acceptor {
    pub(crate) fn new(rule: AcceptanceRule) -> Self {
        let temperature = match rule {
            AcceptanceRule::Greedy => 0.0,
            AcceptanceRule::Anneal {
                initial_temperature,
                ..
            } => initial_temperature,
        };
        Acceptor { rule, temperature }
    }

    /// Whether a move changing the cost from `old` to `new` is accepted.
    /// Cools the temperature as a side effect when annealing.
    pub(crate) fn accepts(&mut self, old: usize, new: usize, rng: &mut Rng) -> bool {
        match self.rule {
            AcceptanceRule::Greedy => new < old,
            AcceptanceRule::Anneal { cooling, .. } => {
                let accept = if new < old {
                    true
                } else if self.temperature <= f64::EPSILON {
                    false
                } else {
                    let delta = (new - old) as f64;
                    rng.gen_f64() < (-delta / self.temperature).exp()
                };
                self.temperature *= cooling;
                accept
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greedy_accepts_only_improvements() {
        let mut a = Acceptor::new(AcceptanceRule::Greedy);
        let mut rng = Rng::seed_from_u64(1);
        assert!(a.accepts(10, 9, &mut rng));
        assert!(!a.accepts(10, 10, &mut rng));
        assert!(!a.accepts(10, 11, &mut rng));
    }

    #[test]
    fn anneal_always_accepts_improvements() {
        let mut a = Acceptor::new(AcceptanceRule::default_anneal());
        let mut rng = Rng::seed_from_u64(2);
        for _ in 0..50 {
            assert!(a.accepts(10, 9, &mut rng));
        }
    }

    #[test]
    fn anneal_sometimes_accepts_worsening_early() {
        let mut a = Acceptor::new(AcceptanceRule::Anneal {
            initial_temperature: 100.0,
            cooling: 1.0,
        });
        let mut rng = Rng::seed_from_u64(3);
        let accepted = (0..200).filter(|_| a.accepts(10, 11, &mut rng)).count();
        assert!(accepted > 150, "hot annealer should accept most +1 moves");
    }

    #[test]
    fn anneal_freezes_as_it_cools() {
        let mut a = Acceptor::new(AcceptanceRule::Anneal {
            initial_temperature: 1.0,
            cooling: 0.5,
        });
        let mut rng = Rng::seed_from_u64(4);
        // Burn the temperature down.
        for _ in 0..64 {
            a.accepts(10, 11, &mut rng);
        }
        let accepted = (0..100).filter(|_| a.accepts(10, 11, &mut rng)).count();
        assert_eq!(accepted, 0, "frozen annealer behaves greedily");
    }
}
