//! Partitioning state and the Main Partitioning Algorithm (paper Appendix).
//!
//! Synthesis works on an abstract *partitioning*: an assignment of
//! processors to switches, plus a per-flow path through switches. Every
//! unordered switch pair with traffic between them is a *pipe*; the number
//! of links a pipe needs is estimated by coloring (fast or exact) of the
//! communications crossing it, per direction. The concrete [`Network`]
//! (with real parallel links) is only materialized at finalization.
//!
//! Pipes live in append-only *slots* addressed through a
//! [`ResourceInterner`], and every flow carries a [`RouteSet`] footprint
//! of the directed pipe resources its path crosses (resource id =
//! `slot * 2 + direction`). A candidate reroute therefore never walks the
//! pipe map: its old crossings come straight from the footprint, its new
//! crossings from the candidate path, and the two lists cancel by parity —
//! the delta-update invariant of DESIGN.md §12. [`Partitioning::probe_score`]
//! evaluates a reroute from those toggles alone, with the full recompute
//! demoted to a debug-assert oracle.
//!
//! [`Network`]: nocsyn_topo::Network

use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use nocsyn_coloring::{exact_chromatic, fast_color_directed_masks, ConflictGraph};
use nocsyn_model::{
    ContentionSet, Flow, FlowInterner, FlowSet, FxBuildHasher, ProcId, ResourceInterner, RouteSet,
};
use nocsyn_rng::Rng;

use crate::anneal::Acceptor;
use crate::{moves, route_opt, AppPattern, ColoringStrategy, SynthError, SynthesisConfig};

/// An unordered pair of switch indices naming a pipe; `lo < hi`.
///
/// The *forward* direction of a pipe runs from `lo` to `hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeKey {
    lo: usize,
    hi: usize,
}

impl PipeKey {
    /// Creates the pipe key for switches `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; pipes join distinct switches.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "a pipe joins two distinct switches");
        PipeKey {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// The smaller switch index.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// The larger switch index.
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Whether traversal from `a` to `b` is this pipe's forward direction.
    pub fn forward_from(&self, a: usize) -> bool {
        a == self.lo
    }

    /// Whether the pipe touches switch `s`.
    pub fn touches(&self, s: usize) -> bool {
        self.lo == s || self.hi == s
    }
}

impl fmt::Display for PipeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P({},{})", self.lo, self.hi)
    }
}

/// The opaque resource key a pipe interns under (switch indices packed
/// into one word; switch counts never approach 2^32).
fn pipe_key_code(key: PipeKey) -> u64 {
    ((key.lo as u64) << 32) | key.hi as u64
}

/// The communications crossing one pipe (as [`FlowSet`] bitmasks over the
/// pattern's interned flow ids), with its current per-direction link
/// estimates. Slots persist after a pipe drains (empty sets, zero links)
/// so footprint resource ids stay stable for the whole search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PipeState {
    pub(crate) key: PipeKey,
    pub(crate) forward: FlowSet,
    pub(crate) backward: FlowSet,
    /// Population counts of `forward` / `backward`, maintained on every
    /// toggle so emptiness tests never scan the bitset words.
    fwd_n: usize,
    bwd_n: usize,
    /// Per-direction edit generations (bumped on every toggle), versioning
    /// the probe memo: a memoized flipped-direction estimate is valid only
    /// while its direction's generation is unchanged.
    fwd_gen: u64,
    bwd_gen: u64,
    pub(crate) fwd_links: usize,
    pub(crate) bwd_links: usize,
    pub(crate) links: usize,
}

impl PipeState {
    fn new(key: PipeKey, universe: usize) -> Self {
        PipeState {
            key,
            forward: FlowSet::new(universe),
            backward: FlowSet::new(universe),
            fwd_n: 0,
            bwd_n: 0,
            fwd_gen: 0,
            bwd_gen: 0,
            fwd_links: 0,
            bwd_links: 0,
            links: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.fwd_n == 0 && self.bwd_n == 0
    }
}

/// Counters describing a synthesis run (embedded into the final
/// [`SynthesisReport`](crate::SynthesisReport)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct SearchStats {
    pub(crate) rounds: usize,
    pub(crate) splits: usize,
    pub(crate) moves_tried: usize,
    pub(crate) moves_accepted: usize,
    pub(crate) reroutes_tried: usize,
    pub(crate) reroutes_accepted: usize,
    /// Reroutes whose evaluated score exactly matched the incumbent:
    /// tried, scored, and found neither better nor worse. Distinguishes
    /// "no improvement existed" from "never evaluated" when
    /// `reroutes_accepted` is zero.
    pub(crate) reroutes_neutral: usize,
    pub(crate) cost_history: Vec<usize>,
}

/// Memoized committed score: the config knobs it was computed under, and
/// the `(excess, area)` pair.
type ScoreMemo = ((usize, Option<usize>), (usize, usize));

/// The evolving partition of processors into switches, with per-flow switch
/// paths and per-pipe link estimates.
#[derive(Debug, Clone)]
pub struct Partitioning {
    pattern: AppPattern,
    strategy: ColoringStrategy,
    /// Processor → switch index.
    home: Vec<usize>,
    /// Switch index → member processors (sorted).
    members: Vec<Vec<ProcId>>,
    /// Flow index (into `pattern.flows()`) → switch path. The path starts
    /// at the source's home switch and ends at the destination's; adjacent
    /// entries are distinct and the path is simple.
    paths: Vec<Vec<usize>>,
    /// Interner over `pattern.flows()`: a flow's id equals its index in
    /// the (sorted, deduplicated) flow list, so paths, crossing bitsets
    /// and the pattern share one id space.
    interner: FlowInterner,
    /// `pattern.cliques()` compiled to bitmasks over `interner`, once per
    /// partitioning — the `Fast_Color` hot path is AND + popcount against
    /// these.
    clique_masks: Vec<FlowSet>,
    /// Processor index → flow indices with that processor as an endpoint
    /// (ascending), precomputed so moves don't rescan the flow list.
    proc_flows: Vec<Vec<usize>>,
    /// Pipe key (packed) → slot id, in first-seen order. Append-only.
    pipe_ids: ResourceInterner,
    /// Dense mirror of `pipe_ids`: `lo * pipe_stride + hi` → slot (or
    /// `u32::MAX`), so the probe loop resolves a pipe with one indexed
    /// load instead of a hash lookup. Rebuilt when a switch is added.
    pipe_lookup: Vec<u32>,
    pipe_stride: usize,
    /// Slot id → pipe state. A drained pipe keeps its slot zeroed rather
    /// than being removed, so resource ids in footprints never dangle.
    pipe_slots: Vec<PipeState>,
    /// The *live* (non-empty) pipes in sorted key order — the view every
    /// deterministic iteration ([`Partitioning::pipes`]) walks.
    live_pipes: BTreeMap<PipeKey, usize>,
    /// Flow index → footprint of directed pipe resources its path crosses
    /// (resource id = `slot * 2 + direction`), maintained by XOR-toggle in
    /// lock-step with `paths`.
    footprints: Vec<RouteSet>,
    /// Switch index → sum of link estimates of incident pipes, maintained
    /// by [`Partitioning::recompute_pipe_slot`] so [`Partitioning::degree`]
    /// is O(1) instead of a scan over the pipe map.
    incident_links: Vec<usize>,
    /// Switch index → number of live incident pipes (for
    /// [`Partitioning::live_switches`] without a pipe-map scan).
    incident_pipes: Vec<usize>,
    /// Switch index → whether it would survive materialization, with the
    /// live count maintained alongside so `score` never rescans.
    switch_live: Vec<bool>,
    live_switch_count: usize,
    /// Reused buffer of pipe slots touched by the current path-change
    /// batch.
    touched_scratch: Vec<usize>,
    /// Reused buffers for [`Partitioning::probe_score`]: parity-filtered
    /// directed-resource toggles and per-switch delta accumulators.
    probe_toggles: Vec<usize>,
    probe_switches: Vec<(usize, isize, isize)>,
    /// Reused bitset holding a probed direction's crossing set.
    dir_scratch: FlowSet,
    /// Generation-checked memo of flipped-direction estimates, keyed by
    /// `(slot, direction, flow)` packed into one word. Entries are valid
    /// while the direction's edit generation matches; stale entries are
    /// overwritten on the next miss.
    probe_cache: HashMap<u64, (u64, u32), FxBuildHasher>,
    /// Memoized fast-coloring bounds per crossing set. The bound is a pure
    /// function of the set (clique masks are fixed per pattern), so caching
    /// changes no computed value — it only spares the mask sweep when the
    /// annealed reroute loop revisits a set, which it does constantly.
    fast_cache: HashMap<FlowSet, usize, FxBuildHasher>,
    /// Memoized exact chromatic numbers per crossing set (same purity
    /// argument as `fast_cache`, for the branch-and-bound).
    chi_cache: HashMap<FlowSet, usize, FxBuildHasher>,
    /// Committed score memo, invalidated by every mutation; `Cell` so the
    /// historically-`&self` [`Partitioning::score`] can fill it.
    score_memo: Cell<Option<ScoreMemo>>,
    total_links: usize,
    pub(crate) stats: SearchStats,
}

/// Flow indices incident to each processor, in ascending index order.
fn proc_flow_table(pattern: &AppPattern) -> Vec<Vec<usize>> {
    let mut table = vec![Vec::new(); pattern.n_procs()];
    for (i, f) in pattern.flows().iter().enumerate() {
        table[f.src.index()].push(i);
        if f.dst != f.src {
            table[f.dst.index()].push(i);
        }
    }
    table
}

/// Looks up (or creates) the slot of `key`. Free function over the
/// storage fields so callers can hold disjoint borrows of the rest of the
/// partitioning. The dense mirror answers repeat lookups; the interner is
/// only consulted (and the mirror filled) the first time a pipe appears.
fn intern_pipe_slot(
    pipe_ids: &mut ResourceInterner,
    pipe_slots: &mut Vec<PipeState>,
    pipe_lookup: &mut [u32],
    pipe_stride: usize,
    universe: usize,
    key: PipeKey,
) -> usize {
    let cell = &mut pipe_lookup[key.lo * pipe_stride + key.hi];
    if *cell != u32::MAX {
        return *cell as usize;
    }
    let slot = pipe_ids.intern(pipe_key_code(key));
    if slot == pipe_slots.len() {
        pipe_slots.push(PipeState::new(key, universe));
    }
    *cell = slot as u32;
    slot
}

/// Link estimate of one pipe direction under `strategy`, memoized per
/// crossing set. Both caches store exactly what the uncached computation
/// returns, so hits change no computed value.
fn estimate_dir(
    strategy: ColoringStrategy,
    clique_masks: &[FlowSet],
    interner: &FlowInterner,
    contention: &ContentionSet,
    fast_cache: &mut HashMap<FlowSet, usize, FxBuildHasher>,
    chi_cache: &mut HashMap<FlowSet, usize, FxBuildHasher>,
    set: &FlowSet,
) -> usize {
    if set.is_empty() {
        return 0;
    }
    match strategy {
        ColoringStrategy::Fast => {
            if let Some(&links) = fast_cache.get(set) {
                return links;
            }
            let links = fast_color_directed_masks(clique_masks, set);
            fast_cache.insert(set.clone(), links);
            links
        }
        ColoringStrategy::Exact => {
            if let Some(&chi) = chi_cache.get(set) {
                return chi;
            }
            let g = ConflictGraph::from_flows(interner.flows_of(set).collect(), contention);
            let chi = exact_chromatic(&g).n_colors();
            chi_cache.insert(set.clone(), chi);
            chi
        }
    }
}

impl Partitioning {
    /// Builds the initial single-"mega-switch" partitioning (step 1 of the
    /// main algorithm).
    ///
    /// # Errors
    ///
    /// [`SynthError::EmptyPattern`] if the pattern has no processors.
    pub fn megaswitch(pattern: &AppPattern) -> Result<Self, SynthError> {
        if pattern.n_procs() == 0 {
            return Err(SynthError::EmptyPattern);
        }
        let n = pattern.n_procs();
        let n_flows = pattern.flows().len();
        let interner = FlowInterner::from_sorted_flows(pattern.flows().to_vec());
        let clique_masks = pattern.cliques().compile_masks(&interner);
        let proc_flows = proc_flow_table(pattern);
        let paths = vec![vec![0]; n_flows];
        Ok(Partitioning {
            pattern: pattern.clone(),
            strategy: ColoringStrategy::Fast,
            home: vec![0; n],
            members: vec![(0..n).map(ProcId).collect()],
            paths,
            interner,
            clique_masks,
            proc_flows,
            pipe_ids: ResourceInterner::new(),
            pipe_lookup: vec![u32::MAX],
            pipe_stride: 1,
            pipe_slots: Vec::new(),
            live_pipes: BTreeMap::new(),
            footprints: vec![RouteSet::new(); n_flows],
            incident_links: vec![0],
            incident_pipes: vec![0],
            switch_live: vec![true],
            live_switch_count: 1,
            touched_scratch: Vec::new(),
            probe_toggles: Vec::new(),
            probe_switches: Vec::new(),
            dir_scratch: FlowSet::new(n_flows),
            probe_cache: HashMap::default(),
            fast_cache: HashMap::default(),
            chi_cache: HashMap::default(),
            score_memo: Cell::new(None),
            total_links: 0,
            stats: SearchStats::default(),
        })
    }

    /// Builds a partitioning from an explicit processor-to-switch
    /// assignment with direct routing — the warm start used by
    /// [`synthesize_incremental`](crate::synthesize_incremental).
    ///
    /// # Errors
    ///
    /// [`SynthError::EmptyPattern`] if the pattern has no processors or
    /// `homes` does not cover them.
    pub fn from_assignment(pattern: &AppPattern, homes: &[usize]) -> Result<Self, SynthError> {
        if pattern.n_procs() == 0 || homes.len() != pattern.n_procs() {
            return Err(SynthError::EmptyPattern);
        }
        let n_switches = homes.iter().copied().max().unwrap_or(0) + 1;
        let n_flows = pattern.flows().len();
        let mut members: Vec<Vec<ProcId>> = vec![Vec::new(); n_switches];
        for (p, &h) in homes.iter().enumerate() {
            members[h].push(ProcId(p));
        }
        let switch_live: Vec<bool> = members.iter().map(|m| !m.is_empty()).collect();
        let live_switch_count = switch_live.iter().filter(|&&b| b).count();
        let interner = FlowInterner::from_sorted_flows(pattern.flows().to_vec());
        let mut partitioning = Partitioning {
            clique_masks: pattern.cliques().compile_masks(&interner),
            interner,
            proc_flows: proc_flow_table(pattern),
            paths: vec![Vec::new(); n_flows],
            pattern: pattern.clone(),
            strategy: ColoringStrategy::Fast,
            home: homes.to_vec(),
            incident_links: vec![0; n_switches],
            incident_pipes: vec![0; n_switches],
            switch_live,
            live_switch_count,
            touched_scratch: Vec::new(),
            probe_toggles: Vec::new(),
            probe_switches: Vec::new(),
            dir_scratch: FlowSet::new(n_flows),
            probe_cache: HashMap::default(),
            fast_cache: HashMap::default(),
            chi_cache: HashMap::default(),
            score_memo: Cell::new(None),
            members,
            pipe_ids: ResourceInterner::new(),
            pipe_lookup: vec![u32::MAX; n_switches * n_switches],
            pipe_stride: n_switches,
            pipe_slots: Vec::new(),
            live_pipes: BTreeMap::new(),
            footprints: vec![RouteSet::new(); n_flows],
            total_links: 0,
            stats: SearchStats::default(),
        };
        for idx in 0..partitioning.paths.len() {
            let direct = partitioning.direct_path(idx);
            partitioning.set_path(idx, direct);
        }
        Ok(partitioning)
    }

    /// The application pattern being synthesized for.
    pub fn pattern(&self) -> &AppPattern {
        &self.pattern
    }

    /// Number of switches created so far.
    pub fn n_switches(&self) -> usize {
        self.members.len()
    }

    /// The home switch of a processor.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn home(&self, proc: ProcId) -> usize {
        self.home[proc.index()]
    }

    /// The processors attached to switch `s` (sorted).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn members(&self, s: usize) -> &[ProcId] {
        &self.members[s]
    }

    /// The switch path currently assigned to `flow`, if the application
    /// uses that flow.
    pub fn path(&self, flow: Flow) -> Option<&[usize]> {
        self.interner.id(flow).map(|i| self.paths[i].as_slice())
    }

    /// The interner mapping this pattern's flows to the contiguous ids
    /// used by [`Partitioning::pipe_flows`] bitsets (a flow's id is its
    /// index in [`AppPattern::flows`]).
    pub fn interner(&self) -> &FlowInterner {
        &self.interner
    }

    /// Sum of link estimates over all pipes — the objective the search
    /// minimizes.
    pub fn total_links(&self) -> usize {
        self.total_links
    }

    /// Iterates over `(pipe, link estimate)` for every non-empty pipe, in
    /// sorted key order.
    pub fn pipes(&self) -> impl Iterator<Item = (PipeKey, usize)> + '_ {
        self.live_pipes
            .iter()
            .map(|(k, &slot)| (*k, self.pipe_slots[slot].links))
    }

    /// The flows crossing `pipe` in its forward and backward directions,
    /// as bitsets over [`Partitioning::interner`] ids (iterating a set
    /// yields ids in ascending order — lexicographic flow order).
    pub fn pipe_flows(&self, pipe: PipeKey) -> Option<(&FlowSet, &FlowSet)> {
        self.live_pipes.get(&pipe).map(|&slot| {
            let st = &self.pipe_slots[slot];
            (&st.forward, &st.backward)
        })
    }

    /// Estimated node degree of switch `s`: attached processors plus the
    /// link estimates of every incident pipe (cached incrementally; O(1)).
    pub fn degree(&self, s: usize) -> usize {
        self.members[s].len() + self.incident_links[s]
    }

    /// Switches violating any design constraint: degree over the maximum,
    /// or an incident pipe wider than the configured pipe-width bound.
    pub fn violating(&self, config: &SynthesisConfig) -> Vec<usize> {
        let wide: BTreeSet<usize> = match config.max_pipe_width() {
            None => BTreeSet::new(),
            Some(w) => self
                .live_pipes
                .iter()
                .filter(|(_, &slot)| self.pipe_slots[slot].links > w)
                .flat_map(|(k, _)| [k.lo, k.hi])
                .collect(),
        };
        (0..self.members.len())
            .filter(|&s| self.degree(s) > config.max_degree() || wide.contains(&s))
            .collect()
    }

    /// Switches that would survive materialization: those hosting
    /// processors or carrying traffic (dead switches are dropped).
    /// Maintained incrementally; O(1).
    pub fn live_switches(&self) -> usize {
        self.live_switch_count
    }

    /// Lexicographic optimization score: total degree excess over the
    /// constraint first (0 when all constraints hold), then chip area
    /// (links + live switches). Strictly decreasing accepts make every
    /// repair/refinement loop terminate. Memoized between mutations, so
    /// re-reading the committed score inside the reroute loop is O(1).
    pub fn score(&self, config: &SynthesisConfig) -> (usize, usize) {
        let params = (config.max_degree(), config.max_pipe_width());
        if let Some((memo_params, memo_score)) = self.score_memo.get() {
            if memo_params == params {
                return memo_score;
            }
        }
        let degree_excess: usize = (0..self.members.len())
            .map(|s| self.degree(s).saturating_sub(config.max_degree()))
            .sum();
        let width_excess: usize = match config.max_pipe_width() {
            None => 0,
            Some(w) => self
                .live_pipes
                .values()
                .map(|&slot| self.pipe_slots[slot].links.saturating_sub(w))
                .sum(),
        };
        let score = (
            degree_excess + width_excess,
            self.total_links + self.live_switch_count,
        );
        self.score_memo.set(Some((params, score)));
        score
    }

    // ------------------------------------------------------------------
    // Mutators (crate-internal; the search drives these).
    // ------------------------------------------------------------------

    pub(crate) fn set_strategy(&mut self, strategy: ColoringStrategy) {
        if self.strategy != strategy {
            self.strategy = strategy;
            self.score_memo.set(None);
            // Memoized flip estimates were computed under the old strategy.
            self.probe_cache.clear();
            let slots: Vec<usize> = self.live_pipes.values().copied().collect();
            for slot in slots {
                self.recompute_pipe_slot(slot);
            }
        }
    }

    /// Re-derives one slot's per-direction link estimates from its
    /// (already-updated) crossing sets, then reconciles every aggregate
    /// hanging off it: total links, per-switch incident sums, the live
    /// pipe view, and switch liveness.
    fn recompute_pipe_slot(&mut self, slot: usize) {
        let new_fwd = estimate_dir(
            self.strategy,
            &self.clique_masks,
            &self.interner,
            self.pattern.contention(),
            &mut self.fast_cache,
            &mut self.chi_cache,
            &self.pipe_slots[slot].forward,
        );
        let new_bwd = estimate_dir(
            self.strategy,
            &self.clique_masks,
            &self.interner,
            self.pattern.contention(),
            &mut self.fast_cache,
            &mut self.chi_cache,
            &self.pipe_slots[slot].backward,
        );
        let st = &mut self.pipe_slots[slot];
        let key = st.key;
        let old_links = st.links;
        let new_links = new_fwd.max(new_bwd);
        st.fwd_links = new_fwd;
        st.bwd_links = new_bwd;
        st.links = new_links;
        let now_empty = st.is_empty();
        self.total_links = self.total_links - old_links + new_links;
        for s in [key.lo, key.hi] {
            // Add before subtracting: the sum never transiently underflows.
            self.incident_links[s] = self.incident_links[s] + new_links - old_links;
        }
        let was_live = self.live_pipes.contains_key(&key);
        if was_live && now_empty {
            debug_assert_eq!(new_links, 0);
            self.live_pipes.remove(&key);
            self.incident_pipes[key.lo] -= 1;
            self.incident_pipes[key.hi] -= 1;
            self.refresh_switch_live(key.lo);
            self.refresh_switch_live(key.hi);
        } else if !was_live && !now_empty {
            self.live_pipes.insert(key, slot);
            self.incident_pipes[key.lo] += 1;
            self.incident_pipes[key.hi] += 1;
            self.refresh_switch_live(key.lo);
            self.refresh_switch_live(key.hi);
        }
    }

    /// Reconciles `switch_live[s]` (and the live count) after a change to
    /// switch `s`'s members or incident pipes.
    fn refresh_switch_live(&mut self, s: usize) {
        let live = !self.members[s].is_empty() || self.incident_pipes[s] > 0;
        if live != self.switch_live[s] {
            self.switch_live[s] = live;
            if live {
                self.live_switch_count += 1;
            } else {
                self.live_switch_count -= 1;
            }
        }
    }

    /// Applies a batch of path changes (flow index → new path)
    /// incrementally: the old and new crossings of every changed flow are
    /// XOR-toggled into the per-pipe bitsets — and the flow's footprint —
    /// in place (a flow crossing the same pipe and direction both before
    /// and after cancels out), and each touched pipe's link estimate is
    /// recomputed exactly once — however many flows of the batch cross it.
    /// Allocation-free apart from a reused touched-slots scratch buffer.
    fn apply_path_changes<I>(&mut self, changes: I)
    where
        I: IntoIterator<Item = (usize, Vec<usize>)>,
    {
        self.score_memo.set(None);
        let universe = self.paths.len();
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        for (idx, new_path) in changes {
            debug_assert!(
                new_path.windows(2).all(|w| w[0] != w[1]),
                "path repeats a switch"
            );
            let old_path = std::mem::replace(&mut self.paths[idx], new_path);
            for path in [old_path.as_slice(), self.paths[idx].as_slice()] {
                for w in path.windows(2) {
                    let key = PipeKey::new(w[0], w[1]);
                    let slot = intern_pipe_slot(
                        &mut self.pipe_ids,
                        &mut self.pipe_slots,
                        &mut self.pipe_lookup,
                        self.pipe_stride,
                        universe,
                        key,
                    );
                    let forward = key.forward_from(w[0]);
                    let st = &mut self.pipe_slots[slot];
                    let (set, count, gen) = if forward {
                        (&mut st.forward, &mut st.fwd_n, &mut st.fwd_gen)
                    } else {
                        (&mut st.backward, &mut st.bwd_n, &mut st.bwd_gen)
                    };
                    if set.toggle(idx) {
                        *count += 1;
                    } else {
                        *count -= 1;
                    }
                    *gen += 1;
                    self.footprints[idx].toggle(slot * 2 + usize::from(!forward));
                    touched.push(slot);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &slot in &touched {
            self.recompute_pipe_slot(slot);
        }
        self.touched_scratch = touched;
    }

    /// Installs `path` for flow `idx`, updating pipe crossings and link
    /// estimates.
    pub(crate) fn set_path(&mut self, idx: usize, path: Vec<usize>) {
        self.apply_path_changes([(idx, path)]);
    }

    // ------------------------------------------------------------------
    // Probes: score a candidate reroute without committing it.
    // ------------------------------------------------------------------

    /// Gathers the directed pipe resources whose crossing sets would flip
    /// if flow `idx` moved to `new_path`: the flow's current footprint
    /// XOR the candidate's crossings, computed by sort + parity-cancel
    /// (a resource crossed both before and after appears twice and drops
    /// out). Interns candidate pipes on the fly — an interned-but-empty
    /// slot is indistinguishable from an absent pipe.
    fn collect_probe_toggles(&mut self, idx: usize, new_path: &[usize]) {
        let universe = self.paths.len();
        let mut toggles = std::mem::take(&mut self.probe_toggles);
        toggles.clear();
        toggles.extend(self.footprints[idx].iter());
        for w in new_path.windows(2) {
            let key = PipeKey::new(w[0], w[1]);
            let slot = intern_pipe_slot(
                &mut self.pipe_ids,
                &mut self.pipe_slots,
                &mut self.pipe_lookup,
                self.pipe_stride,
                universe,
                key,
            );
            toggles.push(slot * 2 + usize::from(!key.forward_from(w[0])));
        }
        toggles.sort_unstable();
        // The footprint is a set and the candidate path is simple, so a
        // resource's multiplicity is at most 2; keep odd occurrences.
        let mut keep = 0;
        let mut i = 0;
        while i < toggles.len() {
            if i + 1 < toggles.len() && toggles[i + 1] == toggles[i] {
                i += 2;
            } else {
                toggles[keep] = toggles[i];
                keep += 1;
                i += 1;
            }
        }
        toggles.truncate(keep);
        self.probe_toggles = toggles;
    }

    /// Link estimate of one direction of `slot` with flow `idx` flipped,
    /// plus whether that direction would then be empty. Reads the
    /// committed set into a scratch bitset; commits nothing.
    fn flipped_dir_links(&mut self, slot: usize, backward: bool, idx: usize) -> (usize, bool) {
        let st = &self.pipe_slots[slot];
        let (set, count, gen) = if backward {
            (&st.backward, st.bwd_n, st.bwd_gen)
        } else {
            (&st.forward, st.fwd_n, st.fwd_gen)
        };
        let flipped_n = if set.contains(idx) {
            count - 1
        } else {
            count + 1
        };
        if flipped_n == 0 {
            return (0, true);
        }
        // The anneal re-probes the same (pipe, direction, flow) flips over
        // and over between commits; a generation-checked memo answers those
        // without touching the bitset or the set-keyed caches.
        let memo_key = (((slot * 2 + usize::from(backward)) as u64) << 32) | idx as u64;
        if let Some(&(g, links)) = self.probe_cache.get(&memo_key) {
            if g == gen {
                return (links as usize, false);
            }
        }
        self.dir_scratch.clone_from(set);
        self.dir_scratch.toggle(idx);
        let links = estimate_dir(
            self.strategy,
            &self.clique_masks,
            &self.interner,
            self.pattern.contention(),
            &mut self.fast_cache,
            &mut self.chi_cache,
            &self.dir_scratch,
        );
        self.probe_cache.insert(memo_key, (gen, links as u32));
        (links, false)
    }

    /// The total link estimate the partitioning would have after rerouting
    /// flow `idx` onto `new_path`, computed from the toggled footprints
    /// alone — no committed state changes. In debug builds the result is
    /// checked against a real apply-score-revert.
    pub(crate) fn probe_total_links(&mut self, idx: usize, new_path: &[usize]) -> usize {
        self.collect_probe_toggles(idx, new_path);
        let toggles = std::mem::take(&mut self.probe_toggles);
        let mut total = self.total_links as isize;
        let mut i = 0;
        while i < toggles.len() {
            let slot = toggles[i] / 2;
            let flip_fwd = toggles[i].is_multiple_of(2);
            let flip_both = flip_fwd && i + 1 < toggles.len() && toggles[i + 1] == slot * 2 + 1;
            let new_fwd = if flip_fwd {
                self.flipped_dir_links(slot, false, idx).0
            } else {
                self.pipe_slots[slot].fwd_links
            };
            let new_bwd = if !flip_fwd || flip_both {
                self.flipped_dir_links(slot, true, idx).0
            } else {
                self.pipe_slots[slot].bwd_links
            };
            total += new_fwd.max(new_bwd) as isize - self.pipe_slots[slot].links as isize;
            i += if flip_both { 2 } else { 1 };
        }
        self.probe_toggles = toggles;
        let probed = total as usize;
        #[cfg(debug_assertions)]
        {
            let old_path = self.paths[idx].clone();
            self.set_path(idx, new_path.to_vec());
            let actual = self.total_links;
            self.set_path(idx, old_path);
            debug_assert_eq!(
                probed, actual,
                "probe_total_links diverged from full recompute"
            );
        }
        probed
    }

    /// The exact [`Partitioning::score`] the partitioning would have after
    /// rerouting flow `idx` onto `new_path`, assembled as committed score
    /// plus per-touched-pipe deltas (links, width excess, switch degree
    /// excess, pipe and switch liveness) — O(footprint), no committed
    /// state changes. In debug builds the result is checked against a real
    /// apply-score-revert (the full `C ∩ R` recompute demoted to oracle).
    pub(crate) fn probe_score(
        &mut self,
        idx: usize,
        new_path: &[usize],
        config: &SynthesisConfig,
    ) -> (usize, usize) {
        let (base_excess, base_area) = self.score(config);
        self.collect_probe_toggles(idx, new_path);
        let toggles = std::mem::take(&mut self.probe_toggles);
        let mut switches = std::mem::take(&mut self.probe_switches);
        switches.clear();
        let max_degree = config.max_degree() as isize;
        let width_cap = config.max_pipe_width();
        let mut d_links_total = 0isize;
        let mut d_excess = 0isize;
        let mut i = 0;
        while i < toggles.len() {
            let slot = toggles[i] / 2;
            let flip_fwd = toggles[i].is_multiple_of(2);
            let flip_both = flip_fwd && i + 1 < toggles.len() && toggles[i + 1] == slot * 2 + 1;
            let was_nonempty = !self.pipe_slots[slot].is_empty();
            let (new_fwd, fwd_empty) = if flip_fwd {
                self.flipped_dir_links(slot, false, idx)
            } else {
                let st = &self.pipe_slots[slot];
                (st.fwd_links, st.fwd_n == 0)
            };
            let (new_bwd, bwd_empty) = if !flip_fwd || flip_both {
                self.flipped_dir_links(slot, true, idx)
            } else {
                let st = &self.pipe_slots[slot];
                (st.bwd_links, st.bwd_n == 0)
            };
            let old_links = self.pipe_slots[slot].links;
            let new_links = new_fwd.max(new_bwd);
            let d_links = new_links as isize - old_links as isize;
            d_links_total += d_links;
            if let Some(w) = width_cap {
                d_excess +=
                    new_links.saturating_sub(w) as isize - old_links.saturating_sub(w) as isize;
            }
            let now_nonempty = !(fwd_empty && bwd_empty);
            let d_pipes = match (was_nonempty, now_nonempty) {
                (false, true) => 1isize,
                (true, false) => -1,
                _ => 0,
            };
            let key = self.pipe_slots[slot].key;
            for s in [key.lo, key.hi] {
                if let Some(entry) = switches.iter_mut().find(|e| e.0 == s) {
                    entry.1 += d_links;
                    entry.2 += d_pipes;
                } else {
                    switches.push((s, d_links, d_pipes));
                }
            }
            i += if flip_both { 2 } else { 1 };
        }
        let mut d_live = 0isize;
        for &(s, d_links, d_pipes) in &switches {
            let deg_old = (self.members[s].len() + self.incident_links[s]) as isize;
            let deg_new = deg_old + d_links;
            d_excess += (deg_new - max_degree).max(0) - (deg_old - max_degree).max(0);
            let now_live =
                !self.members[s].is_empty() || self.incident_pipes[s] as isize + d_pipes > 0;
            d_live += isize::from(now_live) - isize::from(self.switch_live[s]);
        }
        self.probe_toggles = toggles;
        self.probe_switches = switches;
        let probed = (
            (base_excess as isize + d_excess) as usize,
            (base_area as isize + d_links_total + d_live) as usize,
        );
        #[cfg(debug_assertions)]
        {
            let old_path = self.paths[idx].clone();
            self.set_path(idx, new_path.to_vec());
            let actual = self.score(config);
            self.set_path(idx, old_path);
            debug_assert_eq!(probed, actual, "probe_score diverged from full recompute");
        }
        probed
    }

    /// The endpoint home switches of flow `idx` — its direct path is
    /// `[hs]` (same switch) or `[hs, hd]`.
    pub(crate) fn direct_endpoints(&self, idx: usize) -> (usize, usize) {
        let flow = self.pattern.flows()[idx];
        (self.home[flow.src.index()], self.home[flow.dst.index()])
    }

    /// The direct path for flow `idx` under current homes.
    pub(crate) fn direct_path(&self, idx: usize) -> Vec<usize> {
        let (hs, hd) = self.direct_endpoints(idx);
        if hs == hd {
            vec![hs]
        } else {
            vec![hs, hd]
        }
    }

    /// Index of `flow` in the pattern's flow list.
    pub(crate) fn flow_idx(&self, flow: Flow) -> usize {
        self.interner.id(flow).expect("flow belongs to the pattern")
    }

    /// The switch path of the flow at index `idx`.
    pub(crate) fn path_of_idx(&self, idx: usize) -> &[usize] {
        &self.paths[idx]
    }

    /// All flow indices with `proc` as an endpoint (precomputed,
    /// ascending).
    pub(crate) fn flows_of_proc(&self, proc: ProcId) -> &[usize] {
        &self.proc_flows[proc.index()]
    }

    /// Moves `proc` to switch `to`, resetting its flows to direct paths
    /// (the paper evaluates and commits moves under direct routing). All
    /// of the processor's flows are re-pathed in one delta batch, so each
    /// pipe they touch is recolored once.
    pub(crate) fn move_proc(&mut self, proc: ProcId, to: usize) {
        let from = self.home[proc.index()];
        if from == to {
            return;
        }
        self.members[from].retain(|&p| p != proc);
        let pos = self.members[to].partition_point(|&p| p < proc);
        self.members[to].insert(pos, proc);
        self.home[proc.index()] = to;
        self.refresh_switch_live(from);
        self.refresh_switch_live(to);
        let changes: Vec<(usize, Vec<usize>)> = self.proc_flows[proc.index()]
            .iter()
            .map(|&idx| (idx, self.direct_path(idx)))
            .collect();
        self.apply_path_changes(changes);
    }

    /// Adds an empty switch (growing the incident caches with it) and
    /// returns its index.
    pub(crate) fn add_switch(&mut self) -> usize {
        self.members.push(Vec::new());
        self.incident_links.push(0);
        self.incident_pipes.push(0);
        self.switch_live.push(false);
        self.score_memo.set(None);
        // The dense pipe-lookup stride changed; re-project every known
        // slot into the wider matrix (rare: once per split).
        let n = self.members.len();
        self.pipe_stride = n;
        self.pipe_lookup.clear();
        self.pipe_lookup.resize(n * n, u32::MAX);
        for (slot, st) in self.pipe_slots.iter().enumerate() {
            self.pipe_lookup[st.key.lo * n + st.key.hi] = slot as u32;
        }
        n - 1
    }

    /// Splits switch `si` (step 5): creates a new switch, moves half of
    /// `si`'s processors to it (chosen uniformly at random), and resets the
    /// affected flows to direct paths. Returns the new switch's index.
    pub(crate) fn split(&mut self, si: usize, rng: &mut Rng) -> usize {
        let sj = self.add_switch();
        let mut movers = self.members[si].clone();
        rng.shuffle(&mut movers);
        movers.truncate(self.members[si].len() / 2);
        for proc in movers {
            self.move_proc(proc, sj);
        }
        sj
    }

    /// From-scratch link estimate of one direction (no caches) — the
    /// reference the consistency oracle compares incremental state against.
    #[cfg(test)]
    fn estimate_dir_uncached(&self, set: &FlowSet) -> usize {
        match self.strategy {
            ColoringStrategy::Fast => fast_color_directed_masks(&self.clique_masks, set),
            ColoringStrategy::Exact => {
                if set.is_empty() {
                    0
                } else {
                    let g = ConflictGraph::from_flows(
                        self.interner.flows_of(set).collect(),
                        self.pattern.contention(),
                    );
                    exact_chromatic(&g).n_colors()
                }
            }
        }
    }

    /// Debug-only consistency check: pipe sets match paths, footprints
    /// match crossings, totals match from-scratch estimates, liveness
    /// caches match scans.
    #[cfg(test)]
    pub(crate) fn assert_consistent(&self) {
        let universe = self.paths.len();
        let mut expect: BTreeMap<PipeKey, (FlowSet, FlowSet)> = BTreeMap::new();
        for (idx, path) in self.paths.iter().enumerate() {
            let flow = self.pattern.flows()[idx];
            assert_eq!(path[0], self.home[flow.src.index()], "path start mismatch");
            assert_eq!(
                *path.last().unwrap(),
                self.home[flow.dst.index()],
                "path end mismatch"
            );
            for w in path.windows(2) {
                let key = PipeKey::new(w[0], w[1]);
                let e = expect
                    .entry(key)
                    .or_insert_with(|| (FlowSet::new(universe), FlowSet::new(universe)));
                if key.forward_from(w[0]) {
                    e.0.insert(idx);
                } else {
                    e.1.insert(idx);
                }
            }
        }
        assert_eq!(self.live_pipes.len(), expect.len(), "live pipe sets differ");
        let mut total = 0;
        for (key, (fwd, bwd)) in &expect {
            let slot = *self
                .live_pipes
                .get(key)
                .unwrap_or_else(|| panic!("pipe {key} missing from live view"));
            let st = &self.pipe_slots[slot];
            assert_eq!(st.key, *key, "slot key of {key}");
            assert_eq!(&st.forward, fwd, "forward set of {key}");
            assert_eq!(&st.backward, bwd, "backward set of {key}");
            assert_eq!(st.fwd_n, fwd.len(), "forward count of {key}");
            assert_eq!(st.bwd_n, bwd.len(), "backward count of {key}");
            assert_eq!(
                st.fwd_links,
                self.estimate_dir_uncached(&st.forward),
                "fwd links of {key}"
            );
            assert_eq!(
                st.bwd_links,
                self.estimate_dir_uncached(&st.backward),
                "bwd links of {key}"
            );
            assert_eq!(st.links, st.fwd_links.max(st.bwd_links), "links of {key}");
            total += st.links;
        }
        for (slot, st) in self.pipe_slots.iter().enumerate() {
            if self.live_pipes.get(&st.key) != Some(&slot) {
                assert!(
                    st.is_empty() && st.links == 0,
                    "drained slot {slot} not zeroed"
                );
            }
            assert_eq!(
                self.pipe_ids.id(pipe_key_code(st.key)),
                Some(slot),
                "slot {slot} not mirrored in the interner"
            );
            assert_eq!(
                self.pipe_lookup[st.key.lo * self.pipe_stride + st.key.hi],
                slot as u32,
                "slot {slot} not mirrored in the dense lookup"
            );
        }
        assert_eq!(self.pipe_stride, self.members.len(), "stale pipe stride");
        assert_eq!(
            self.pipe_lookup.iter().filter(|&&c| c != u32::MAX).count(),
            self.pipe_slots.len(),
            "dense lookup has stray entries"
        );
        assert_eq!(self.total_links, total, "total_links out of sync");
        for (idx, path) in self.paths.iter().enumerate() {
            let mut fp = RouteSet::new();
            for w in path.windows(2) {
                let key = PipeKey::new(w[0], w[1]);
                let slot = self
                    .pipe_ids
                    .id(pipe_key_code(key))
                    .expect("crossed pipe is interned");
                fp.insert(slot * 2 + usize::from(!key.forward_from(w[0])));
            }
            assert_eq!(self.footprints[idx], fp, "footprint of flow {idx}");
        }
        for s in 0..self.members.len() {
            let links: usize = self
                .live_pipes
                .iter()
                .filter(|(k, _)| k.touches(s))
                .map(|(_, &slot)| self.pipe_slots[slot].links)
                .sum();
            let count = self.live_pipes.keys().filter(|k| k.touches(s)).count();
            assert_eq!(self.incident_links[s], links, "incident_links of {s}");
            assert_eq!(self.incident_pipes[s], count, "incident_pipes of {s}");
            assert_eq!(
                self.switch_live[s],
                !self.members[s].is_empty() || count > 0,
                "switch_live of {s}"
            );
        }
        assert_eq!(
            self.live_switch_count,
            self.switch_live.iter().filter(|&&b| b).count(),
            "live_switch_count out of sync"
        );
    }
}

/// The Main Partitioning Algorithm (paper Appendix): recursively bisects
/// switches until every switch meets the design constraints, improving each
/// split with processor moves and `Best_Route`, then repairing remaining
/// violations by rerouting and refining the feasible result.
pub(crate) fn run(p: &mut Partitioning, config: &SynthesisConfig) {
    p.set_strategy(config.coloring());
    let mut rng = Rng::seed_from_u64(config.seed());
    let mut acceptor = Acceptor::new(config.acceptance());

    // Outer cycle: splitting, route repair, and refinement feed each
    // other (repair can make an unsplittable violation feasible; refine
    // can merge once feasible; merging may expose a better split).
    let mut last_score = None;
    for _outer in 0..4 {
        split_loop(p, config, &mut rng, &mut acceptor);
        if !p.violating(config).is_empty() && config.indirect_routing() {
            route_opt::repair(p, config);
        }
        refine(p, config);
        let score = p.score(config);
        if score.0 == 0 || last_score == Some(score) {
            break; // feasible, or a fixpoint nothing further will move
        }
        last_score = Some(score);
    }
}

/// Steps 2–9 of the paper's algorithm: bisect violating switches until all
/// constraints hold or nothing remains splittable.
fn split_loop(
    p: &mut Partitioning,
    config: &SynthesisConfig,
    rng: &mut Rng,
    acceptor: &mut Acceptor,
) {
    for _round in 0..config.max_rounds() {
        p.stats.rounds += 1;
        p.stats.cost_history.push(p.total_links());

        // Step 4: a random constraint-violating switch that can be split.
        let splittable: Vec<usize> = p
            .violating(config)
            .into_iter()
            .filter(|&s| p.members(s).len() >= 2)
            .collect();
        let Some(&si) = rng.choose(&splittable) else {
            break; // all constraints met, or nothing splittable remains
        };

        // Step 5: split.
        let sj = p.split(si, rng);
        p.stats.splits += 1;

        // Steps 6-9: alternate route optimization and processor moves.
        for _ in 0..config.max_move_rounds() {
            if config.indirect_routing() {
                route_opt::best_route(p, si, sj);
            }
            let before = p.total_links();
            let Some(candidate) = moves::best_move(p, si, sj, config) else {
                break;
            };
            let accepted = candidate.cost() < before
                || matches!(config.acceptance(), crate::AcceptanceRule::Anneal { .. })
                    && acceptor.accepts(before, candidate.cost(), rng);
            if !accepted {
                break;
            }
            candidate.commit(p);
            p.stats.moves_accepted += 1;
        }
        let _ = rng.next_u64(); // decorrelate successive rounds
    }
}

/// Post-constraint refinement: once every switch satisfies the design
/// constraints, sweep over switch pairs running the move/swap descent with
/// merging allowed, accepting only configurations that keep the
/// constraints satisfied and strictly reduce `links + live switches`
/// (both chip-area units). This is an extension over the published
/// algorithm (which stops at the first feasible configuration); DESIGN.md
/// §5 tracks it as an ablation and the `ablation` binary quantifies it.
fn refine(p: &mut Partitioning, config: &SynthesisConfig) {
    if !p.violating(config).is_empty() {
        // Merging is only meaningful between feasible configurations: from
        // a violating state, total-excess descent degenerates into a few
        // huge switches (fewer pipes, hopeless degrees). Leave violating
        // states to the split loop and route repair.
        return;
    }
    let n = p.n_switches();
    for _pass in 0..4 {
        let mut improved = false;
        for si in 0..n {
            for sj in si + 1..n {
                if p.members(si).is_empty() && p.members(sj).is_empty() {
                    continue;
                }
                // Descend between this pair while profitable. Commit
                // reproduces the trial state exactly, so the score
                // computed inside refine_move holds afterwards; starting
                // from excess 0, lexicographic descent keeps excess 0.
                for _ in 0..config.max_move_rounds() {
                    let current = p.score(config);
                    match moves::refine_move(p, si, sj, config) {
                        Some((cand, score)) if score < current => {
                            cand.commit(p);
                            p.stats.moves_accepted += 1;
                            improved = true;
                        }
                        _ => break,
                    }
                }
            }
        }
        if config.indirect_routing() {
            route_opt::repair(p, config);
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::{Phase, PhaseSchedule};

    fn pattern4() -> AppPattern {
        let mut s = PhaseSchedule::new(4);
        s.push(Phase::from_flows([(0usize, 1usize), (2, 3)]).unwrap())
            .unwrap();
        s.push(Phase::from_flows([(0usize, 2usize), (1, 3)]).unwrap())
            .unwrap();
        AppPattern::from_schedule(&s)
    }

    #[test]
    fn megaswitch_has_no_pipes() {
        let p = Partitioning::megaswitch(&pattern4()).unwrap();
        assert_eq!(p.n_switches(), 1);
        assert_eq!(p.total_links(), 0);
        assert_eq!(p.members(0).len(), 4);
        assert_eq!(p.live_switches(), 1);
        p.assert_consistent();
    }

    #[test]
    fn empty_pattern_is_rejected() {
        let empty = AppPattern::from_parts(
            0,
            [],
            nocsyn_model::ContentionSet::new(),
            nocsyn_model::CliqueSet::new(),
        );
        assert!(matches!(
            Partitioning::megaswitch(&empty),
            Err(SynthError::EmptyPattern)
        ));
    }

    #[test]
    fn split_moves_half_and_updates_pipes() {
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let sj = p.split(0, &mut rng);
        assert_eq!(sj, 1);
        assert_eq!(p.members(0).len() + p.members(1).len(), 4);
        assert_eq!(p.members(1).len(), 2);
        p.assert_consistent();
        // With procs split 2/2, at least one app flow crosses the pipe.
        assert!(p.total_links() >= 1);
    }

    #[test]
    fn move_proc_resets_paths_to_direct() {
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.split(0, &mut rng);
        let proc = p.members(0)[0];
        p.move_proc(proc, 1);
        p.assert_consistent();
        for &idx in p.flows_of_proc(proc) {
            assert_eq!(p.paths[idx], p.direct_path(idx));
        }
    }

    #[test]
    fn set_path_with_via_updates_three_pipes() {
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        let mut rng = Rng::seed_from_u64(2);
        p.split(0, &mut rng);
        // Force a third switch by moving one proc.
        p.add_switch();
        let proc = p.members(0)[0];
        p.move_proc(proc, 2);
        p.assert_consistent();

        // Find a flow between switch 2 and another switch and detour it.
        let flow_idx = p.flows_of_proc(proc)[0];
        let direct = p.paths[flow_idx].clone();
        if direct.len() == 2 {
            let (a, b) = (direct[0], direct[1]);
            let via = (0..3).find(|&v| v != a && v != b).unwrap();
            p.set_path(flow_idx, vec![a, via, b]);
            p.assert_consistent();
            assert_eq!(p.path(p.pattern.flows()[flow_idx]).unwrap().len(), 3);
            // And back.
            p.set_path(flow_idx, direct);
            p.assert_consistent();
        }
    }

    #[test]
    fn probe_score_matches_apply_for_random_reroutes() {
        // Exercise the probe against apply-and-score over a mix of
        // detours, straightenings and no-op-adjacent shapes. (The probe's
        // own debug oracle re-checks every call too; this keeps the
        // guarantee alive even with debug assertions disabled.)
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        let config = SynthesisConfig::new().with_max_degree(2);
        let mut rng = Rng::seed_from_u64(9);
        p.split(0, &mut rng);
        p.split(0, &mut rng);
        p.add_switch();
        for trial in 0..200 {
            let idx = rng.gen_range(0..p.paths.len());
            let direct = p.direct_path(idx);
            let candidate = if direct.len() == 2 && rng.gen_bool(0.6) {
                let via = rng.gen_range(0..p.n_switches());
                if via == direct[0] || via == direct[1] {
                    direct
                } else {
                    vec![direct[0], via, direct[1]]
                }
            } else {
                direct
            };
            if candidate == p.path_of_idx(idx) {
                continue;
            }
            let probed_links = p.probe_total_links(idx, &candidate);
            let probed_score = p.probe_score(idx, &candidate, &config);
            let original = p.path_of_idx(idx).to_vec();
            p.set_path(idx, candidate.clone());
            assert_eq!(probed_links, p.total_links(), "links, trial {trial}");
            assert_eq!(probed_score, p.score(&config), "score, trial {trial}");
            // Commit some candidates, revert others, to vary the base.
            if rng.gen_bool(0.5) {
                p.set_path(idx, original);
            }
            p.assert_consistent();
        }
    }

    #[test]
    fn degree_counts_members_and_incident_links() {
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        assert_eq!(p.degree(0), 4);
        let mut rng = Rng::seed_from_u64(3);
        p.split(0, &mut rng);
        let link_sum: usize = p.pipes().map(|(_, l)| l).sum();
        assert_eq!(p.degree(0) + p.degree(1), 4 + 2 * link_sum);
    }

    #[test]
    fn run_reaches_constraints_on_small_pattern() {
        let pattern = pattern4();
        let mut p = Partitioning::megaswitch(&pattern).unwrap();
        let config = SynthesisConfig::new().with_max_degree(3).with_seed(11);
        run(&mut p, &config);
        assert!(
            p.violating(&config).is_empty(),
            "degrees: {:?}",
            (0..p.n_switches()).map(|s| p.degree(s)).collect::<Vec<_>>()
        );
        p.assert_consistent();
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let pattern = pattern4();
        let config = SynthesisConfig::new().with_max_degree(3).with_seed(5);
        let mut a = Partitioning::megaswitch(&pattern).unwrap();
        let mut b = Partitioning::megaswitch(&pattern).unwrap();
        run(&mut a, &config);
        run(&mut b, &config);
        assert_eq!(a.home, b.home);
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.total_links(), b.total_links());
    }

    #[test]
    fn impossible_constraint_terminates() {
        let pattern = pattern4();
        let mut p = Partitioning::megaswitch(&pattern).unwrap();
        // Degree 0 can never be satisfied; the run must still terminate.
        let config = SynthesisConfig::new()
            .with_max_degree(0)
            .with_max_rounds(50)
            .with_seed(1);
        run(&mut p, &config);
        assert!(!p.violating(&config).is_empty());
        assert!(p.stats.rounds <= 50);
    }

    #[test]
    fn pipe_key_invariants() {
        let k = PipeKey::new(5, 2);
        assert_eq!((k.lo(), k.hi()), (2, 5));
        assert!(k.forward_from(2));
        assert!(!k.forward_from(5));
        assert!(k.touches(5) && k.touches(2) && !k.touches(3));
        assert_eq!(k.to_string(), "P(2,5)");
    }

    #[test]
    #[should_panic(expected = "distinct switches")]
    fn pipe_key_rejects_self() {
        let _ = PipeKey::new(3, 3);
    }
}
