//! Partitioning state and the Main Partitioning Algorithm (paper Appendix).
//!
//! Synthesis works on an abstract *partitioning*: an assignment of
//! processors to switches, plus a per-flow path through switches. Every
//! unordered switch pair with traffic between them is a *pipe*; the number
//! of links a pipe needs is estimated by coloring (fast or exact) of the
//! communications crossing it, per direction. The concrete [`Network`]
//! (with real parallel links) is only materialized at finalization.
//!
//! [`Network`]: nocsyn_topo::Network

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use nocsyn_coloring::{exact_chromatic, fast_color_directed_masks, ConflictGraph};
use nocsyn_model::{Flow, FlowInterner, FlowSet, ProcId};
use nocsyn_rng::Rng;

use crate::anneal::Acceptor;
use crate::{moves, route_opt, AppPattern, ColoringStrategy, SynthError, SynthesisConfig};

/// An unordered pair of switch indices naming a pipe; `lo < hi`.
///
/// The *forward* direction of a pipe runs from `lo` to `hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PipeKey {
    lo: usize,
    hi: usize,
}

impl PipeKey {
    /// Creates the pipe key for switches `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`; pipes join distinct switches.
    pub fn new(a: usize, b: usize) -> Self {
        assert_ne!(a, b, "a pipe joins two distinct switches");
        PipeKey {
            lo: a.min(b),
            hi: a.max(b),
        }
    }

    /// The smaller switch index.
    pub fn lo(&self) -> usize {
        self.lo
    }

    /// The larger switch index.
    pub fn hi(&self) -> usize {
        self.hi
    }

    /// Whether traversal from `a` to `b` is this pipe's forward direction.
    pub fn forward_from(&self, a: usize) -> bool {
        a == self.lo
    }

    /// Whether the pipe touches switch `s`.
    pub fn touches(&self, s: usize) -> bool {
        self.lo == s || self.hi == s
    }
}

impl fmt::Display for PipeKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P({},{})", self.lo, self.hi)
    }
}

/// The communications crossing one pipe (as [`FlowSet`] bitmasks over the
/// pattern's interned flow ids), with its current link estimate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PipeState {
    pub(crate) forward: FlowSet,
    pub(crate) backward: FlowSet,
    pub(crate) links: usize,
}

impl PipeState {
    fn new(universe: usize) -> Self {
        PipeState {
            forward: FlowSet::new(universe),
            backward: FlowSet::new(universe),
            links: 0,
        }
    }

    fn is_empty(&self) -> bool {
        self.forward.is_empty() && self.backward.is_empty()
    }
}

/// Counters describing a synthesis run (embedded into the final
/// [`SynthesisReport`](crate::SynthesisReport)).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct SearchStats {
    pub(crate) rounds: usize,
    pub(crate) splits: usize,
    pub(crate) moves_tried: usize,
    pub(crate) moves_accepted: usize,
    pub(crate) reroutes_tried: usize,
    pub(crate) reroutes_accepted: usize,
    pub(crate) cost_history: Vec<usize>,
}

/// The evolving partition of processors into switches, with per-flow switch
/// paths and per-pipe link estimates.
#[derive(Debug, Clone)]
pub struct Partitioning {
    pattern: AppPattern,
    strategy: ColoringStrategy,
    /// Processor → switch index.
    home: Vec<usize>,
    /// Switch index → member processors (sorted).
    members: Vec<Vec<ProcId>>,
    /// Flow index (into `pattern.flows()`) → switch path. The path starts
    /// at the source's home switch and ends at the destination's; adjacent
    /// entries are distinct and the path is simple.
    paths: Vec<Vec<usize>>,
    /// Interner over `pattern.flows()`: a flow's id equals its index in
    /// the (sorted, deduplicated) flow list, so paths, crossing bitsets
    /// and the pattern share one id space.
    interner: FlowInterner,
    /// `pattern.cliques()` compiled to bitmasks over `interner`, once per
    /// partitioning — the `Fast_Color` hot path is AND + popcount against
    /// these.
    clique_masks: Vec<FlowSet>,
    /// Processor index → flow indices with that processor as an endpoint
    /// (ascending), precomputed so moves don't rescan the flow list.
    proc_flows: Vec<Vec<usize>>,
    pipes: BTreeMap<PipeKey, PipeState>,
    /// Switch index → sum of link estimates of incident pipes, maintained
    /// by [`Partitioning::recompute_pipe`] so [`Partitioning::degree`] is
    /// O(1) instead of a scan over the pipe map.
    incident_links: Vec<usize>,
    /// Switch index → number of live incident pipes (for
    /// [`Partitioning::live_switches`] without a pipe-map scan).
    incident_pipes: Vec<usize>,
    /// Reused buffer of pipes touched by the current path-change batch.
    touched_scratch: Vec<PipeKey>,
    /// Memoized exact chromatic numbers per crossing set. χ is a pure
    /// function of the set (the contention relation is fixed per
    /// pattern), so caching changes no computed value — it only spares
    /// the branch-and-bound when the search revisits a set, which the
    /// annealed reroute loop does constantly.
    chi_cache: std::collections::HashMap<FlowSet, usize>,
    total_links: usize,
    pub(crate) stats: SearchStats,
}

/// Flow indices incident to each processor, in ascending index order.
fn proc_flow_table(pattern: &AppPattern) -> Vec<Vec<usize>> {
    let mut table = vec![Vec::new(); pattern.n_procs()];
    for (i, f) in pattern.flows().iter().enumerate() {
        table[f.src.index()].push(i);
        if f.dst != f.src {
            table[f.dst.index()].push(i);
        }
    }
    table
}

impl Partitioning {
    /// Builds the initial single-"mega-switch" partitioning (step 1 of the
    /// main algorithm).
    ///
    /// # Errors
    ///
    /// [`SynthError::EmptyPattern`] if the pattern has no processors.
    pub fn megaswitch(pattern: &AppPattern) -> Result<Self, SynthError> {
        if pattern.n_procs() == 0 {
            return Err(SynthError::EmptyPattern);
        }
        let n = pattern.n_procs();
        let interner = FlowInterner::from_sorted_flows(pattern.flows().to_vec());
        let clique_masks = pattern.cliques().compile_masks(&interner);
        let proc_flows = proc_flow_table(pattern);
        let paths = vec![vec![0]; pattern.flows().len()];
        Ok(Partitioning {
            pattern: pattern.clone(),
            strategy: ColoringStrategy::Fast,
            home: vec![0; n],
            members: vec![(0..n).map(ProcId).collect()],
            paths,
            interner,
            clique_masks,
            proc_flows,
            pipes: BTreeMap::new(),
            incident_links: vec![0],
            incident_pipes: vec![0],
            touched_scratch: Vec::new(),
            chi_cache: std::collections::HashMap::new(),
            total_links: 0,
            stats: SearchStats::default(),
        })
    }

    /// Builds a partitioning from an explicit processor-to-switch
    /// assignment with direct routing — the warm start used by
    /// [`synthesize_incremental`](crate::synthesize_incremental).
    ///
    /// # Errors
    ///
    /// [`SynthError::EmptyPattern`] if the pattern has no processors or
    /// `homes` does not cover them.
    pub fn from_assignment(pattern: &AppPattern, homes: &[usize]) -> Result<Self, SynthError> {
        if pattern.n_procs() == 0 || homes.len() != pattern.n_procs() {
            return Err(SynthError::EmptyPattern);
        }
        let n_switches = homes.iter().copied().max().unwrap_or(0) + 1;
        let mut members: Vec<Vec<ProcId>> = vec![Vec::new(); n_switches];
        for (p, &h) in homes.iter().enumerate() {
            members[h].push(ProcId(p));
        }
        let interner = FlowInterner::from_sorted_flows(pattern.flows().to_vec());
        let mut partitioning = Partitioning {
            clique_masks: pattern.cliques().compile_masks(&interner),
            interner,
            proc_flows: proc_flow_table(pattern),
            paths: vec![Vec::new(); pattern.flows().len()],
            pattern: pattern.clone(),
            strategy: ColoringStrategy::Fast,
            home: homes.to_vec(),
            incident_links: vec![0; n_switches],
            incident_pipes: vec![0; n_switches],
            touched_scratch: Vec::new(),
            chi_cache: std::collections::HashMap::new(),
            members,
            pipes: BTreeMap::new(),
            total_links: 0,
            stats: SearchStats::default(),
        };
        for idx in 0..partitioning.paths.len() {
            let direct = partitioning.direct_path(idx);
            partitioning.set_path(idx, direct);
        }
        Ok(partitioning)
    }

    /// The application pattern being synthesized for.
    pub fn pattern(&self) -> &AppPattern {
        &self.pattern
    }

    /// Number of switches created so far.
    pub fn n_switches(&self) -> usize {
        self.members.len()
    }

    /// The home switch of a processor.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    pub fn home(&self, proc: ProcId) -> usize {
        self.home[proc.index()]
    }

    /// The processors attached to switch `s` (sorted).
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn members(&self, s: usize) -> &[ProcId] {
        &self.members[s]
    }

    /// The switch path currently assigned to `flow`, if the application
    /// uses that flow.
    pub fn path(&self, flow: Flow) -> Option<&[usize]> {
        self.interner.id(flow).map(|i| self.paths[i].as_slice())
    }

    /// The interner mapping this pattern's flows to the contiguous ids
    /// used by [`Partitioning::pipe_flows`] bitsets (a flow's id is its
    /// index in [`AppPattern::flows`]).
    pub fn interner(&self) -> &FlowInterner {
        &self.interner
    }

    /// Sum of link estimates over all pipes — the objective the search
    /// minimizes.
    pub fn total_links(&self) -> usize {
        self.total_links
    }

    /// Iterates over `(pipe, link estimate)` for every non-empty pipe.
    pub fn pipes(&self) -> impl Iterator<Item = (PipeKey, usize)> + '_ {
        self.pipes.iter().map(|(k, s)| (*k, s.links))
    }

    /// The flows crossing `pipe` in its forward and backward directions,
    /// as bitsets over [`Partitioning::interner`] ids (iterating a set
    /// yields ids in ascending order — lexicographic flow order).
    pub fn pipe_flows(&self, pipe: PipeKey) -> Option<(&FlowSet, &FlowSet)> {
        self.pipes.get(&pipe).map(|s| (&s.forward, &s.backward))
    }

    /// Estimated node degree of switch `s`: attached processors plus the
    /// link estimates of every incident pipe (cached incrementally; O(1)).
    pub fn degree(&self, s: usize) -> usize {
        self.members[s].len() + self.incident_links[s]
    }

    /// Switches violating any design constraint: degree over the maximum,
    /// or an incident pipe wider than the configured pipe-width bound.
    pub fn violating(&self, config: &SynthesisConfig) -> Vec<usize> {
        let wide: BTreeSet<usize> = match config.max_pipe_width() {
            None => BTreeSet::new(),
            Some(w) => self
                .pipes
                .iter()
                .filter(|(_, st)| st.links > w)
                .flat_map(|(k, _)| [k.lo, k.hi])
                .collect(),
        };
        (0..self.members.len())
            .filter(|&s| self.degree(s) > config.max_degree() || wide.contains(&s))
            .collect()
    }

    /// Switches that would survive materialization: those hosting
    /// processors or carrying traffic (dead switches are dropped).
    pub fn live_switches(&self) -> usize {
        (0..self.members.len())
            .filter(|&s| !self.members[s].is_empty() || self.incident_pipes[s] > 0)
            .count()
    }

    /// Lexicographic optimization score: total degree excess over the
    /// constraint first (0 when all constraints hold), then chip area
    /// (links + live switches). Strictly decreasing accepts make every
    /// repair/refinement loop terminate.
    pub fn score(&self, config: &SynthesisConfig) -> (usize, usize) {
        let degree_excess: usize = (0..self.members.len())
            .map(|s| self.degree(s).saturating_sub(config.max_degree()))
            .sum();
        let width_excess: usize = match config.max_pipe_width() {
            None => 0,
            Some(w) => self
                .pipes
                .values()
                .map(|st| st.links.saturating_sub(w))
                .sum(),
        };
        (
            degree_excess + width_excess,
            self.total_links + self.live_switches(),
        )
    }

    // ------------------------------------------------------------------
    // Mutators (crate-internal; the search drives these).
    // ------------------------------------------------------------------

    pub(crate) fn set_strategy(&mut self, strategy: ColoringStrategy) {
        if self.strategy != strategy {
            self.strategy = strategy;
            let keys: Vec<PipeKey> = self.pipes.keys().copied().collect();
            for k in keys {
                self.recompute_pipe(k);
            }
        }
    }

    /// Computes the link requirement of one pipe under the active
    /// strategy.
    fn pipe_link_estimate(&self, state: &PipeState) -> usize {
        match self.strategy {
            ColoringStrategy::Fast => {
                let f = fast_color_directed_masks(&self.clique_masks, &state.forward);
                let b = fast_color_directed_masks(&self.clique_masks, &state.backward);
                f.max(b)
            }
            ColoringStrategy::Exact => {
                let chi = |set: &FlowSet| {
                    if set.is_empty() {
                        0
                    } else {
                        let g = ConflictGraph::from_flows(
                            self.interner.flows_of(set).collect(),
                            self.pattern.contention(),
                        );
                        exact_chromatic(&g).n_colors()
                    }
                };
                chi(&state.forward).max(chi(&state.backward))
            }
        }
    }

    /// Exact chromatic number of a crossing set, memoized. The memo stores
    /// exactly what the branch-and-bound would return, so repeated sets —
    /// the common case while the route anneal toggles the same few flows —
    /// yield identical integers without re-solving.
    fn exact_chi_cached(&mut self, set: &FlowSet) -> usize {
        if set.is_empty() {
            return 0;
        }
        if let Some(&chi) = self.chi_cache.get(set) {
            return chi;
        }
        let g = ConflictGraph::from_flows(
            self.interner.flows_of(set).collect(),
            self.pattern.contention(),
        );
        let chi = exact_chromatic(&g).n_colors();
        self.chi_cache.insert(set.clone(), chi);
        chi
    }

    fn recompute_pipe(&mut self, key: PipeKey) {
        let Some(state) = self.pipes.get(&key) else {
            return;
        };
        let new_links = match self.strategy {
            ColoringStrategy::Fast => self.pipe_link_estimate(state),
            ColoringStrategy::Exact => {
                let (fwd, bwd) = (state.forward.clone(), state.backward.clone());
                self.exact_chi_cached(&fwd).max(self.exact_chi_cached(&bwd))
            }
        };
        let state = self.pipes.get_mut(&key).expect("checked above");
        let old_links = state.links;
        state.links = new_links;
        let empty = state.is_empty();
        self.total_links = self.total_links - old_links + new_links;
        for s in [key.lo, key.hi] {
            // Add before subtracting: the sum never transiently underflows.
            self.incident_links[s] = self.incident_links[s] + new_links - old_links;
        }
        if empty {
            debug_assert_eq!(new_links, 0);
            self.pipes.remove(&key);
            self.incident_pipes[key.lo] -= 1;
            self.incident_pipes[key.hi] -= 1;
        }
    }

    /// Applies a batch of path changes (flow index → new path)
    /// incrementally: the old and new crossings of every changed flow are
    /// XOR-toggled into the per-pipe bitsets in place (a flow crossing the
    /// same pipe and direction both before and after cancels out), and
    /// each touched pipe's link estimate is recomputed exactly once —
    /// however many flows of the batch cross it. Allocation-free apart
    /// from a reused touched-keys scratch buffer.
    fn apply_path_changes<I>(&mut self, changes: I)
    where
        I: IntoIterator<Item = (usize, Vec<usize>)>,
    {
        let universe = self.paths.len();
        let mut touched = std::mem::take(&mut self.touched_scratch);
        touched.clear();
        for (idx, new_path) in changes {
            debug_assert!(
                new_path.windows(2).all(|w| w[0] != w[1]),
                "path repeats a switch"
            );
            let old_path = std::mem::replace(&mut self.paths[idx], new_path);
            for path in [old_path.as_slice(), self.paths[idx].as_slice()] {
                for w in path.windows(2) {
                    let key = PipeKey::new(w[0], w[1]);
                    let mut created = false;
                    let state = self.pipes.entry(key).or_insert_with(|| {
                        created = true;
                        PipeState::new(universe)
                    });
                    if key.forward_from(w[0]) {
                        state.forward.toggle(idx);
                    } else {
                        state.backward.toggle(idx);
                    }
                    if created {
                        self.incident_pipes[key.lo] += 1;
                        self.incident_pipes[key.hi] += 1;
                    }
                    touched.push(key);
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();
        for &key in &touched {
            self.recompute_pipe(key);
        }
        self.touched_scratch = touched;
    }

    /// Installs `path` for flow `idx`, updating pipe crossings and link
    /// estimates.
    pub(crate) fn set_path(&mut self, idx: usize, path: Vec<usize>) {
        self.apply_path_changes([(idx, path)]);
    }

    /// The direct path for flow `idx` under current homes.
    pub(crate) fn direct_path(&self, idx: usize) -> Vec<usize> {
        let flow = self.pattern.flows()[idx];
        let hs = self.home[flow.src.index()];
        let hd = self.home[flow.dst.index()];
        if hs == hd {
            vec![hs]
        } else {
            vec![hs, hd]
        }
    }

    /// Index of `flow` in the pattern's flow list.
    pub(crate) fn flow_idx(&self, flow: Flow) -> usize {
        self.interner.id(flow).expect("flow belongs to the pattern")
    }

    /// The switch path of the flow at index `idx`.
    pub(crate) fn path_of_idx(&self, idx: usize) -> &[usize] {
        &self.paths[idx]
    }

    /// All flow indices with `proc` as an endpoint (precomputed,
    /// ascending).
    pub(crate) fn flows_of_proc(&self, proc: ProcId) -> &[usize] {
        &self.proc_flows[proc.index()]
    }

    /// Moves `proc` to switch `to`, resetting its flows to direct paths
    /// (the paper evaluates and commits moves under direct routing). All
    /// of the processor's flows are re-pathed in one delta batch, so each
    /// pipe they touch is recolored once.
    pub(crate) fn move_proc(&mut self, proc: ProcId, to: usize) {
        let from = self.home[proc.index()];
        if from == to {
            return;
        }
        self.members[from].retain(|&p| p != proc);
        let pos = self.members[to].partition_point(|&p| p < proc);
        self.members[to].insert(pos, proc);
        self.home[proc.index()] = to;
        let changes: Vec<(usize, Vec<usize>)> = self.proc_flows[proc.index()]
            .iter()
            .map(|&idx| (idx, self.direct_path(idx)))
            .collect();
        self.apply_path_changes(changes);
    }

    /// Adds an empty switch (growing the incident caches with it) and
    /// returns its index.
    pub(crate) fn add_switch(&mut self) -> usize {
        self.members.push(Vec::new());
        self.incident_links.push(0);
        self.incident_pipes.push(0);
        self.members.len() - 1
    }

    /// Splits switch `si` (step 5): creates a new switch, moves half of
    /// `si`'s processors to it (chosen uniformly at random), and resets the
    /// affected flows to direct paths. Returns the new switch's index.
    pub(crate) fn split(&mut self, si: usize, rng: &mut Rng) -> usize {
        let sj = self.add_switch();
        let mut movers = self.members[si].clone();
        rng.shuffle(&mut movers);
        movers.truncate(self.members[si].len() / 2);
        for proc in movers {
            self.move_proc(proc, sj);
        }
        sj
    }

    /// Debug-only consistency check: pipe sets match paths, totals match
    /// estimates.
    #[cfg(test)]
    pub(crate) fn assert_consistent(&self) {
        let universe = self.paths.len();
        let mut expect: BTreeMap<PipeKey, PipeState> = BTreeMap::new();
        for (idx, path) in self.paths.iter().enumerate() {
            let flow = self.pattern.flows()[idx];
            assert_eq!(path[0], self.home[flow.src.index()], "path start mismatch");
            assert_eq!(
                *path.last().unwrap(),
                self.home[flow.dst.index()],
                "path end mismatch"
            );
            for w in path.windows(2) {
                let key = PipeKey::new(w[0], w[1]);
                let st = expect
                    .entry(key)
                    .or_insert_with(|| PipeState::new(universe));
                if key.forward_from(w[0]) {
                    st.forward.insert(idx);
                } else {
                    st.backward.insert(idx);
                }
            }
        }
        assert_eq!(self.pipes.len(), expect.len(), "pipe key sets differ");
        let mut total = 0;
        for (key, st) in &expect {
            let actual = &self.pipes[key];
            assert_eq!(actual.forward, st.forward, "forward set of {key}");
            assert_eq!(actual.backward, st.backward, "backward set of {key}");
            assert_eq!(
                actual.links,
                self.pipe_link_estimate(actual),
                "links of {key}"
            );
            total += actual.links;
        }
        assert_eq!(self.total_links, total, "total_links out of sync");
        for s in 0..self.members.len() {
            let links: usize = self
                .pipes
                .iter()
                .filter(|(k, _)| k.touches(s))
                .map(|(_, st)| st.links)
                .sum();
            let count = self.pipes.keys().filter(|k| k.touches(s)).count();
            assert_eq!(self.incident_links[s], links, "incident_links of {s}");
            assert_eq!(self.incident_pipes[s], count, "incident_pipes of {s}");
        }
    }
}

/// The Main Partitioning Algorithm (paper Appendix): recursively bisects
/// switches until every switch meets the design constraints, improving each
/// split with processor moves and `Best_Route`, then repairing remaining
/// violations by rerouting and refining the feasible result.
pub(crate) fn run(p: &mut Partitioning, config: &SynthesisConfig) {
    p.set_strategy(config.coloring());
    let mut rng = Rng::seed_from_u64(config.seed());
    let mut acceptor = Acceptor::new(config.acceptance());

    // Outer cycle: splitting, route repair, and refinement feed each
    // other (repair can make an unsplittable violation feasible; refine
    // can merge once feasible; merging may expose a better split).
    let mut last_score = None;
    for _outer in 0..4 {
        split_loop(p, config, &mut rng, &mut acceptor);
        if !p.violating(config).is_empty() && config.indirect_routing() {
            route_opt::repair(p, config);
        }
        refine(p, config);
        let score = p.score(config);
        if score.0 == 0 || last_score == Some(score) {
            break; // feasible, or a fixpoint nothing further will move
        }
        last_score = Some(score);
    }
}

/// Steps 2–9 of the paper's algorithm: bisect violating switches until all
/// constraints hold or nothing remains splittable.
fn split_loop(
    p: &mut Partitioning,
    config: &SynthesisConfig,
    rng: &mut Rng,
    acceptor: &mut Acceptor,
) {
    for _round in 0..config.max_rounds() {
        p.stats.rounds += 1;
        p.stats.cost_history.push(p.total_links());

        // Step 4: a random constraint-violating switch that can be split.
        let splittable: Vec<usize> = p
            .violating(config)
            .into_iter()
            .filter(|&s| p.members(s).len() >= 2)
            .collect();
        let Some(&si) = rng.choose(&splittable) else {
            break; // all constraints met, or nothing splittable remains
        };

        // Step 5: split.
        let sj = p.split(si, rng);
        p.stats.splits += 1;

        // Steps 6-9: alternate route optimization and processor moves.
        for _ in 0..config.max_move_rounds() {
            if config.indirect_routing() {
                route_opt::best_route(p, si, sj);
            }
            let before = p.total_links();
            let Some(candidate) = moves::best_move(p, si, sj, config) else {
                break;
            };
            let accepted = candidate.cost() < before
                || matches!(config.acceptance(), crate::AcceptanceRule::Anneal { .. })
                    && acceptor.accepts(before, candidate.cost(), rng);
            if !accepted {
                break;
            }
            candidate.commit(p);
            p.stats.moves_accepted += 1;
        }
        let _ = rng.next_u64(); // decorrelate successive rounds
    }
}

/// Post-constraint refinement: once every switch satisfies the design
/// constraints, sweep over switch pairs running the move/swap descent with
/// merging allowed, accepting only configurations that keep the
/// constraints satisfied and strictly reduce `links + live switches`
/// (both chip-area units). This is an extension over the published
/// algorithm (which stops at the first feasible configuration); DESIGN.md
/// §5 tracks it as an ablation and the `ablation` binary quantifies it.
fn refine(p: &mut Partitioning, config: &SynthesisConfig) {
    if !p.violating(config).is_empty() {
        // Merging is only meaningful between feasible configurations: from
        // a violating state, total-excess descent degenerates into a few
        // huge switches (fewer pipes, hopeless degrees). Leave violating
        // states to the split loop and route repair.
        return;
    }
    let n = p.n_switches();
    for _pass in 0..4 {
        let mut improved = false;
        for si in 0..n {
            for sj in si + 1..n {
                if p.members(si).is_empty() && p.members(sj).is_empty() {
                    continue;
                }
                // Descend between this pair while profitable. Commit
                // reproduces the trial state exactly, so the score
                // computed inside refine_move holds afterwards; starting
                // from excess 0, lexicographic descent keeps excess 0.
                for _ in 0..config.max_move_rounds() {
                    let current = p.score(config);
                    match moves::refine_move(p, si, sj, config) {
                        Some((cand, score)) if score < current => {
                            cand.commit(p);
                            p.stats.moves_accepted += 1;
                            improved = true;
                        }
                        _ => break,
                    }
                }
            }
        }
        if config.indirect_routing() {
            route_opt::repair(p, config);
        }
        if !improved {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::{Phase, PhaseSchedule};

    fn pattern4() -> AppPattern {
        let mut s = PhaseSchedule::new(4);
        s.push(Phase::from_flows([(0usize, 1usize), (2, 3)]).unwrap())
            .unwrap();
        s.push(Phase::from_flows([(0usize, 2usize), (1, 3)]).unwrap())
            .unwrap();
        AppPattern::from_schedule(&s)
    }

    #[test]
    fn megaswitch_has_no_pipes() {
        let p = Partitioning::megaswitch(&pattern4()).unwrap();
        assert_eq!(p.n_switches(), 1);
        assert_eq!(p.total_links(), 0);
        assert_eq!(p.members(0).len(), 4);
        p.assert_consistent();
    }

    #[test]
    fn empty_pattern_is_rejected() {
        let empty = AppPattern::from_parts(
            0,
            [],
            nocsyn_model::ContentionSet::new(),
            nocsyn_model::CliqueSet::new(),
        );
        assert!(matches!(
            Partitioning::megaswitch(&empty),
            Err(SynthError::EmptyPattern)
        ));
    }

    #[test]
    fn split_moves_half_and_updates_pipes() {
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let sj = p.split(0, &mut rng);
        assert_eq!(sj, 1);
        assert_eq!(p.members(0).len() + p.members(1).len(), 4);
        assert_eq!(p.members(1).len(), 2);
        p.assert_consistent();
        // With procs split 2/2, at least one app flow crosses the pipe.
        assert!(p.total_links() >= 1);
    }

    #[test]
    fn move_proc_resets_paths_to_direct() {
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        p.split(0, &mut rng);
        let proc = p.members(0)[0];
        p.move_proc(proc, 1);
        p.assert_consistent();
        for &idx in p.flows_of_proc(proc) {
            assert_eq!(p.paths[idx], p.direct_path(idx));
        }
    }

    #[test]
    fn set_path_with_via_updates_three_pipes() {
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        let mut rng = Rng::seed_from_u64(2);
        p.split(0, &mut rng);
        // Force a third switch by moving one proc.
        p.add_switch();
        let proc = p.members(0)[0];
        p.move_proc(proc, 2);
        p.assert_consistent();

        // Find a flow between switch 2 and another switch and detour it.
        let flow_idx = p.flows_of_proc(proc)[0];
        let direct = p.paths[flow_idx].clone();
        if direct.len() == 2 {
            let (a, b) = (direct[0], direct[1]);
            let via = (0..3).find(|&v| v != a && v != b).unwrap();
            p.set_path(flow_idx, vec![a, via, b]);
            p.assert_consistent();
            assert_eq!(p.path(p.pattern.flows()[flow_idx]).unwrap().len(), 3);
            // And back.
            p.set_path(flow_idx, direct);
            p.assert_consistent();
        }
    }

    #[test]
    fn degree_counts_members_and_incident_links() {
        let mut p = Partitioning::megaswitch(&pattern4()).unwrap();
        assert_eq!(p.degree(0), 4);
        let mut rng = Rng::seed_from_u64(3);
        p.split(0, &mut rng);
        let link_sum: usize = p.pipes().map(|(_, l)| l).sum();
        assert_eq!(p.degree(0) + p.degree(1), 4 + 2 * link_sum);
    }

    #[test]
    fn run_reaches_constraints_on_small_pattern() {
        let pattern = pattern4();
        let mut p = Partitioning::megaswitch(&pattern).unwrap();
        let config = SynthesisConfig::new().with_max_degree(3).with_seed(11);
        run(&mut p, &config);
        assert!(
            p.violating(&config).is_empty(),
            "degrees: {:?}",
            (0..p.n_switches()).map(|s| p.degree(s)).collect::<Vec<_>>()
        );
        p.assert_consistent();
    }

    #[test]
    fn run_is_deterministic_for_a_seed() {
        let pattern = pattern4();
        let config = SynthesisConfig::new().with_max_degree(3).with_seed(5);
        let mut a = Partitioning::megaswitch(&pattern).unwrap();
        let mut b = Partitioning::megaswitch(&pattern).unwrap();
        run(&mut a, &config);
        run(&mut b, &config);
        assert_eq!(a.home, b.home);
        assert_eq!(a.paths, b.paths);
        assert_eq!(a.total_links(), b.total_links());
    }

    #[test]
    fn impossible_constraint_terminates() {
        let pattern = pattern4();
        let mut p = Partitioning::megaswitch(&pattern).unwrap();
        // Degree 0 can never be satisfied; the run must still terminate.
        let config = SynthesisConfig::new()
            .with_max_degree(0)
            .with_max_rounds(50)
            .with_seed(1);
        run(&mut p, &config);
        assert!(!p.violating(&config).is_empty());
        assert!(p.stats.rounds <= 50);
    }

    #[test]
    fn pipe_key_invariants() {
        let k = PipeKey::new(5, 2);
        assert_eq!((k.lo(), k.hi()), (2, 5));
        assert!(k.forward_from(2));
        assert!(!k.forward_from(5));
        assert!(k.touches(5) && k.touches(2) && !k.touches(3));
        assert_eq!(k.to_string(), "P(2,5)");
    }

    #[test]
    #[should_panic(expected = "distinct switches")]
    fn pipe_key_rejects_self() {
        let _ = PipeKey::new(3, 3);
    }
}
