//! Processor-move evaluation between a split pair (steps 7–9 of the Main
//! Partitioning Algorithm).

use nocsyn_model::ProcId;

use crate::{Partitioning, SynthesisConfig};

/// A candidate change to the split pair and the total link estimate it
/// would produce: either one processor moving across, or a balanced swap
/// of two processors (the Kernighan–Lin-style escape from single-move
/// local optima).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MoveCandidate {
    Single {
        proc: ProcId,
        to: usize,
        cost: usize,
    },
    Swap {
        a: ProcId,
        a_to: usize,
        b: ProcId,
        b_to: usize,
        cost: usize,
    },
}

impl MoveCandidate {
    pub(crate) fn cost(&self) -> usize {
        match *self {
            MoveCandidate::Single { cost, .. } | MoveCandidate::Swap { cost, .. } => cost,
        }
    }

    /// Applies this candidate to the partitioning.
    pub(crate) fn commit(&self, p: &mut Partitioning) {
        match *self {
            MoveCandidate::Single { proc, to, .. } => p.move_proc(proc, to),
            MoveCandidate::Swap {
                a, a_to, b, b_to, ..
            } => {
                p.move_proc(a, a_to);
                p.move_proc(b, b_to);
            }
        }
    }
}

/// Evaluates every balanced single-processor move and every pair swap
/// between switches `si` and `sj`, *assuming direct routes* for the
/// relocated processors' flows (as the paper specifies), and returns the
/// lowest-cost candidate.
///
/// The evaluation is performed by applying the change to the partitioning,
/// reading the incrementally-maintained total, and undoing it exactly — so
/// each candidate costs only the pipe recomputations its flows touch.
///
/// Returns `None` when no legal candidate exists at all.
pub(crate) fn best_move(
    p: &mut Partitioning,
    si: usize,
    sj: usize,
    config: &SynthesisConfig,
) -> Option<MoveCandidate> {
    let mut best: Option<MoveCandidate> = None;

    // Single moves.
    let singles: Vec<(ProcId, usize, usize)> = p
        .members(si)
        .iter()
        .map(|&q| (q, si, sj))
        .chain(p.members(sj).iter().map(|&q| (q, sj, si)))
        .collect();
    for (proc, from, to) in singles {
        // A move may not empty its source switch: a split must stick, or
        // the search would undo it and re-split forever (the link objective
        // always prefers merging). The paper's balance rule alone permits
        // 2-vs-0, so this is a necessary strengthening.
        if p.members(from).len() == 1 {
            continue;
        }
        // Balance check (paper: imbalance limited to 2).
        let (ni, nj) = (p.members(si).len() as isize, p.members(sj).len() as isize);
        let (ni_after, nj_after) = if from == si {
            (ni - 1, nj + 1)
        } else {
            (ni + 1, nj - 1)
        };
        if (ni_after - nj_after).unsigned_abs() > config.balance_tolerance() {
            continue;
        }
        let cost = evaluate(p, &[(proc, to)]);
        if best.as_ref().is_none_or(|b| cost < b.cost()) {
            best = Some(MoveCandidate::Single { proc, to, cost });
        }
    }

    // Balanced pair swaps (never change sizes, so always legal).
    let left: Vec<ProcId> = p.members(si).to_vec();
    let right: Vec<ProcId> = p.members(sj).to_vec();
    for &a in &left {
        for &b in &right {
            let cost = evaluate(p, &[(a, sj), (b, si)]);
            if best.as_ref().is_none_or(|bst| cost < bst.cost()) {
                best = Some(MoveCandidate::Swap {
                    a,
                    a_to: sj,
                    b,
                    b_to: si,
                    cost,
                });
            }
        }
    }
    best
}

/// Applies the given relocations, reads the incrementally-maintained link
/// total, and undoes everything exactly (including any detoured paths
/// Best_Route had installed for the touched flows). This is the paper's
/// "expected number of links ... assuming direct routes" evaluation,
/// side-effect free.
fn evaluate(p: &mut Partitioning, relocations: &[(ProcId, usize)]) -> usize {
    evaluate_with(p, relocations, Partitioning::total_links)
}

/// Like [`evaluate`], but lets the caller observe arbitrary state of the
/// trial configuration (degrees, live switch counts, ...).
fn evaluate_with<T>(
    p: &mut Partitioning,
    relocations: &[(ProcId, usize)],
    observe: impl FnOnce(&Partitioning) -> T,
) -> T {
    p.stats.moves_tried += 1;
    let mut undo: Vec<(ProcId, usize)> = Vec::with_capacity(relocations.len());
    let mut saved: Vec<(usize, Vec<usize>)> = Vec::new();
    for &(proc, to) in relocations {
        undo.push((proc, p.home(proc)));
        for &i in p.flows_of_proc(proc) {
            if !saved.iter().any(|(j, _)| *j == i) {
                saved.push((i, p.path_of_idx(i).to_vec()));
            }
        }
        p.move_proc(proc, to);
    }
    let out = observe(p);
    for &(proc, home) in undo.iter().rev() {
        p.move_proc(proc, home);
    }
    for (i, path) in saved {
        p.set_path(i, path);
    }
    out
}

/// Refinement between an arbitrary switch pair: singles in both directions
/// (allowed to empty a switch — merging is the point) and swaps, scored by
/// the lexicographic [`Partitioning::score`] (degree excess, then chip
/// area). Returns the best candidate and its score.
pub(crate) fn refine_move(
    p: &mut Partitioning,
    si: usize,
    sj: usize,
    config: &SynthesisConfig,
) -> Option<(MoveCandidate, (usize, usize))> {
    let mut best: Option<(MoveCandidate, (usize, usize))> = None;
    let consider = |cand: MoveCandidate,
                    score: (usize, usize),
                    best: &mut Option<(MoveCandidate, (usize, usize))>| {
        if best.as_ref().is_none_or(|(_, s)| score < *s) {
            *best = Some((cand, score));
        }
    };

    let singles: Vec<(ProcId, usize)> = p
        .members(si)
        .iter()
        .map(|&q| (q, sj))
        .chain(p.members(sj).iter().map(|&q| (q, si)))
        .collect();
    for (proc, to) in singles {
        let score = evaluate_with(p, &[(proc, to)], |p| p.score(config));
        consider(
            MoveCandidate::Single { proc, to, cost: 0 },
            score,
            &mut best,
        );
    }
    let left: Vec<ProcId> = p.members(si).to_vec();
    let right: Vec<ProcId> = p.members(sj).to_vec();
    for &a in &left {
        for &b in &right {
            let score = evaluate_with(p, &[(a, sj), (b, si)], |p| p.score(config));
            consider(
                MoveCandidate::Swap {
                    a,
                    a_to: sj,
                    b,
                    b_to: si,
                    cost: 0,
                },
                score,
                &mut best,
            );
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AppPattern;
    use nocsyn_model::{Phase, PhaseSchedule};
    use nocsyn_rng::Rng;

    /// Pattern where procs {0,1} and {2,3} talk within their group only:
    /// the optimal 2/2 split has zero crossing traffic.
    fn clustered_pattern() -> AppPattern {
        let mut s = PhaseSchedule::new(4);
        s.push(Phase::from_flows([(0usize, 1usize), (2, 3)]).unwrap())
            .unwrap();
        s.push(Phase::from_flows([(1usize, 0usize), (3, 2)]).unwrap())
            .unwrap();
        AppPattern::from_schedule(&s)
    }

    #[test]
    fn best_move_finds_the_clustering() {
        // Start from the worst split — {0,2} vs {1,3} cuts every flow —
        // and verify greedy descent recovers the {0,1}/{2,3} clustering.
        let pattern = clustered_pattern();
        let config = SynthesisConfig::new();
        let mut p = Partitioning::megaswitch(&pattern).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let sj = p.split(0, &mut rng);
        use nocsyn_model::ProcId;
        p.move_proc(ProcId(0), 0);
        p.move_proc(ProcId(2), 0);
        p.move_proc(ProcId(1), sj);
        p.move_proc(ProcId(3), sj);
        assert!(p.total_links() > 0);
        for _ in 0..6 {
            let before = p.total_links();
            match best_move(&mut p, 0, sj, &config) {
                Some(c) if c.cost() < before => c.commit(&mut p),
                _ => break,
            }
        }
        assert_eq!(p.total_links(), 0, "greedy moves did not decluster");
        p.assert_consistent();
    }

    #[test]
    fn moves_never_empty_a_switch() {
        let pattern = clustered_pattern();
        let config = SynthesisConfig::new();
        let mut p = Partitioning::megaswitch(&pattern).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let sj = p.split(0, &mut rng);
        // Drain sj down to one member, then confirm no candidate move
        // takes the last one.
        while p.members(sj).len() > 1 {
            let proc = p.members(sj)[0];
            p.move_proc(proc, 0);
        }
        if let Some(MoveCandidate::Single { proc, to, .. }) = best_move(&mut p, 0, sj, &config) {
            assert_ne!(
                (proc, to),
                (p.members(sj)[0], 0),
                "move would empty switch {sj}"
            );
        }
    }

    #[test]
    fn balance_tolerance_blocks_lopsided_moves() {
        let pattern = clustered_pattern();
        // With tolerance 0, every single move (2/2 -> 1/3) is blocked;
        // only balanced swaps may be offered.
        let config = SynthesisConfig::new().with_balance_tolerance(0);
        let mut p = Partitioning::megaswitch(&pattern).unwrap();
        let mut rng = Rng::seed_from_u64(0);
        let sj = p.split(0, &mut rng);
        // 2/2 split with tolerance 0: every single move makes it 1/3.
        match best_move(&mut p, 0, sj, &config) {
            None => {}
            Some(MoveCandidate::Swap { .. }) => {}
            Some(single) => panic!("unbalanced single move offered: {single:?}"),
        }
    }

    #[test]
    fn evaluation_leaves_state_unchanged() {
        let pattern = clustered_pattern();
        let config = SynthesisConfig::new();
        let mut p = Partitioning::megaswitch(&pattern).unwrap();
        let mut rng = Rng::seed_from_u64(1);
        let sj = p.split(0, &mut rng);
        let before_total = p.total_links();
        let before_members: Vec<Vec<_>> = vec![p.members(0).to_vec(), p.members(sj).to_vec()];
        let _ = best_move(&mut p, 0, sj, &config);
        assert_eq!(p.total_links(), before_total);
        assert_eq!(p.members(0), before_members[0].as_slice());
        assert_eq!(p.members(sj), before_members[1].as_slice());
        p.assert_consistent();
    }
}
