//! The synthesis input: a characterized application communication pattern.

use std::collections::BTreeSet;
use std::fmt;

use nocsyn_model::{CliqueSet, ContentionSet, Flow, PhaseSchedule, Trace};

/// Everything the design methodology needs to know about an application:
/// its process count, the distinct flows it performs, its potential
/// communication contention set `C`, and its maximum clique set `K`.
///
/// Build one [`from_trace`](AppPattern::from_trace) when you have timed
/// messages (e.g. an execution log) or
/// [`from_schedule`](AppPattern::from_schedule) when you have the
/// phase-parallel program structure directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppPattern {
    n_procs: usize,
    flows: Vec<Flow>,
    contention: ContentionSet,
    cliques: CliqueSet,
}

impl AppPattern {
    /// Characterizes a timed trace: computes `C` and the maximum clique
    /// set from message overlap.
    pub fn from_trace(trace: &Trace) -> Self {
        let flows: Vec<Flow> = trace.flows().into_iter().collect();
        AppPattern {
            n_procs: trace.n_procs(),
            flows,
            contention: trace.contention_set(),
            cliques: trace.maximum_clique_set(),
        }
    }

    /// Characterizes a phase-parallel schedule: each distinct phase is one
    /// contention period (the paper's Section 3 extraction), so the clique
    /// set is read directly off the program structure and `C` contains all
    /// intra-phase pairs.
    pub fn from_schedule(schedule: &PhaseSchedule) -> Self {
        let cliques = schedule.maximum_clique_set();
        let mut contention = ContentionSet::new();
        for phase in schedule.iter() {
            let flows: Vec<Flow> = phase.iter().collect();
            for i in 0..flows.len() {
                for j in i + 1..flows.len() {
                    contention.insert(flows[i], flows[j]);
                }
            }
        }
        AppPattern {
            n_procs: schedule.n_procs(),
            flows: schedule.all_flows().into_iter().collect(),
            contention,
            cliques,
        }
    }

    /// Builds a pattern from raw parts (for tests and custom frontends).
    /// The flow list is deduplicated and sorted.
    pub fn from_parts(
        n_procs: usize,
        flows: impl IntoIterator<Item = Flow>,
        contention: ContentionSet,
        cliques: CliqueSet,
    ) -> Self {
        let flows: BTreeSet<Flow> = flows.into_iter().collect();
        AppPattern {
            n_procs,
            flows: flows.into_iter().collect(),
            contention,
            cliques,
        }
    }

    /// Merges several application patterns into one synthesis target: the
    /// union of their flows, contention pairs and contention periods.
    ///
    /// A network synthesized for the merged pattern is contention-free
    /// for **each** application run by itself (the applications' cliques
    /// are all present individually — the merge does not assume two
    /// applications run concurrently). This is the design point the
    /// paper's Section 4.2 sensitivity experiment motivates: a workload
    /// of several characterized applications sharing one chip.
    ///
    /// # Panics
    ///
    /// Panics if `patterns` is empty.
    pub fn merged<'a, I>(patterns: I) -> AppPattern
    where
        I: IntoIterator<Item = &'a AppPattern>,
    {
        let mut iter = patterns.into_iter();
        let first = iter.next().expect("merging requires at least one pattern");
        let mut n_procs = first.n_procs;
        let mut flows: BTreeSet<Flow> = first.flows.iter().copied().collect();
        let mut contention = first.contention.clone();
        let mut cliques: Vec<_> = first.cliques.iter().cloned().collect();
        for p in iter {
            n_procs = n_procs.max(p.n_procs);
            flows.extend(p.flows.iter().copied());
            contention.extend(p.contention.iter());
            cliques.extend(p.cliques.iter().cloned());
        }
        AppPattern {
            n_procs,
            flows: flows.into_iter().collect(),
            contention,
            cliques: CliqueSet::from_cliques(cliques).into_maximal(),
        }
    }

    /// Number of processes / end-nodes.
    pub fn n_procs(&self) -> usize {
        self.n_procs
    }

    /// The distinct flows the application performs, sorted.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// The potential communication contention set `C`.
    pub fn contention(&self) -> &ContentionSet {
        &self.contention
    }

    /// The communication maximum clique set `K`.
    pub fn cliques(&self) -> &CliqueSet {
        &self.cliques
    }

    /// The paper's complexity parameters `(K, L)`: number of cliques and
    /// largest clique size.
    pub fn complexity(&self) -> (usize, usize) {
        (self.cliques.len(), self.cliques.max_clique_size())
    }
}

impl fmt::Display for AppPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (k, l) = self.complexity();
        write!(
            f,
            "pattern: {} procs, {} flows, |C| = {}, K = {k}, L = {l}",
            self.n_procs,
            self.flows.len(),
            self.contention.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nocsyn_model::{Message, Phase, ProcId};

    #[test]
    fn from_trace_and_from_schedule_agree_on_simple_pattern() {
        // Same logical pattern built both ways.
        let mut sched = PhaseSchedule::new(4);
        sched
            .push(Phase::from_flows([(0usize, 1usize), (2, 3)]).unwrap())
            .unwrap();
        sched
            .push(Phase::from_flows([(1usize, 2usize)]).unwrap())
            .unwrap();
        let from_sched = AppPattern::from_schedule(&sched);
        let from_trace = AppPattern::from_trace(&sched.to_trace());
        assert_eq!(from_sched.flows(), from_trace.flows());
        assert_eq!(from_sched.contention(), from_trace.contention());
        assert_eq!(from_sched.cliques().len(), from_trace.cliques().len());
    }

    #[test]
    fn complexity_parameters() {
        let mut t = Trace::new(6);
        t.push(Message::new(ProcId(0), ProcId(1), 0, 10).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(2), ProcId(3), 0, 10).unwrap())
            .unwrap();
        t.push(Message::new(ProcId(4), ProcId(5), 20, 30).unwrap())
            .unwrap();
        let p = AppPattern::from_trace(&t);
        assert_eq!(p.complexity(), (2, 2));
        assert_eq!(p.flows().len(), 3);
    }

    #[test]
    fn from_parts_dedups_flows() {
        let f = Flow::from_indices(0, 1);
        let p = AppPattern::from_parts(2, [f, f], ContentionSet::new(), CliqueSet::new());
        assert_eq!(p.flows().len(), 1);
    }

    #[test]
    fn merged_unions_everything() {
        let mut a = PhaseSchedule::new(4);
        a.push(Phase::from_flows([(0usize, 1usize), (2, 3)]).unwrap())
            .unwrap();
        let mut b = PhaseSchedule::new(6);
        b.push(Phase::from_flows([(0usize, 1usize), (4, 5)]).unwrap())
            .unwrap();
        let pa = AppPattern::from_schedule(&a);
        let pb = AppPattern::from_schedule(&b);
        let merged = AppPattern::merged([&pa, &pb]);
        assert_eq!(merged.n_procs(), 6);
        assert_eq!(merged.flows().len(), 3);
        // Contention from both apps survives.
        assert!(merged
            .contention()
            .conflicts(Flow::from_indices(0, 1), Flow::from_indices(2, 3)));
        assert!(merged
            .contention()
            .conflicts(Flow::from_indices(0, 1), Flow::from_indices(4, 5)));
        // But cross-application pairs are NOT invented.
        assert!(!merged
            .contention()
            .conflicts(Flow::from_indices(2, 3), Flow::from_indices(4, 5)));
        assert_eq!(merged.cliques().len(), 2);
    }

    #[test]
    fn merged_single_is_identity() {
        let mut a = PhaseSchedule::new(4);
        a.push(Phase::from_flows([(0usize, 1usize)]).unwrap())
            .unwrap();
        let pa = AppPattern::from_schedule(&a);
        assert_eq!(AppPattern::merged([&pa]), pa);
    }

    #[test]
    #[should_panic(expected = "at least one pattern")]
    fn merged_empty_panics() {
        let _ = AppPattern::merged(std::iter::empty());
    }
}
