//! Synthesis run reporting.

use std::fmt;

/// Summary of a synthesis run: what was built and how the search behaved.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SynthesisReport {
    /// Switches in the materialized network.
    pub n_switches: usize,
    /// Switch-to-switch links in the materialized network (processor
    /// attachments excluded).
    pub n_links: usize,
    /// Largest switch degree in the materialized network (attachments
    /// included).
    pub max_degree: usize,
    /// Whether every switch meets the configured degree constraint after
    /// formal coloring.
    pub constraints_met: bool,
    /// Whether Theorem 1 holds: the application's contention set does not
    /// intersect the materialized network's conflict set.
    pub contention_free: bool,
    /// Links added at finalization solely to restore strong connectivity
    /// (carry no application traffic).
    pub connectivity_links: usize,
    /// Partitioning rounds executed.
    pub rounds: usize,
    /// Switch splits performed.
    pub splits: usize,
    /// Processor moves evaluated.
    pub moves_tried: usize,
    /// Processor moves committed.
    pub moves_accepted: usize,
    /// Indirect-route candidates evaluated by `Best_Route`.
    pub reroutes_tried: usize,
    /// Indirect-route changes committed.
    pub reroutes_accepted: usize,
    /// Indirect-route candidates evaluated whose score exactly matched the
    /// incumbent — neither better nor worse. Distinguishes "the search
    /// found no improvement" from "the search never looked" when
    /// `reroutes_accepted` is zero.
    pub reroutes_neutral: usize,
    /// Total-link estimate at the start of each round.
    pub cost_history: Vec<usize>,
}

impl SynthesisReport {
    /// Renders the report as a machine-readable JSON value (see
    /// `nocsyn_model::json`), one key per field.
    pub fn to_json(&self) -> nocsyn_model::json::JsonValue {
        use nocsyn_model::json::JsonValue;
        JsonValue::object([
            ("n_switches", JsonValue::from(self.n_switches)),
            ("n_links", JsonValue::from(self.n_links)),
            ("max_degree", JsonValue::from(self.max_degree)),
            ("constraints_met", JsonValue::from(self.constraints_met)),
            ("contention_free", JsonValue::from(self.contention_free)),
            (
                "connectivity_links",
                JsonValue::from(self.connectivity_links),
            ),
            ("rounds", JsonValue::from(self.rounds)),
            ("splits", JsonValue::from(self.splits)),
            ("moves_tried", JsonValue::from(self.moves_tried)),
            ("moves_accepted", JsonValue::from(self.moves_accepted)),
            ("reroutes_tried", JsonValue::from(self.reroutes_tried)),
            ("reroutes_accepted", JsonValue::from(self.reroutes_accepted)),
            ("reroutes_neutral", JsonValue::from(self.reroutes_neutral)),
            (
                "cost_history",
                JsonValue::array(self.cost_history.iter().map(|&c| JsonValue::from(c))),
            ),
        ])
    }
}

impl fmt::Display for SynthesisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "synthesized {} switches, {} links (max degree {}), constraints {}",
            self.n_switches,
            self.n_links,
            self.max_degree,
            if self.constraints_met {
                "met"
            } else {
                "NOT met"
            }
        )?;
        writeln!(
            f,
            "contention-free: {}; connectivity links added: {}",
            self.contention_free, self.connectivity_links
        )?;
        write!(
            f,
            "search: {} rounds, {} splits, {}/{} moves, {}/{} reroutes ({} neutral)",
            self.rounds,
            self.splits,
            self.moves_accepted,
            self.moves_tried,
            self.reroutes_accepted,
            self.reroutes_tried,
            self.reroutes_neutral
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_key_facts() {
        let r = SynthesisReport {
            n_switches: 6,
            n_links: 7,
            max_degree: 5,
            constraints_met: true,
            contention_free: true,
            ..Default::default()
        };
        let s = r.to_string();
        assert!(s.contains("6 switches"));
        assert!(s.contains("7 links"));
        assert!(s.contains("constraints met"));
    }

    #[test]
    fn json_round_trips_key_fields() {
        let r = SynthesisReport {
            n_switches: 6,
            n_links: 7,
            max_degree: 5,
            constraints_met: true,
            contention_free: true,
            cost_history: vec![30, 24, 24],
            ..Default::default()
        };
        let json = r.to_json().to_string();
        assert!(json.starts_with("{\"n_switches\":6,\"n_links\":7,\"max_degree\":5"));
        assert!(json.contains("\"contention_free\":true"));
        assert!(json.contains("\"cost_history\":[30,24,24]"));
    }

    #[test]
    fn default_is_all_zero() {
        let r = SynthesisReport::default();
        assert_eq!(r.n_switches, 0);
        assert!(!r.constraints_met);
        assert!(r.cost_history.is_empty());
    }
}
