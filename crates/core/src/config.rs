//! Synthesis configuration and design constraints.

use nocsyn_model::CanonicalForm;

use crate::AcceptanceRule;

/// Which coloring backend sizes pipes *during the search*.
///
/// The paper's central complexity trick is [`ColoringStrategy::Fast`]; the
/// exact variant exists as an ablation (DESIGN.md §5.1) to quantify what
/// the fast bound costs in final link count versus what it saves in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ColoringStrategy {
    /// The paper's `Fast_Color` clique lower bound, `O(KL)` per pipe.
    #[default]
    Fast,
    /// Exact chromatic number by branch and bound at every estimate.
    Exact,
}

/// Tunable parameters of the design methodology.
///
/// The defaults reproduce the paper's published setup: maximum node degree
/// 5 (straightforward comparison with a mesh of 5-port switches), balance
/// tolerance 2, greedy-descent move acceptance, fast coloring during the
/// search, and indirect routing enabled.
///
/// ```
/// use nocsyn_synth::SynthesisConfig;
/// let config = SynthesisConfig::new()
///     .with_max_degree(4)
///     .with_seed(42);
/// assert_eq!(config.max_degree(), 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisConfig {
    max_degree: usize,
    balance_tolerance: usize,
    seed: u64,
    coloring: ColoringStrategy,
    acceptance: AcceptanceRule,
    indirect_routing: bool,
    max_rounds: usize,
    max_move_rounds: usize,
    restarts: usize,
    max_pipe_width: Option<usize>,
}

impl SynthesisConfig {
    /// Creates the paper-default configuration.
    pub fn new() -> Self {
        SynthesisConfig {
            max_degree: 5,
            balance_tolerance: 2,
            seed: 0xC0FFEE,
            coloring: ColoringStrategy::Fast,
            acceptance: AcceptanceRule::Greedy,
            indirect_routing: true,
            max_rounds: 10_000,
            max_move_rounds: 64,
            restarts: 8,
            max_pipe_width: None,
        }
    }

    /// Sets the maximum node degree (ports per switch, processor
    /// attachments included). The paper's example uses 5.
    #[must_use]
    pub fn with_max_degree(mut self, d: usize) -> Self {
        self.max_degree = d;
        self
    }

    /// Sets the processor-count imbalance allowed between a split pair
    /// (the paper limits it to 2).
    #[must_use]
    pub fn with_balance_tolerance(mut self, t: usize) -> Self {
        self.balance_tolerance = t;
        self
    }

    /// Seeds the random choices (which switch to split, which processors
    /// move first). Synthesis is fully deterministic given a seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the pipe-sizing backend used during the search.
    #[must_use]
    pub fn with_coloring(mut self, strategy: ColoringStrategy) -> Self {
        self.coloring = strategy;
        self
    }

    /// Selects the move-acceptance rule (greedy descent, or a simulated
    /// annealing schedule).
    #[must_use]
    pub fn with_acceptance(mut self, rule: AcceptanceRule) -> Self {
        self.acceptance = rule;
        self
    }

    /// Enables or disables `Best_Route` indirect route optimization
    /// (ablation; the paper's Figure 5(e) shows it saving links).
    #[must_use]
    pub fn with_indirect_routing(mut self, enabled: bool) -> Self {
        self.indirect_routing = enabled;
        self
    }

    /// Caps the number of partitioning rounds (safety bound for impossible
    /// constraints).
    #[must_use]
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Caps the number of processor-move improvement rounds per split.
    #[must_use]
    pub fn with_max_move_rounds(mut self, rounds: usize) -> Self {
        self.max_move_rounds = rounds;
        self
    }

    /// Number of independent synthesis restarts (with derived seeds); the
    /// best result — fewest links, then fewest switches — is kept. The
    /// published algorithm is a single greedy run whose quality varies
    /// strongly with the random split choices; restarting is the standard
    /// stochastic-search remedy and stays within the paper's framework.
    ///
    /// A zero is clamped to one: at least one run always executes, so
    /// `synthesize` can never come back empty-handed (this used to panic
    /// deep in the restart loop instead).
    #[must_use]
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Bounds the parallel links any single pipe may use (the paper's
    /// Section 3.3 finalization assumes pipes thin out to ≤ 2; this makes
    /// that a hard design constraint when wiring density demands it).
    /// `None` (the default) leaves pipe width unconstrained.
    #[must_use]
    pub fn with_max_pipe_width(mut self, width: usize) -> Self {
        self.max_pipe_width = Some(width);
        self
    }

    /// Maximum node degree.
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Maximum parallel links per pipe, if constrained.
    pub fn max_pipe_width(&self) -> Option<usize> {
        self.max_pipe_width
    }

    /// Allowed processor-count imbalance between a split pair.
    pub fn balance_tolerance(&self) -> usize {
        self.balance_tolerance
    }

    /// RNG seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Pipe-sizing backend used during the search.
    pub fn coloring(&self) -> ColoringStrategy {
        self.coloring
    }

    /// Move-acceptance rule.
    pub fn acceptance(&self) -> AcceptanceRule {
        self.acceptance
    }

    /// Whether `Best_Route` indirect routing runs.
    pub fn indirect_routing(&self) -> bool {
        self.indirect_routing
    }

    /// Partitioning-round cap.
    pub fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    /// Per-split move-round cap.
    pub fn max_move_rounds(&self) -> usize {
        self.max_move_rounds
    }

    /// Independent restart count.
    pub fn restarts(&self) -> usize {
        self.restarts
    }

    /// The configuration's canonical form for content-addressed caching.
    ///
    /// Every field that influences the synthesis result appears as a
    /// named field (including the seed — the whole flow is a pure
    /// function of `(pattern, config, seed)`, and this form is the
    /// `(config, seed)` half of the cache key). Enum variants get stable
    /// lowercase labels; the annealing schedule's parameters are emitted
    /// only when the annealing rule is selected, so `greedy` can never
    /// collide with an `anneal` at some temperature.
    ///
    /// Two configs compare equal iff their canonical forms digest
    /// equally; anything *not* in this form (e.g. a job deadline) must
    /// not change the synthesis output.
    pub fn canonical_form(&self) -> CanonicalForm {
        let mut form = CanonicalForm::new()
            .field("max_degree", self.max_degree)
            .field("balance_tolerance", self.balance_tolerance)
            .field("seed", self.seed)
            .field(
                "coloring",
                match self.coloring {
                    ColoringStrategy::Fast => "fast",
                    ColoringStrategy::Exact => "exact",
                },
            )
            .field("indirect_routing", self.indirect_routing)
            .field("max_rounds", self.max_rounds)
            .field("max_move_rounds", self.max_move_rounds)
            .field("restarts", self.restarts);
        match self.acceptance {
            AcceptanceRule::Greedy => form.push_field("acceptance", "greedy"),
            AcceptanceRule::Anneal {
                initial_temperature,
                cooling,
            } => {
                form.push_field("acceptance", "anneal");
                form.push_field("anneal_initial_temperature", initial_temperature);
                form.push_field("anneal_cooling", cooling);
            }
        }
        match self.max_pipe_width {
            None => form.push_field("max_pipe_width", "none"),
            Some(w) => form.push_field("max_pipe_width", w),
        }
        form
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_setup() {
        let c = SynthesisConfig::new();
        assert_eq!(c.max_degree(), 5);
        assert_eq!(c.balance_tolerance(), 2);
        assert_eq!(c.coloring(), ColoringStrategy::Fast);
        assert_eq!(c.acceptance(), AcceptanceRule::Greedy);
        assert!(c.indirect_routing());
        assert_eq!(SynthesisConfig::default(), c);
    }

    #[test]
    fn builder_chains() {
        let c = SynthesisConfig::new()
            .with_max_degree(7)
            .with_balance_tolerance(1)
            .with_seed(9)
            .with_coloring(ColoringStrategy::Exact)
            .with_indirect_routing(false)
            .with_max_rounds(3)
            .with_max_move_rounds(5)
            .with_restarts(2);
        assert_eq!(c.max_degree(), 7);
        assert_eq!(c.balance_tolerance(), 1);
        assert_eq!(c.seed(), 9);
        assert_eq!(c.coloring(), ColoringStrategy::Exact);
        assert!(!c.indirect_routing());
        assert_eq!(c.max_rounds(), 3);
        assert_eq!(c.max_move_rounds(), 5);
        assert_eq!(c.restarts(), 2);
        assert_eq!(c.max_pipe_width(), None);
        assert_eq!(c.with_max_pipe_width(2).max_pipe_width(), Some(2));
    }

    #[test]
    fn zero_restarts_clamps_to_one() {
        let c = SynthesisConfig::new().with_restarts(0);
        assert_eq!(c.restarts(), 1);
    }

    #[test]
    fn canonical_form_distinguishes_every_field() {
        let base = SynthesisConfig::new();
        let d0 = base.canonical_form().digest();
        let variants = [
            base.clone().with_max_degree(4),
            base.clone().with_balance_tolerance(1),
            base.clone().with_seed(1),
            base.clone().with_coloring(ColoringStrategy::Exact),
            base.clone()
                .with_acceptance(AcceptanceRule::default_anneal()),
            base.clone().with_indirect_routing(false),
            base.clone().with_max_rounds(99),
            base.clone().with_max_move_rounds(3),
            base.clone().with_restarts(2),
            base.clone().with_max_pipe_width(2),
        ];
        let mut digests = vec![d0];
        for v in &variants {
            digests.push(v.canonical_form().digest());
        }
        for i in 0..digests.len() {
            for j in (i + 1)..digests.len() {
                assert_ne!(digests[i], digests[j], "variants {i} and {j} collide");
            }
        }
    }

    #[test]
    fn canonical_form_is_stable_for_equal_configs() {
        let a = SynthesisConfig::new().with_seed(7).with_restarts(4);
        let b = SynthesisConfig::new().with_restarts(4).with_seed(7);
        assert_eq!(a.canonical_form().digest(), b.canonical_form().digest());
        // Anneal parameters surface in the form.
        let t1 = SynthesisConfig::new().with_acceptance(AcceptanceRule::Anneal {
            initial_temperature: 2.0,
            cooling: 0.95,
        });
        let t2 = SynthesisConfig::new().with_acceptance(AcceptanceRule::Anneal {
            initial_temperature: 3.0,
            cooling: 0.95,
        });
        assert_ne!(t1.canonical_form().digest(), t2.canonical_form().digest());
        let render = t1.canonical_form().render();
        assert!(render.contains("acceptance=anneal\n"));
        assert!(render.contains("anneal_initial_temperature=2\n"));
    }
}
