//! Error type for synthesis.

use std::error::Error;
use std::fmt;

use nocsyn_topo::TopoError;

/// Errors produced by the synthesis pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthError {
    /// The application pattern has no processors.
    EmptyPattern,
    /// Materializing the final network failed (internal invariant breach
    /// surfaced from the topology layer).
    Materialize(TopoError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::EmptyPattern => write!(f, "application pattern has no processors"),
            SynthError::Materialize(e) => write!(f, "failed to materialize network: {e}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::EmptyPattern => None,
            SynthError::Materialize(e) => Some(e),
        }
    }
}

impl SynthError {
    /// A short, stable, kebab-case identifier for the error class, never
    /// embedding input-derived values (same convention as
    /// `ModelError::fingerprint`).
    pub fn fingerprint(&self) -> &'static str {
        match self {
            SynthError::EmptyPattern => "empty-pattern",
            SynthError::Materialize(_) => "materialize",
        }
    }
}

impl From<TopoError> for SynthError {
    fn from(e: TopoError) -> Self {
        SynthError::Materialize(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SynthError::EmptyPattern;
        assert_eq!(e.to_string(), "application pattern has no processors");
        assert!(e.source().is_none());

        let inner = TopoError::DegenerateShape { what: "x" };
        let e = SynthError::from(inner.clone());
        assert!(e.to_string().contains("materialize"));
        assert!(e.source().is_some());
        assert_eq!(e, SynthError::Materialize(inner));
    }
}
